"""repro -- reproduction of *Error Scope on a Computational Grid* (HPDC 2002).

The package reproduces Thain & Livny's theory of error propagation and its
application to the Condor Java Universe:

- :mod:`repro.core` -- the paper's contribution: error scopes, the
  implicit/explicit/escaping taxonomy, interface contracts, the
  propagation engine, and the principle auditor.
- :mod:`repro.sim` -- deterministic discrete-event substrate (engine,
  network, file systems, machines, processes).
- :mod:`repro.condor` -- the Condor kernel (ClassAds, schedd, startd,
  matchmaker, shadow, starter).
- :mod:`repro.jvm` -- a simulated Java Virtual Machine and the Condor
  Java wrapper.
- :mod:`repro.chirp` / :mod:`repro.remoteio` -- the Java Universe I/O
  path (proxy protocol and the shadow's RPC file server).
- :mod:`repro.faults` -- fault catalogue and injector.
- :mod:`repro.harness` -- workloads, metrics and the per-figure
  experiment runners.
"""

__version__ = "1.0.0"

from repro.core import (
    ErrorInterface,
    ErrorKind,
    ErrorScope,
    EscapingError,
    GridError,
    ManagementChain,
    PrincipleAuditor,
    ResultFile,
    ScopeManager,
)
from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.jvm.program import JavaProgram, Step

__all__ = [
    "ErrorInterface",
    "ErrorKind",
    "ErrorScope",
    "EscapingError",
    "GridError",
    "JavaProgram",
    "Job",
    "JobState",
    "ManagementChain",
    "Pool",
    "PoolConfig",
    "PrincipleAuditor",
    "ProgramImage",
    "ResultFile",
    "ScopeManager",
    "Step",
    "Universe",
]
