"""Fault injection.

Faults here are the paper's faults -- "violations of a system's underlying
assumptions" (§3.1) -- applied to the simulated substrate: misconfigured
Java installations, offline file systems, expired credentials, corrupt
images, partitions, crashes.  The injector records ground truth (which
fault was active where and when) so the principle auditor can compare
what the system *told the user* against what *actually happened* -- the
comparison that detects Principle-1 violations.
"""

from repro.faults.faults import (
    BlackHole,
    BlackHoleChurn,
    CorruptProgramImage,
    CredentialExpiry,
    Fault,
    FlockLinkDown,
    HomeDiskFull,
    HomeFilesystemOffline,
    JvmBinaryMissing,
    MachineChurn,
    MachineCrash,
    MemoryPressure,
    MisconfiguredJvm,
    MissingInputFile,
    NetworkPartition,
    OwnerActivity,
    ScratchDiskFull,
)
from repro.faults.injector import FaultInjector, Injection

__all__ = [
    "BlackHole",
    "BlackHoleChurn",
    "CorruptProgramImage",
    "CredentialExpiry",
    "Fault",
    "FaultInjector",
    "FlockLinkDown",
    "HomeDiskFull",
    "HomeFilesystemOffline",
    "Injection",
    "JvmBinaryMissing",
    "MachineChurn",
    "MachineCrash",
    "MemoryPressure",
    "MisconfiguredJvm",
    "MissingInputFile",
    "NetworkPartition",
    "OwnerActivity",
    "ScratchDiskFull",
]
