"""The fault catalogue.

Each fault knows how to arm and disarm itself against a
:class:`~repro.condor.pool.Pool`, and carries its ground-truth scope --
the scope a perfect error-propagation system would assign to the errors
it produces.  The mapping follows Figures 3 and 4:

=============================  =====================
Fault                          Ground-truth scope
=============================  =====================
MisconfiguredJvm               REMOTE_RESOURCE
JvmBinaryMissing               REMOTE_RESOURCE
ScratchDiskFull                REMOTE_RESOURCE
MachineCrash                   REMOTE_RESOURCE
NetworkPartition (exec side)   REMOTE_RESOURCE
MachineChurn                   REMOTE_RESOURCE
FlockLinkDown                  POOL
BlackHoleChurn                 REMOTE_RESOURCE
MemoryPressure                 VIRTUAL_MACHINE
HomeFilesystemOffline          LOCAL_RESOURCE
CredentialExpiry               LOCAL_RESOURCE
CorruptProgramImage            JOB
MissingInputFile               JOB
HomeDiskFull                   FILE (in the I/O contract)
=============================  =====================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scope import ErrorScope
from repro.remoteio.rpc import Credential

__all__ = [
    "BlackHole",
    "BlackHoleChurn",
    "CorruptProgramImage",
    "CredentialExpiry",
    "Fault",
    "FlockLinkDown",
    "HomeDiskFull",
    "HomeFilesystemOffline",
    "JvmBinaryMissing",
    "MachineChurn",
    "MachineCrash",
    "MemoryPressure",
    "MisconfiguredJvm",
    "MissingInputFile",
    "NetworkPartition",
    "ScratchDiskFull",
]


@dataclass
class Fault:
    """Base class: a named, scoped, targeted violation of assumptions."""

    name: str = "fault"
    scope: ErrorScope = ErrorScope.REMOTE_RESOURCE
    site: str | None = None  # None = not machine-specific
    job_id: str | None = None  # None = not job-specific
    #: True for faults that produce *implicit* errors -- results the
    #: system presents as valid.  Excluded from the P1 ground-truth audit
    #: (the system received no explicit error to mishandle); only the
    #: end-to-end layer can catch these (§5).
    implicit: bool = False

    def arm(self, pool) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def disarm(self, pool) -> None:
        """Default: not reversible."""
        raise NotImplementedError(f"{self.name} cannot be disarmed")

    def describe(self) -> str:
        where = self.site or self.job_id or "pool"
        return f"{self.name}@{where} ({self.scope})"


@dataclass
class MisconfiguredJvm(Fault):
    """§2.3: 'the machine owner might give an incorrect path to the
    standard libraries.'"""

    def __init__(self, site: str):
        super().__init__("MisconfiguredJvm", ErrorScope.REMOTE_RESOURCE, site=site)

    def arm(self, pool) -> None:
        pool.machines[self.site].java.classpath_ok = False

    def disarm(self, pool) -> None:
        pool.machines[self.site].java.classpath_ok = True


#: §5's name for a machine whose bad installation devours the job stream.
BlackHole = MisconfiguredJvm


@dataclass
class JvmBinaryMissing(Fault):
    """The owner's java binary path is simply wrong."""

    def __init__(self, site: str):
        super().__init__("JvmBinaryMissing", ErrorScope.REMOTE_RESOURCE, site=site)

    def arm(self, pool) -> None:
        pool.machines[self.site].java.binary_ok = False

    def disarm(self, pool) -> None:
        pool.machines[self.site].java.binary_ok = True


@dataclass
class MemoryPressure(Fault):
    """Another tenant hogs physical memory: jobs hit OutOfMemoryError."""

    nbytes: int = 0

    def __init__(self, site: str, nbytes: int):
        super().__init__("MemoryPressure", ErrorScope.VIRTUAL_MACHINE, site=site)
        self.nbytes = nbytes

    def arm(self, pool) -> None:
        pool.machines[self.site].alloc(self.nbytes)

    def disarm(self, pool) -> None:
        pool.machines[self.site].free(self.nbytes)


@dataclass
class HomeFilesystemOffline(Fault):
    """Figure 4: 'The home file system was offline.'"""

    def __init__(self):
        super().__init__("HomeFilesystemOffline", ErrorScope.LOCAL_RESOURCE)

    def arm(self, pool) -> None:
        pool.home_fs.set_online(False)

    def disarm(self, pool) -> None:
        pool.home_fs.set_online(True)


@dataclass
class CredentialExpiry(Fault):
    """The shadow's GSI/Kerberos credential has expired (§4)."""

    def __init__(self):
        super().__init__("CredentialExpiry", ErrorScope.LOCAL_RESOURCE)
        self._saved = None

    def arm(self, pool) -> None:
        self._saved = pool.schedd.credential_factory
        expired_at = pool.sim.now  # already expired the moment it is minted
        pool.schedd.credential_factory = lambda job: Credential(
            owner=job.owner, expires_at=expired_at
        )

    def disarm(self, pool) -> None:
        if self._saved is not None:
            pool.schedd.credential_factory = self._saved


@dataclass
class CorruptProgramImage(Fault):
    """Figure 4: 'The program image was corrupt.'

    Pass either a job id (looked up in the schedd's queue at arm time) or
    the :class:`~repro.condor.job.Job` object itself (for jobs that have
    not been submitted yet).
    """

    def __init__(self, job_or_id):
        job_id = job_or_id if isinstance(job_or_id, str) else job_or_id.job_id
        super().__init__("CorruptProgramImage", ErrorScope.JOB, job_id=job_id)
        self._job = None if isinstance(job_or_id, str) else job_or_id

    def _target(self, pool):
        return self._job if self._job is not None else pool.schedd.jobs[self.job_id]

    def arm(self, pool) -> None:
        self._target(pool).image.corrupt = True

    def disarm(self, pool) -> None:
        self._target(pool).image.corrupt = False


@dataclass
class MissingInputFile(Fault):
    """A submit file names an input that does not exist: job scope (§4).

    Accepts a job id or the Job object (see :class:`CorruptProgramImage`).
    """

    def __init__(self, job_or_id, logical_name: str = "missing.dat"):
        job_id = job_or_id if isinstance(job_or_id, str) else job_or_id.job_id
        super().__init__("MissingInputFile", ErrorScope.JOB, job_id=job_id)
        self._job = None if isinstance(job_or_id, str) else job_or_id
        self.logical_name = logical_name

    def arm(self, pool) -> None:
        job = self._job if self._job is not None else pool.schedd.jobs[self.job_id]
        job.input_files[self.logical_name] = "/home/user/does-not-exist"


@dataclass
class NetworkPartition(Fault):
    """Traffic between two hosts silently vanishes (§5's indeterminate
    scope).  Ground truth depends on which side is cut off."""

    host_a: str = ""
    host_b: str = ""

    def __init__(self, host_a: str, host_b: str, submit_side: bool = False):
        scope = ErrorScope.LOCAL_RESOURCE if submit_side else ErrorScope.REMOTE_RESOURCE
        super().__init__("NetworkPartition", scope, site=None if submit_side else host_b)
        self.host_a = host_a
        self.host_b = host_b

    def arm(self, pool) -> None:
        pool.net.partition(self.host_a, self.host_b)

    def disarm(self, pool) -> None:
        pool.net.heal(self.host_a, self.host_b)


@dataclass
class MachineCrash(Fault):
    """Power failure at an execution site."""

    def __init__(self, site: str):
        super().__init__("MachineCrash", ErrorScope.REMOTE_RESOURCE, site=site)

    def arm(self, pool) -> None:
        pool.machines[self.site].crash()
        pool.net.set_host_down(self.site)

    def disarm(self, pool) -> None:
        pool.machines[self.site].boot()
        pool.net.set_host_down(self.site, down=False)


@dataclass
class MachineChurn(Fault):
    """A machine leaves the pool mid-run and is parked for rejoin.

    The churn counterpart of :class:`MachineCrash`: arming removes the
    machine through the pool's churn lifecycle (graceful leave retracts
    ads and evicts; crash-leave drops off the network mid-claim),
    disarming rejoins it under the same name.  Ground truth is
    remote-resource scope -- jobs caught on the leaver cannot run *on
    that host*, and must retry elsewhere.
    """

    graceful: bool = False

    def __init__(self, site: str, graceful: bool = False):
        super().__init__("MachineChurn", ErrorScope.REMOTE_RESOURCE, site=site)
        self.graceful = graceful

    def arm(self, pool) -> None:
        # Tolerate a combo cell where another churn fault already removed
        # this machine: "already gone" satisfies the fault.
        if self.site in pool.machines:
            pool.remove_machine(self.site, graceful=self.graceful)

    def disarm(self, pool) -> None:
        if self.site in pool.parked:
            pool.rejoin_machine(self.site)


@dataclass
class FlockLinkDown(Fault):
    """Every flock link out of the pool's schedds goes dark.

    Partitions each (submit host, flock target) pair, so flocked work
    stalls and the schedd's link backoff engages.  Pool scope: the
    *remote* pools are unreachable, the local one still serves.  On a
    solitary pool with no flock links, arming is a no-op.
    """

    def __init__(self):
        super().__init__("FlockLinkDown", ErrorScope.POOL)
        self._cut: list[tuple[str, str]] = []

    def arm(self, pool) -> None:
        for schedd in pool.schedds.values():
            for link in schedd.flock_links:
                pair = (schedd.submit_host, link.host)
                if pair not in self._cut:
                    pool.net.partition(*pair)
                    self._cut.append(pair)

    def disarm(self, pool) -> None:
        while self._cut:
            pool.net.heal(*self._cut.pop())


@dataclass
class BlackHoleChurn(Fault):
    """A black hole that churns: the machine's Java breaks *and* the
    machine leaves and rejoins while broken.

    The §5 stress case for backoff avoidance: a graceful leave wipes the
    site's avoidance record (strike tables must not leak under churn),
    so when the still-broken machine rejoins it is a *fresh* black hole
    and the schedd must re-earn its strikes.  Disarming repairs the Java
    installation; the startd's ``self_test_interval`` re-probe then
    re-advertises the site.
    """

    downtime: float = 30.0

    def __init__(self, site: str, downtime: float = 30.0):
        super().__init__("BlackHoleChurn", ErrorScope.REMOTE_RESOURCE, site=site)
        self.downtime = downtime
        self._machine = None

    def arm(self, pool) -> None:
        self._machine = pool.machines.get(self.site) or pool.parked.get(self.site)
        self._machine.java.classpath_ok = False
        if self.site in pool.machines:
            pool.remove_machine(self.site, graceful=True)

        def _rejoin():
            yield pool.sim.timeout(self.downtime)
            # Another fault may have rejoined (or re-removed) it meanwhile.
            if self.site in pool.parked:
                pool.rejoin_machine(self.site)

        pool.sim.spawn(_rejoin(), name=f"blackhole-churn-rejoin:{self.site}").defuse()

    def disarm(self, pool) -> None:
        if self._machine is not None:
            self._machine.java.classpath_ok = True


@dataclass
class OwnerActivity(Fault):
    """The machine owner returns: the startd's policy turns off and the
    visiting job is evicted.  Remote-resource scope -- the job cannot run
    *on this host*, right now."""

    def __init__(self, site: str):
        super().__init__("OwnerActivity", ErrorScope.REMOTE_RESOURCE, site=site)
        self._saved_expr: str | None = None

    def arm(self, pool) -> None:
        policy = pool.machines[self.site].policy
        self._saved_expr = policy.start_expr
        policy.start_expr = "FALSE"
        pool.startds[self.site].evict()

    def disarm(self, pool) -> None:
        if self._saved_expr is not None:
            pool.machines[self.site].policy.start_expr = self._saved_expr
            self._saved_expr = None


@dataclass
class ScratchDiskFull(Fault):
    """The execution machine's scratch disk has no room for the sandbox."""

    def __init__(self, site: str):
        super().__init__("ScratchDiskFull", ErrorScope.REMOTE_RESOURCE, site=site)
        self._stolen = 0

    def arm(self, pool) -> None:
        scratch = pool.machines[self.site].scratch
        self._stolen = scratch.free
        scratch.used = scratch.capacity

    def disarm(self, pool) -> None:
        scratch = pool.machines[self.site].scratch
        scratch.used = max(0, scratch.used - self._stolen)
        self._stolen = 0


@dataclass
class SilentDataCorruption(Fault):
    """Undetected corruption on the remote I/O channel (§5: implicit
    errors "have been observed in increasingly uncomfortable rates in
    networks, memories, and CPUs").

    Flips payload bytes in Chirp/RPC *replies* with the given
    probability.  No checksum below the application notices; the job
    completes "successfully" with a wrong answer.
    """

    probability: float = 0.0

    def __init__(self, probability: float):
        super().__init__("SilentDataCorruption", ErrorScope.JOB, implicit=True)
        self.probability = probability

    @staticmethod
    def _eligible(message) -> bool:
        from repro.chirp.protocol import ChirpReply
        from repro.remoteio.rpc import RpcReply

        return isinstance(message, (ChirpReply, RpcReply))

    def arm(self, pool) -> None:
        pool.net.corrupt_probability = self.probability
        pool.net.corrupt_filter = self._eligible
        if pool.net.rng is None:
            pool.net.rng = pool.rngs.stream("network.corruption")

    def disarm(self, pool) -> None:
        pool.net.corrupt_probability = 0.0
        pool.net.corrupt_filter = None


@dataclass
class HomeDiskFull(Fault):
    """The user is over quota at home: DiskFull, *within* the I/O contract
    -- a program result, not an environmental error."""

    def __init__(self):
        super().__init__("HomeDiskFull", ErrorScope.FILE)
        self._stolen = 0

    def arm(self, pool) -> None:
        self._stolen = pool.home_fs.free
        pool.home_fs.used = pool.home_fs.capacity

    def disarm(self, pool) -> None:
        pool.home_fs.used = max(0, pool.home_fs.used - self._stolen)
        self._stolen = 0
