"""The fault injector: schedules, ground truth, and the audit bridge.

The injector arms faults at scheduled simulated times (optionally
disarming them later), and afterwards answers the question the principle
auditor needs answered: *for this job's decisive execution, what was
actually wrong?*  A job whose delivered result differs from its expected
clean-run result, while a fault overlapped its decisive attempt, was a
victim of that fault -- and if the system nonetheless presented the
outcome as a program result, that is a Principle-1 violation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.job import Job, JobState
from repro.core.principles import JobGroundTruth
from repro.core.scope import ErrorScope
from repro.faults.faults import Fault

__all__ = ["FaultInjector", "Injection"]


@dataclass
class Injection:
    """One scheduled (fault, interval) pair.

    The injection window is the **closed** interval ``[at, until]``
    (``[at, inf)`` when open-ended), and an attempt occupies the closed
    interval ``[start, end]``; the injection is active during the attempt
    iff the two intervals intersect.  Closed-closed is the deliberate
    choice for ground truth: at the boundary instant the arm/disarm
    callback and the attempt event carry the same timestamp, so the
    attempt *may* have observed the armed fault -- and blame must err
    toward the fault, never toward the program.  Consequences, pinned by
    ``tests/faults/test_injection_properties.py``:

    - a zero-length attempt (``start == end``) inside the window counts;
    - an instantaneous fault (``at == until``) counts for any attempt
      whose interval contains ``at``, including its endpoints;
    - an attempt ending exactly at ``at``, or starting exactly at
      ``until``, counts (previously both fell through the half-open
      ``start < hi and end > lo`` test).
    """

    fault: Fault
    at: float = 0.0
    until: float | None = None

    def active_during(self, site: str | None, job_id: str, start: float, end: float) -> bool:
        """Did this injection overlap an attempt at *site* for *job_id*?"""
        fault = self.fault
        if fault.site is not None and fault.site != site:
            return False
        if fault.job_id is not None and fault.job_id != job_id:
            return False
        return end >= self.at and (self.until is None or start <= self.until)


class FaultInjector:
    """Arms faults on a pool according to a schedule."""

    def __init__(self, pool):
        self.pool = pool
        self.injections: list[Injection] = []
        self.armed: list[tuple[float, Fault]] = []

    # -- scheduling ----------------------------------------------------------
    def schedule(self, fault: Fault, at: float = 0.0, until: float | None = None) -> Injection:
        """Arm *fault* at time *at*; disarm at *until* if given."""
        injection = Injection(fault, at, until)
        self.injections.append(injection)
        sim = self.pool.sim

        def note(event: str) -> None:
            bus = getattr(self.pool, "bus", None)
            if bus is not None and bus.active:
                bus.emit(
                    sim.now, "fault", event,
                    fault=type(fault).__name__, scope=fault.scope.name,
                    site=fault.site or "", job=fault.job_id or "",
                )

        def arm() -> None:
            fault.arm(self.pool)
            self.armed.append((sim.now, fault))
            note("arm")

        def disarm() -> None:
            fault.disarm(self.pool)
            note("disarm")

        if at <= sim.now:
            arm()
        else:
            sim.call_at(at, arm)
        if until is not None:
            sim.call_at(until, disarm)
        return injection

    # -- ground truth ----------------------------------------------------------
    def truth_for_attempt(
        self,
        site: str,
        job_id: str,
        start: float,
        end: float,
        include_implicit: bool = True,
    ) -> ErrorScope | None:
        """The widest ground-truth scope of any fault overlapping the attempt.

        ``include_implicit=False`` restricts to faults that produce
        *explicit* errors -- the relevant set for the P1 audit, since a
        system cannot mishandle an error it was never shown.
        """
        scopes = [
            inj.fault.scope
            for inj in self.injections
            if inj.active_during(site, job_id, start, end)
            and (include_implicit or not inj.fault.implicit)
        ]
        return max(scopes) if scopes else None

    def stamp_attempts(self, jobs: list[Job]) -> None:
        """Record ground truth onto every attempt (for reports and audits)."""
        for job in jobs:
            for attempt in job.attempts:
                end = attempt.ended if attempt.ended >= 0 else self.pool.sim.now
                attempt.truth_scope = self.truth_for_attempt(
                    attempt.site, job.job_id, attempt.started, end
                )

    # -- the P1 audit bridge ------------------------------------------------------
    def truth_for_job(self, job: Job) -> JobGroundTruth:
        """The ground-truth record for one job, as it stands right now.

        A completed job whose delivered result matches its expected
        clean-run result is clean (truth None) even if a fault was nearby:
        the fault did not become an error.  A mismatch while a fault
        overlapped the decisive attempt pins the truth to that fault.

        Callable mid-run: the live sanitizer invokes it at each terminal
        job event, when the job's final state and decisive attempt are
        already recorded, so the verdict equals the post-hoc one.
        """
        claimed = (
            job.state is JobState.COMPLETED
            and job.final_result is not None
            and job.final_result.is_program_result
        )
        truth: ErrorScope | None = None
        if job.attempts:
            decisive = job.attempts[-1]
            end = decisive.ended if decisive.ended >= 0 else self.pool.sim.now
            explicit_truth = self.truth_for_attempt(
                decisive.site, job.job_id, decisive.started, end,
                include_implicit=False,
            )
            if claimed and job.expected_result is not None:
                if not job.final_result.same_outcome(job.expected_result):
                    truth = explicit_truth
            else:
                truth = explicit_truth
        return JobGroundTruth(
            job_id=job.job_id,
            truth_scope=truth,
            claimed_program_result=claimed,
            detail=f"state={job.state.value}",
        )

    def audit_outcomes(self, jobs: list[Job]) -> list[JobGroundTruth]:
        """Build :class:`JobGroundTruth` records for the principle auditor."""
        self.stamp_attempts(jobs)
        return [self.truth_for_job(job) for job in jobs]
