"""Spans: nested intervals assembled live from the telemetry stream.

Two span families cover the two journeys the paper cares about:

- a **job journey** -- one root span per job (``job:<id>``) with child
  phase spans following the lifecycle submit -> queued -> claim ->
  attempt -> result/hold; a retried job grows additional queued/claim/
  attempt phases;
- an **error journey** -- one root span per propagated error
  (``error:<id>``) with one child span per *hop* through the management
  chain (discovered, escalated, delivered, masked, reported, mishandled,
  unmanaged), mirroring Figure 3 live instead of post-hoc.

The :class:`SpanBuilder` is an ordinary bus subscriber: the emission
sites stay span-agnostic and pay nothing for span assembly.  Span ids
are dense per-builder sequence numbers, so the span set for a given seed
is identical across runs (DESIGN.md §6).

The FIG3 scope->handler table can be derived from the error spans via
:meth:`SpanBuilder.scope_to_handlers`, as a live cross-check of
``analysis/journeys.py``'s post-hoc reconstruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic

__all__ = ["Span", "SpanBuilder"]

#: ERROR-topic event names that end an error's journey.
_TERMINAL_HOPS = frozenset({"masked", "reported", "mishandled", "unmanaged"})


@dataclass
class Span:
    """One named interval of simulated time, possibly nested."""

    span_id: int
    parent_id: int | None
    name: str
    kind: str  # "job" | "phase" | "error" | "hop"
    start: float
    end: float | None = None
    status: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def open(self) -> bool:
        """True while the span has not been closed."""
        return self.end is None

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def __str__(self) -> str:
        end = "..." if self.end is None else f"{self.end:.3f}"
        status = f" [{self.status}]" if self.status else ""
        return f"<span {self.span_id} {self.name} {self.start:.3f}..{end}{status}>"


class SpanBuilder:
    """Assembles :class:`Span` trees from a live telemetry stream."""

    def __init__(self, bus: TelemetryBus):
        self.spans: list[Span] = []
        self._next_id = 1
        #: job_id -> open root span
        self._job_roots: dict[str, Span] = {}
        #: job_id -> open phase span
        self._job_phase: dict[str, Span] = {}
        #: job_id -> attempt ordinal (for phase naming)
        self._attempts: dict[str, int] = {}
        #: error_id -> open journey span
        self._error_roots: dict[Any, Span] = {}
        self._unsubscribe = bus.subscribe(self.on_event)

    # -- span bookkeeping ----------------------------------------------
    def _open(
        self, name: str, kind: str, start: float, parent: Span | None = None, **attrs: Any
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            name=name,
            kind=kind,
            start=start,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    @staticmethod
    def _close(span: Span, end: float, status: str = "") -> None:
        if span.end is None:
            span.end = end
            if status:
                span.status = status

    # -- the subscriber -------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        """Feed one telemetry event into the span state machines."""
        if event.topic is Topic.JOB:
            self._on_job(event)
        elif event.topic is Topic.ERROR:
            self._on_error(event)

    def _on_job(self, event: TelemetryEvent) -> None:
        job_id = event.attr("job")
        if job_id is None:
            return
        t, name = event.time, event.name
        root = self._job_roots.get(job_id)
        if name == "submit":
            if root is not None:
                return  # duplicate submit; keep the original journey
            root = self._open(f"job:{job_id}", "job", t, **dict(event.attrs))
            self._job_roots[job_id] = root
            self._job_phase[job_id] = self._open("queued", "phase", t, parent=root)
            self._attempts[job_id] = 0
            return
        if root is None:
            return  # event for a job whose submit predates the session
        phase = self._job_phase.get(job_id)
        if name == "match":
            if phase is not None:
                self._close(phase, t)
            self._job_phase[job_id] = self._open(
                "claim", "phase", t, parent=root, site=event.attr("site")
            )
        elif name == "claim_failed":
            if phase is not None:
                self._close(phase, t, status="claim_failed")
            self._job_phase[job_id] = self._open("queued", "phase", t, parent=root)
        elif name == "execute":
            if phase is not None:
                self._close(phase, t)
            self._attempts[job_id] += 1
            self._job_phase[job_id] = self._open(
                f"attempt:{self._attempts[job_id]}",
                "phase",
                t,
                parent=root,
                site=event.attr("site"),
            )
        elif name == "site_failed":
            if phase is not None:
                self._close(phase, t, status="site_failed")
            self._job_phase[job_id] = self._open("queued", "phase", t, parent=root)
        elif name == "flock":
            # The job's ad crossed a pool boundary; record the hop on the
            # journey root without disturbing the phase machine.
            root.attrs["flocked"] = event.attr("target")
        elif name in ("result", "hold"):
            status = "completed" if name == "result" else "held"
            if phase is not None:
                self._close(phase, t, status=status)
            self._close(root, t, status=status)
            root.attrs.update(dict(event.attrs))
            self._job_roots.pop(job_id, None)
            self._job_phase.pop(job_id, None)

    def _on_error(self, event: TelemetryEvent) -> None:
        error_id = event.attr("error_id")
        if error_id is None:
            return
        t, hop = event.time, event.name
        journey = self._error_roots.get(error_id)
        if journey is None:
            journey = self._open(
                f"error:{error_id}",
                "error",
                t,
                error=event.attr("error"),
                scope=event.attr("scope"),
            )
            self._error_roots[error_id] = journey
        # One span per hop; hops are instantaneous in simulated time.
        self._open(
            f"hop:{hop}",
            "hop",
            t,
            parent=journey,
            manager=event.attr("manager"),
        )
        if hop in _TERMINAL_HOPS:
            self._close(journey, t, status=hop)
            self._error_roots.pop(error_id, None)

    # -- teardown and queries -------------------------------------------
    def detach(self) -> None:
        """Stop listening (open spans stay open, end=None)."""
        self._unsubscribe()

    def journeys(self) -> list[Span]:
        """The error-journey root spans, in creation order."""
        return [s for s in self.spans if s.kind == "error"]

    def job_spans(self) -> list[Span]:
        """The job-journey root spans, in creation order."""
        return [s for s in self.spans if s.kind == "job"]

    def scope_to_handlers(self) -> dict[str, set[str]]:
        """The observed scope -> handling-manager map (FIG3, live).

        For every error journey that ended in ``masked`` or ``reported``,
        the manager of its terminal hop handled that scope.  Cross-checks
        ``analysis.journeys.observed_scope_map`` from the span stream.
        """
        children: dict[int, list[Span]] = {}
        for span in self.spans:
            if span.kind == "hop" and span.parent_id is not None:
                children.setdefault(span.parent_id, []).append(span)
        table: dict[str, set[str]] = {}
        for journey in self.journeys():
            if journey.status not in ("masked", "reported"):
                continue
            hops = children.get(journey.span_id, [])
            if not hops:
                continue
            handler = hops[-1].attrs.get("manager")
            scope = journey.attrs.get("scope")
            if handler and scope:
                table.setdefault(scope, set()).add(handler)
        return table
