"""Labeled metric series: counters, gauges, and histograms.

A :class:`MetricsRegistry` holds named series keyed by ``(name, labels)``
in the Prometheus style (``io_ops_total{op=read}``), with three
instrument kinds:

- **counter** -- monotone accumulator (``inc``);
- **gauge** -- last-write-wins sample (``set``);
- **histogram** -- fixed-bucket distribution (``observe``), recording
  count, sum, and cumulative bucket occupancy.

Everything is deterministic: snapshots sort by series key, buckets are
fixed at registration, and no wall-clock ever enters a series
(DESIGN.md §6).  The :class:`BusMetricsRecorder` is the standard bridge
from the telemetry bus: it maintains the event-count families every run
gets for free.
"""

from __future__ import annotations

from bisect import bisect_left
from math import ceil

from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic

__all__ = ["BusMetricsRecorder", "MetricsRegistry"]

#: Default histogram buckets: log-spaced, good for seconds and bytes alike.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0,
)

_SeriesKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: dict[str, object]) -> _SeriesKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: _SeriesKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class _Histogram:
    """One histogram series: fixed bounds, cumulative counts.

    Exact observations are retained (the reproduction's series are small
    and bounded by the run), so snapshots can report **nearest-rank**
    percentiles: ``pQQ`` is the ``ceil(QQ/100 * count)``-th smallest
    observation -- always an actually-observed value, and deterministic
    for a given seed.  The bench JSON and the console's jobs panel rely
    on ``p50`` / ``p95`` / ``p99``.
    """

    __slots__ = ("bounds", "counts", "count", "total", "values")

    def __init__(self, bounds: tuple[float, ...]):
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self.count = 0
        self.total = 0.0
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.values.append(value)

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile *q* in [0, 100]; None while empty."""
        if not self.values:
            return None
        ordered = sorted(self.values)
        rank = max(1, ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def snapshot(self) -> dict:
        buckets = {}
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            buckets[f"le={bound:g}"] = cumulative
        buckets["le=+Inf"] = self.count
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "buckets": buckets,
        }


class MetricsRegistry:
    """Labeled counter/gauge/histogram series with deterministic snapshots."""

    def __init__(self) -> None:
        self._counters: dict[_SeriesKey, float] = {}
        self._gauges: dict[_SeriesKey, float] = {}
        self._histograms: dict[_SeriesKey, _Histogram] = {}

    # -- instruments ----------------------------------------------------
    def counter(self, name: str, amount: float = 1.0, **labels) -> None:
        """Add *amount* (default 1) to the counter series."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge series to *value*."""
        self._gauges[_key(name, labels)] = value

    def histogram(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> None:
        """Observe *value* in the histogram series (*buckets* fix on first use)."""
        key = _key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = _Histogram(tuple(buckets))
        hist.observe(value)

    # -- reads ----------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        return self._counters.get(_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels) -> float | None:
        return self._gauges.get(_key(name, labels))

    def histogram_percentile(self, name: str, q: float, **labels) -> float | None:
        """Nearest-rank percentile of a histogram series (None if absent)."""
        hist = self._histograms.get(_key(name, labels))
        return None if hist is None else hist.percentile(q)

    def snapshot(self) -> dict:
        """All series, sorted by rendered key -- stable for a given seed."""
        return {
            "counters": {
                _render_key(k): v for k, v in sorted(self._counters.items())
            },
            "gauges": {_render_key(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                _render_key(k): h.snapshot()
                for k, h in sorted(self._histograms.items())
            },
        }

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)


class BusMetricsRecorder:
    """Bus subscriber that keeps the standard series families up to date.

    - ``events_total{topic=}`` -- every event;
    - ``job_events_total{event=}`` -- lifecycle steps;
    - ``error_hops_total{hop=,scope=}`` -- management-chain hops;
    - ``interface_crossings_total{interface=,declared=}`` -- errors
      presented at error interfaces;
    - ``io_ops_total{channel=,op=}`` and ``io_bytes`` -- remote I/O;
    - ``fault_events_total{event=}`` -- injector arms/disarms;
    - ``sim_time_seconds`` -- gauge of the latest event's sim time.
    """

    def __init__(self, bus: TelemetryBus, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._unsubscribe = bus.subscribe(self.on_event)

    def detach(self) -> None:
        """Stop listening; the registry keeps its accumulated series."""
        self._unsubscribe()

    def on_event(self, event: TelemetryEvent) -> None:
        """Fold one telemetry event into the standard series."""
        reg = self.registry
        reg.counter("events_total", topic=event.topic.value)
        reg.gauge("sim_time_seconds", event.time)
        if event.topic is Topic.JOB:
            reg.counter("job_events_total", event=event.name)
        elif event.topic is Topic.ERROR:
            reg.counter(
                "error_hops_total", hop=event.name, scope=event.attr("scope", "?")
            )
        elif event.topic is Topic.INTERFACE:
            reg.counter(
                "interface_crossings_total",
                interface=event.attr("interface", "?"),
                declared=event.attr("declared", "?"),
            )
        elif event.topic is Topic.IO:
            reg.counter(
                "io_ops_total",
                channel=event.attr("channel", "?"),
                op=event.attr("op", "?"),
            )
            nbytes = event.attr("bytes")
            if nbytes is not None:
                reg.histogram("io_bytes", float(nbytes))
        elif event.topic is Topic.FAULT:
            reg.counter("fault_events_total", event=event.name)
