"""Coverage signatures: a run's behaviour as a set of feature strings.

The fault-space fuzzer (:mod:`repro.campaign.fuzz`) needs to know when
two cells behaved *differently*, not merely that they ran.  This module
derives that judgement from the observability layer's own artifacts --
sanitizer/auditor verdicts, the span tree, terminal job states -- as a
**pure function**: no bus access, no globals, no wall clock, so the
signature of a cell is as deterministic as the cell itself.

A signature is a sorted tuple of feature strings in four families:

- ``viol:P<n>:<subject>:<description>`` -- one per distinct principle
  violation, with job ids and site names normalized away (the *shape*
  of the violation matters for coverage; which job tripped it does not);
- ``journey:<scope>:<hop>><hop>...`` -- the hop sequence of each error
  journey, keyed by the scope the error was born with (FIG3 live);
- ``shape:<phase>...`` -- each job journey's phase sequence with
  per-phase statuses (a retry loop, a flocked job and a clean run all
  fingerprint differently);
- ``outcome:<state>`` -- which terminal job states occurred (plus
  ``outcome:<state>=all`` when the whole workload agreed).

The fuzzer's :class:`~repro.campaign.coverage.CoverageMap` treats each
feature as one coordinate of the fault space: a cell earns corpus
membership by producing a feature no earlier cell produced.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Sequence

from repro.obs.span import Span

__all__ = ["normalize_violation", "signature", "violation_features"]

#: Cap on hops kept per journey feature; longer journeys are truncated
#: with a marker so two distinct very-long loops still collide into one
#: "pathologically long" coordinate instead of infinitely many.
MAX_HOPS = 12

#: ``1.3@exec000`` / ``1.0@a-exec001`` -- a job id bound to a site.
_JOB_AT_SITE = re.compile(r"\b\d+\.\d+@[\w-]+")
#: A bare job id (``1.3``); applied after the bound form.
_JOB_ID = re.compile(r"\b\d+\.\d+\b")


def _normalize_text(text: str) -> str:
    """Strip run-specific identities (job ids, sites) from *text*."""
    text = _JOB_AT_SITE.sub("<job>@<site>", text)
    return _JOB_ID.sub("<job>", text)


def normalize_violation(violation: dict) -> str:
    """The identity-free feature string of one violation record.

    Two cells that present the same kind of error the same wrong way
    produce the same feature even when different jobs trip it.
    """
    return (
        f"viol:P{violation['principle']}"
        f":{_normalize_text(str(violation['subject']))}"
        f":{_normalize_text(str(violation['description']))}"
    )


def violation_features(violations: Iterable[dict]) -> tuple[str, ...]:
    """Sorted, deduplicated violation features of a record's verdicts."""
    return tuple(sorted({normalize_violation(v) for v in violations}))


def _journey_features(spans: Sequence[Span]) -> set[str]:
    hops_by_parent: dict[int, list[str]] = {}
    for span in spans:
        if span.kind == "hop" and span.parent_id is not None:
            hop = span.name.split(":", 1)[-1]
            hops_by_parent.setdefault(span.parent_id, []).append(hop)
    features: set[str] = set()
    for span in spans:
        if span.kind != "error":
            continue
        hops = hops_by_parent.get(span.span_id, [])
        if len(hops) > MAX_HOPS:
            hops = hops[:MAX_HOPS] + ["..."]
        scope = span.attrs.get("scope") or "?"
        features.add(f"journey:{scope}:" + ">".join(hops))
    return features


def _shape_features(spans: Sequence[Span]) -> set[str]:
    phases_by_parent: dict[int, list[str]] = {}
    for span in spans:
        if span.kind != "phase" or span.parent_id is None:
            continue
        # "attempt:2" -> "attempt": the retry count shows up as repeated
        # phases, not as an ordinal that would make every retry depth a
        # fresh coordinate.
        name = span.name.split(":", 1)[0]
        if span.status:
            name = f"{name}[{span.status}]"
        phases_by_parent.setdefault(span.parent_id, []).append(name)
    features: set[str] = set()
    for span in spans:
        if span.kind != "job":
            continue
        shape = ">".join(phases_by_parent.get(span.span_id, []))
        features.add(f"shape:{shape}")
        if "flocked" in span.attrs:
            features.add("shape:flocked")
    return features


def signature(
    violations: Iterable[dict],
    spans: Sequence[Span],
    job_states: Sequence[str],
) -> tuple[str, ...]:
    """The full coverage signature of one cell run (sorted, deduped).

    *violations* are JSON-ready verdict dicts (``principle`` /
    ``subject`` / ``description``), *spans* the cell's assembled span
    list, *job_states* the terminal :class:`~repro.condor.job.JobState`
    names of the workload.
    """
    features: set[str] = set(violation_features(violations))
    features |= _journey_features(spans)
    features |= _shape_features(spans)
    states = [state.lower() for state in job_states]
    for state in states:
        features.add(f"outcome:{state}")
    if states and len(set(states)) == 1:
        features.add(f"outcome:{states[0]}=all")
    return tuple(sorted(features))
