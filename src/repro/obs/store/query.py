"""Query-side rendering for the results store: run listings, trend
tables across commits, and commit-to-commit diffs.

``trend`` renders one metric's trajectory -- one row per commit in
first-ingestion order, one column per label -- and flags wall-side
regressions by the exact rule :mod:`repro.bench.compare` applies in CI
(fractional threshold on the value, with a floor below which timings
are noise).  ``diff`` goes further for bench artifacts: the stored
payloads are already wall-stripped, so the sim side is compared
byte-exactly via :func:`~repro.bench.compare.compare_records`, and the
wall side comes from the store's wall-flagged metric rows.
"""

from __future__ import annotations

from repro.bench.compare import (
    DEFAULT_MIN_WALL_SECONDS,
    DEFAULT_WALL_THRESHOLD,
    compare_records,
)
from repro.obs.store import ResultsStore

__all__ = ["diff_commits", "render_diff", "render_runs", "render_trend", "trend_table"]


def render_runs(rows: list[dict], strip_wall: bool = False) -> str:
    """The run listing; ``--strip-wall`` drops the wall-side columns so
    the output is byte-identical across hosts and ingestion times."""
    from repro.harness.report import Table

    headers = ["run", "kind", "source", "schema", "config", "seed", "payload sha", "bytes"]
    if not strip_wall:
        headers += ["commit", "ingested at"]
    table = Table(headers, title=f"results store: {len(rows)} run(s)")
    for row in rows:
        cells = [
            row["run_id"],
            row["kind"],
            row["source"],
            row["schema"],
            row["config_hash"],
            "-" if row["seed"] is None else row["seed"],
            row["payload_sha"],
            row["payload_bytes"],
        ]
        if not strip_wall:
            cells += [row["commit"], f"{row['ingested_at']:.0f}"]
        table.add_row(cells)
    if not rows:
        table.add_row(["(empty)"] + ["-"] * (len(headers) - 1))
    return table.render()


def trend_table(
    trend: dict,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
) -> tuple[str, list[str]]:
    """Render one metric's per-commit trajectory; return (table, regressions).

    A wall-flagged series regresses when a commit's value exceeds the
    previous non-missing value by more than *wall_threshold* and both
    clear *min_wall_seconds* -- the ``repro.bench compare`` rule.
    Regressed entries are marked ``!`` in the table and itemised.
    """
    from repro.harness.report import Table

    commits = trend["commits"]
    series = trend["series"]
    labels = list(series)
    regressions: list[str] = []
    flagged: dict[tuple[str, int], bool] = {}
    for label in labels:
        if not trend["wall"].get(label):
            continue
        previous = None
        for i, value in enumerate(series[label]):
            if value is None:
                continue
            if (
                previous is not None
                and not (previous < min_wall_seconds and value < min_wall_seconds)
                and value > previous * (1.0 + wall_threshold)
            ):
                flagged[(label, i)] = True
                regressions.append(
                    f"{trend['metric']}[{label}]: {previous:.4f} -> {value:.4f} "
                    f"at {commits[i]} (> {wall_threshold:+.0%} threshold)"
                )
            previous = value
    table = Table(
        ["commit"] + labels,
        title=f"trend: {trend['metric']} across {len(commits)} commit(s)",
    )
    for i, sha in enumerate(commits):
        row: list = [sha]
        for label in labels:
            value = series[label][i]
            if value is None:
                row.append("-")
            else:
                text = f"{value:.6g}"
                row.append(f"{text} !" if flagged.get((label, i)) else text)
        table.add_row(row)
    if not commits:
        table.add_row(["(no data)"] + ["-"] * len(labels))
    if regressions:
        table.add_footer(f"{len(regressions)} wall regression(s) flagged (!)")
    return table.render(), regressions


def render_trend(trend: dict) -> str:
    return trend_table(trend)[0]


def diff_commits(
    store: ResultsStore,
    commit_a: str,
    commit_b: str,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
) -> dict:
    """Compare everything two commits both recorded.

    Bench payloads go through :func:`compare_records` (sim side exact --
    the payloads are stored wall-stripped, so this is a pure behaviour
    diff); wall-flagged metric rows are judged by the threshold rule.
    Benchmarks present on only one side are problems, same as the CI
    gate.
    """
    known = store.commits()
    missing = [sha for sha in (commit_a, commit_b) if sha not in known]
    if missing:
        raise LookupError(
            f"commit(s) {', '.join(missing)} not in the results store"
            f" (known: {', '.join(known) if known else 'none'})"
        )
    old_bench = store.bench_payloads(commit_a)
    new_bench = store.bench_payloads(commit_b)
    problems: list[str] = []
    for name in sorted(set(old_bench) - set(new_bench)):
        problems.append(f"{name}: present at {commit_a} only")
    for name in sorted(set(new_bench) - set(old_bench)):
        problems.append(f"{name}: present at {commit_b} only")
    compared = sorted(set(old_bench) & set(new_bench))
    for name in compared:
        # Payloads are wall-stripped, so only the exact sim side fires here.
        problems.extend(
            compare_records(old_bench[name], new_bench[name], check_wall=False)
        )
    old_wall = store.wall_metrics(commit_a)
    new_wall = store.wall_metrics(commit_b)
    wall_compared = 0
    for key in sorted(set(old_wall) & set(new_wall)):
        before, after = old_wall[key], new_wall[key]
        if before < min_wall_seconds and after < min_wall_seconds:
            continue
        wall_compared += 1
        if after > before * (1.0 + wall_threshold):
            name, label = key
            problems.append(
                f"{name}[{label}]: wall regression {before:.4f}s -> {after:.4f}s "
                f"(> {wall_threshold:+.0%} threshold)"
            )
    return {
        "commit_a": commit_a,
        "commit_b": commit_b,
        "benchmarks": compared,
        "wall_metrics": wall_compared,
        "problems": problems,
    }


def render_diff(diff: dict) -> str:
    lines = [
        f"diff {diff['commit_a']} -> {diff['commit_b']}: "
        f"{len(diff['benchmarks'])} benchmark(s), "
        f"{diff['wall_metrics']} wall metric(s) compared"
    ]
    lines.extend(f"REGRESSION: {problem}" for problem in diff["problems"])
    lines.append("OK" if not diff["problems"] else f"{len(diff['problems'])} problem(s)")
    return "\n".join(lines)
