"""The longitudinal results store: SQLite, schema ``repro-results/1``.

One append-only database remembers what every one-shot artifact forgot:
``runs`` rows keyed by commit, config hash, and seed, each carrying the
artifact's **wall-stripped canonical payload** (the deterministic part,
byte-identical across serial and ``--jobs N`` source runs), plus
relational projections -- ``metrics``, ``bench_cases``, ``cells``,
``violations``, ``profile_sections``, ``error_hops`` -- that the query
CLI (:mod:`repro.obs.store.__main__`) and the GridConsole web view
(:mod:`repro.obs.web`) read directly.

The determinism contract (DESIGN.md §3.6f): everything wall-side --
the commit sha, the ingestion timestamp, and ``wall``-flagged metric
rows -- lives in its own columns, never inside the payload, so
``query --strip-wall`` output over two stores fed the same artifacts is
byte-identical no matter when or on what host they were ingested.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

from repro.obs.store.ingest import Extracted, IngestError, extract, extract_text

__all__ = [
    "IngestError",
    "RESULTS_SCHEMA",
    "ResultsStore",
    "StoreSchemaError",
    "canonical_json",
    "config_hash",
    "default_commit",
]

RESULTS_SCHEMA = "repro-results/1"

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id      INTEGER PRIMARY KEY,
    kind        TEXT NOT NULL,
    source      TEXT NOT NULL,
    schema      TEXT NOT NULL,
    config_hash TEXT NOT NULL,
    seed        INTEGER,
    payload     TEXT NOT NULL,
    -- wall-side metadata: never part of the deterministic payload
    commit_sha  TEXT NOT NULL,
    ingested_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS runs_by_commit ON runs(commit_sha, run_id);
CREATE INDEX IF NOT EXISTS runs_by_kind ON runs(kind, run_id);
CREATE TABLE IF NOT EXISTS metrics (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    name   TEXT NOT NULL,
    label  TEXT NOT NULL DEFAULT '',
    value  REAL NOT NULL,
    wall   INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS metrics_by_name ON metrics(name, label, run_id);
CREATE TABLE IF NOT EXISTS bench_cases (
    run_id           INTEGER NOT NULL REFERENCES runs(run_id),
    bench            TEXT NOT NULL,
    case_id          TEXT NOT NULL,
    ok               INTEGER NOT NULL,
    deterministic    INTEGER NOT NULL,
    sim_events       INTEGER,
    sim_time         REAL,
    wall_min_seconds REAL
);
CREATE TABLE IF NOT EXISTS cells (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    cell        TEXT NOT NULL,
    fault_order INTEGER NOT NULL,
    completed   INTEGER NOT NULL,
    held        INTEGER NOT NULL,
    unfinished  INTEGER NOT NULL,
    violations  INTEGER NOT NULL,
    makespan    REAL,
    error       TEXT
);
CREATE TABLE IF NOT EXISTS violations (
    run_id      INTEGER NOT NULL REFERENCES runs(run_id),
    cell        TEXT NOT NULL,
    principle   INTEGER NOT NULL,
    subject     TEXT NOT NULL,
    description TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS profile_sections (
    run_id   INTEGER NOT NULL REFERENCES runs(run_id),
    daemon   TEXT NOT NULL,
    phase    TEXT NOT NULL,
    scope    TEXT NOT NULL,
    events   INTEGER NOT NULL,
    sim_time REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS error_hops (
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    scope  TEXT NOT NULL,
    hops   INTEGER NOT NULL
);
"""

#: child tables swept alongside their runs row (gc, purge).
_CHILD_TABLES = (
    "metrics", "bench_cases", "cells", "violations", "profile_sections", "error_hops",
)


class StoreSchemaError(RuntimeError):
    """The database on disk speaks a different results schema version."""


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, fixed separators, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def config_hash(config: dict) -> str:
    """Stable short hash identifying a run configuration across commits."""
    return hashlib.sha256(canonical_json(config).encode()).hexdigest()[:12]


def default_commit(cwd: str | Path | None = None) -> str:
    """The current commit's short sha, or ``unknown`` outside a checkout.

    Wall-side metadata only -- the sha labels a trajectory point and
    never enters a deterministic payload.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10, cwd=cwd,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


class ResultsStore:
    """Open (or create) the results store at *path* (``:memory:`` for tests)."""

    def __init__(self, path: str = "repro-results.db", now: Callable[[], float] = time.time):
        self.path = path
        self.now = now
        self._db = sqlite3.connect(path)
        self._db.executescript(_TABLES)
        row = self._db.execute("SELECT value FROM meta WHERE key='schema'").fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta(key, value) VALUES ('schema', ?)", (RESULTS_SCHEMA,)
            )
            self._db.commit()
        elif row[0] != RESULTS_SCHEMA:
            self._db.close()
            raise StoreSchemaError(
                f"results store at {path!r} has schema {row[0]!r}, "
                f"this build speaks {RESULTS_SCHEMA!r}"
            )

    def close(self) -> None:
        self._db.close()

    # -- ingestion -------------------------------------------------------
    def ingest_obj(self, obj: Any, source: str, commit: str = "unknown") -> int:
        """Ingest one parsed artifact; returns the new run id."""
        return self._insert(extract(obj, source), source, commit)

    def ingest_text(self, text: str, source: str, commit: str = "unknown") -> int:
        """Ingest one artifact from raw text (JSON document or JSONL trace)."""
        return self._insert(extract_text(text, source), source, commit)

    def ingest_path(self, path: str | Path, commit: str = "unknown") -> int:
        """Ingest one artifact file; the source name is its basename."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise IngestError("NOT_JSON", path.name, f"cannot read file: {exc}") from None
        return self.ingest_text(text, source=path.name, commit=commit)

    def _insert(self, ex: Extracted, source: str, commit: str) -> int:
        cursor = self._db.execute(
            "INSERT INTO runs(kind, source, schema, config_hash, seed, payload,"
            " commit_sha, ingested_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                ex.kind,
                source,
                ex.artifact_schema,
                config_hash(ex.config),
                ex.seed,
                canonical_json(ex.payload),
                commit,
                self.now(),
            ),
        )
        run_id = cursor.lastrowid
        self._db.executemany(
            "INSERT INTO metrics(run_id, name, label, value, wall) VALUES (?, ?, ?, ?, ?)",
            [(run_id, n, l, v, int(w)) for n, l, v, w in ex.metrics],
        )
        self._db.executemany(
            "INSERT INTO bench_cases(run_id, bench, case_id, ok, deterministic,"
            " sim_events, sim_time, wall_min_seconds) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            [(run_id, b, c, int(ok), int(d), e, t, w)
             for b, c, ok, d, e, t, w in ex.bench_cases],
        )
        self._db.executemany(
            "INSERT INTO cells(run_id, cell, fault_order, completed, held, unfinished,"
            " violations, makespan, error) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            [(run_id, *cell) for cell in ex.cells],
        )
        self._db.executemany(
            "INSERT INTO violations(run_id, cell, principle, subject, description)"
            " VALUES (?, ?, ?, ?, ?)",
            [(run_id, *violation) for violation in ex.violations],
        )
        self._db.executemany(
            "INSERT INTO profile_sections(run_id, daemon, phase, scope, events, sim_time)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            [(run_id, *section) for section in ex.profile_sections],
        )
        self._db.executemany(
            "INSERT INTO error_hops(run_id, scope, hops) VALUES (?, ?, ?)",
            [(run_id, scope, hops) for scope, hops in ex.error_hops],
        )
        self._db.commit()
        return run_id

    # -- queries ---------------------------------------------------------
    def runs(
        self,
        kind: str | None = None,
        commit: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Run rows (payload digest, not body), newest last by run id."""
        sql = (
            "SELECT run_id, kind, source, schema, config_hash, seed, payload,"
            " commit_sha, ingested_at FROM runs"
        )
        clauses, params = [], []
        if kind is not None:
            clauses.append("kind=?")
            params.append(kind)
        if commit is not None:
            clauses.append("commit_sha=?")
            params.append(commit)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY run_id"
        rows = self._db.execute(sql, params).fetchall()
        if limit is not None:
            rows = rows[-limit:]
        return [
            {
                "run_id": r[0],
                "kind": r[1],
                "source": r[2],
                "schema": r[3],
                "config_hash": r[4],
                "seed": r[5],
                "payload_sha": hashlib.sha256(r[6].encode()).hexdigest()[:12],
                "payload_bytes": len(r[6]),
                "commit": r[7],
                "ingested_at": r[8],
            }
            for r in rows
        ]

    def payload(self, run_id: int) -> Any:
        """The deterministic payload of one run, parsed."""
        row = self._db.execute(
            "SELECT payload FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        if row is None:
            raise LookupError(f"no run {run_id} in results store {self.path!r}")
        return json.loads(row[0])

    def latest_run(self, kind: str, commit: str | None = None) -> dict | None:
        """The newest run row of *kind* (optionally at one commit)."""
        rows = self.runs(kind=kind, commit=commit)
        return rows[-1] if rows else None

    def commits(self) -> list[str]:
        """Distinct commits in first-ingestion order -- the trajectory axis."""
        seen: list[str] = []
        for (sha,) in self._db.execute("SELECT commit_sha FROM runs ORDER BY run_id"):
            if sha not in seen:
                seen.append(sha)
        return seen

    def metric_names(self) -> list[tuple[str, int]]:
        """Every metric name with its row count (for ``trend`` discovery)."""
        return list(
            self._db.execute(
                "SELECT name, COUNT(*) FROM metrics GROUP BY name ORDER BY name"
            )
        )

    def trend(self, metric: str, label: str | None = None) -> dict:
        """Per-commit trajectory of one metric: the latest value each
        (commit, label) pair has, commits in first-ingestion order."""
        sql = (
            "SELECT r.commit_sha, m.label, m.value, m.wall, m.run_id FROM metrics m"
            " JOIN runs r ON r.run_id = m.run_id WHERE m.name=?"
        )
        params: list = [metric]
        if label is not None:
            sql += " AND m.label LIKE ?"
            params.append(f"%{label}%")
        sql += " ORDER BY m.run_id"
        commits = self.commits()
        order = {sha: i for i, sha in enumerate(commits)}
        series: dict[str, list] = {}
        wall_flags: dict[str, bool] = {}
        for sha, lbl, value, wall, _run in self._db.execute(sql, params):
            if sha not in order:  # pragma: no cover - defensive
                continue
            column = series.setdefault(lbl, [None] * len(commits))
            column[order[sha]] = value  # later runs overwrite: latest wins
            wall_flags[lbl] = wall_flags.get(lbl, False) or bool(wall)
        return {
            "metric": metric,
            "commits": commits,
            "series": {lbl: series[lbl] for lbl in sorted(series)},
            "wall": {lbl: wall_flags[lbl] for lbl in sorted(wall_flags)},
        }

    def error_hops(self, commit: str | None = None) -> dict[str, int]:
        """Aggregate error hops by scope over the latest trace/metrics run
        of each source (or every run at one commit)."""
        latest: dict[tuple[str, str], int] = {}
        sql = "SELECT run_id, kind, source, commit_sha FROM runs ORDER BY run_id"
        for run_id, kind, source, sha in self._db.execute(sql):
            if commit is not None and sha != commit:
                continue
            latest[(kind, source)] = run_id
        hops: dict[str, int] = {}
        for run_id in latest.values():
            for scope, n in self._db.execute(
                "SELECT scope, hops FROM error_hops WHERE run_id=?", (run_id,)
            ):
                hops[scope] = hops.get(scope, 0) + n
        return dict(sorted(hops.items()))

    def violation_count(self) -> int:
        """Total sanitizer violations recorded across all stored runs."""
        (count,) = self._db.execute("SELECT COUNT(*) FROM violations").fetchone()
        return int(count)

    def sections(self, commit: str | None = None, top: int = 12) -> list[dict]:
        """Aggregate "where time went" triples over the latest run of each
        source, heaviest simulated time first."""
        latest: dict[tuple[str, str], int] = {}
        for run_id, kind, source, sha in self._db.execute(
            "SELECT run_id, kind, source, commit_sha FROM runs ORDER BY run_id"
        ):
            if commit is not None and sha != commit:
                continue
            latest[(kind, source)] = run_id
        totals: dict[tuple[str, str, str], list[float]] = {}
        for run_id in latest.values():
            for daemon, phase, scope, events, sim_time in self._db.execute(
                "SELECT daemon, phase, scope, events, sim_time"
                " FROM profile_sections WHERE run_id=?", (run_id,)
            ):
                entry = totals.setdefault((daemon, phase, scope), [0, 0.0])
                entry[0] += events
                entry[1] += sim_time
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1][1], kv[0]))
        return [
            {
                "daemon": daemon, "phase": phase, "scope": scope,
                "events": int(events), "sim_time": sim_time,
            }
            for (daemon, phase, scope), (events, sim_time) in ranked[:top]
        ]

    def folded(self, commit: str | None = None) -> tuple[list[str], list[dict]]:
        """Flamegraph folded stacks, merged over the latest profile-carrying
        run of each source (profile exports and bench cases both ship them).

        Returns ``(stacks, run_rows)`` -- empty when nothing stores stacks.
        """
        latest: dict[tuple[str, str], int] = {}
        for run_id, kind, source, sha in self._db.execute(
            "SELECT run_id, kind, source, commit_sha FROM runs"
            " WHERE kind IN ('profile', 'bench', 'harness') ORDER BY run_id"
        ):
            if commit is not None and sha != commit:
                continue
            latest[(kind, source)] = run_id
        stacks: list[str] = []
        rows: list[dict] = []
        for (kind, source), run_id in sorted(latest.items(), key=lambda kv: kv[1]):
            payload = self.payload(run_id)
            found = list(payload.get("folded") or [])
            for case in (payload.get("cases") or {}).values():
                found.extend(case.get("folded") or [])
            if found:
                stacks.extend(found)
                rows.append({"run_id": run_id, "kind": kind, "source": source})
        return stacks, rows

    def matrix(self, commit: str | None = None) -> dict | None:
        """The newest campaign/fuzz run's cell grid (for the console)."""
        candidates = [
            row
            for kind in ("campaign", "fuzz")
            if (row := self.latest_run(kind, commit=commit)) is not None
        ]
        if not candidates:
            return None
        row = max(candidates, key=lambda r: r["run_id"])
        cells = [
            {
                "cell": cell, "order": order, "completed": completed,
                "held": held, "unfinished": unfinished,
                "violations": violations, "makespan": makespan, "error": error,
            }
            for cell, order, completed, held, unfinished, violations, makespan, error
            in self._db.execute(
                "SELECT cell, fault_order, completed, held, unfinished,"
                " violations, makespan, error FROM cells WHERE run_id=?"
                " ORDER BY rowid", (row["run_id"],)
            )
        ]
        return {"run": row, "cells": cells}

    def bench_payloads(self, commit: str) -> dict[str, dict]:
        """bench name -> latest payload at *commit* (for ``diff``)."""
        out: dict[str, dict] = {}
        for row in self.runs(kind="bench", commit=commit):
            payload = self.payload(row["run_id"])
            out[payload.get("bench", row["source"])] = payload
        return out

    def wall_metrics(self, commit: str) -> dict[tuple[str, str], float]:
        """(name, label) -> latest wall-side value at *commit*."""
        out: dict[tuple[str, str], float] = {}
        for name, label, value in self._db.execute(
            "SELECT m.name, m.label, m.value FROM metrics m"
            " JOIN runs r ON r.run_id = m.run_id"
            " WHERE m.wall=1 AND r.commit_sha=? ORDER BY m.run_id",
            (commit,),
        ):
            out[(name, label)] = value  # latest run wins
        return out

    # -- retention -------------------------------------------------------
    def gc(self, keep: int, dry_run: bool = False) -> dict:
        """Keep the newest *keep* runs per (kind, config_hash); drop the rest.

        Returns ``{"deleted": [run ids], "kept": N}``.  The payloads are
        the bulky part; the child rows go with them.
        """
        if keep < 1:
            raise ValueError(f"gc keep must be >= 1, got {keep}")
        by_config: dict[tuple[str, str], list[int]] = {}
        for run_id, kind, cfg in self._db.execute(
            "SELECT run_id, kind, config_hash FROM runs ORDER BY run_id"
        ):
            by_config.setdefault((kind, cfg), []).append(run_id)
        doomed = sorted(
            run_id
            for run_ids in by_config.values()
            for run_id in run_ids[:-keep]
        )
        kept = sum(len(v) for v in by_config.values()) - len(doomed)
        if doomed and not dry_run:
            marks = ",".join("?" * len(doomed))
            for table in _CHILD_TABLES:
                self._db.execute(
                    f"DELETE FROM {table} WHERE run_id IN ({marks})", doomed  # noqa: S608
                )
            self._db.execute(f"DELETE FROM runs WHERE run_id IN ({marks})", doomed)
            self._db.commit()
        return {"deleted": doomed, "kept": kept}
