"""The results-store CLI: ``python -m repro.obs.store``.

Examples::

    python -m repro.obs.store ingest benchmarks/baseline/*.json
    python -m repro.obs.store ingest report.json --db results.db --commit abc123
    python -m repro.obs.store query --kind bench --strip-wall
    python -m repro.obs.store trend --metric wall_seconds
    python -m repro.obs.store trend --metric makespan --label fig3 --json
    python -m repro.obs.store diff abc123 def456
    python -m repro.obs.store gc --keep 5

``ingest`` auto-detects every artifact schema the reproduction emits
(BENCH / campaign / fuzz / harness JSON, trace JSONL, metrics and
profile exports) and keeps going past rejected files, reporting each
with its structured code.  ``trend`` renders a per-commit trajectory
and flags wall regressions by the same thresholds as ``repro.bench
compare``; ``diff`` compares two commits (sim side exact over the
wall-stripped payloads, wall side thresholded).  Exit codes: 0 ok,
1 regression / rejected file, 2 missing commit or empty store.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.compare import DEFAULT_MIN_WALL_SECONDS, DEFAULT_WALL_THRESHOLD
from repro.obs.store import IngestError, ResultsStore, default_commit
from repro.obs.store.query import (
    diff_commits,
    render_diff,
    render_runs,
    trend_table,
)


def _add_db(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--db", default="repro-results.db", metavar="PATH",
                        help="results store path (default: repro-results.db)")


def _add_thresholds(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--wall-threshold", type=float,
                        default=DEFAULT_WALL_THRESHOLD, metavar="F",
                        help="allowed fractional wall slowdown (same rule as "
                             "`repro.bench compare`; default %(default)s)")
    parser.add_argument("--min-wall-seconds", type=float,
                        default=DEFAULT_MIN_WALL_SECONDS, metavar="S",
                        help="ignore wall values below S on both sides "
                             "(default %(default)s)")


def _ingest_main(args: argparse.Namespace) -> int:
    commit = args.commit if args.commit is not None else default_commit()
    store = ResultsStore(args.db)
    rejected: list[IngestError] = []
    try:
        for path in args.artifacts:
            try:
                run_id = store.ingest_path(path, commit=commit)
            except IngestError as exc:
                rejected.append(exc)
                print(f"REJECTED {exc}", file=sys.stderr)
            else:
                print(f"ingested {path} -> run {run_id} (commit {commit})")
    finally:
        store.close()
    if rejected:
        print(f"{len(rejected)} artifact(s) rejected", file=sys.stderr)
        return 1
    return 0


def _query_main(args: argparse.Namespace) -> int:
    store = ResultsStore(args.db)
    try:
        rows = store.runs(kind=args.kind, commit=args.commit, limit=args.limit)
    finally:
        store.close()
    if args.strip_wall:
        for row in rows:
            del row["commit"], row["ingested_at"]
    if args.json:
        print(json.dumps(rows, sort_keys=True, indent=2))
    else:
        print(render_runs(rows, strip_wall=args.strip_wall))
    return 0


def _trend_main(args: argparse.Namespace) -> int:
    store = ResultsStore(args.db)
    try:
        if args.metric is None:
            print("metrics in store:")
            for name, count in store.metric_names():
                print(f"  {name}  ({count} rows)")
            return 0
        trend = store.trend(args.metric, label=args.label)
    finally:
        store.close()
    if not trend["series"]:
        suffix = f" with label ~{args.label!r}" if args.label else ""
        print(f"no data for metric {args.metric!r}{suffix}; "
              "`trend` with no --metric lists what the store has",
              file=sys.stderr)
        return 2
    rendered, regressions = trend_table(
        trend,
        wall_threshold=args.wall_threshold,
        min_wall_seconds=args.min_wall_seconds,
    )
    if args.json:
        trend["regressions"] = regressions
        print(json.dumps(trend, sort_keys=True, indent=2))
    else:
        print(rendered)
        for regression in regressions:
            print(f"REGRESSION: {regression}")
    return 1 if regressions else 0


def _diff_main(args: argparse.Namespace) -> int:
    store = ResultsStore(args.db)
    try:
        diff = diff_commits(
            store,
            args.commit_a,
            args.commit_b,
            wall_threshold=args.wall_threshold,
            min_wall_seconds=args.min_wall_seconds,
        )
    except LookupError as exc:
        print(f"MISSING COMMIT: {exc}", file=sys.stderr)
        return 2
    finally:
        store.close()
    if args.json:
        print(json.dumps(diff, sort_keys=True, indent=2))
    else:
        print(render_diff(diff))
    return 1 if diff["problems"] else 0


def _gc_main(args: argparse.Namespace) -> int:
    store = ResultsStore(args.db)
    try:
        result = store.gc(keep=args.keep, dry_run=args.dry_run)
    finally:
        store.close()
    verb = "would delete" if args.dry_run else "deleted"
    print(f"gc: {verb} {len(result['deleted'])} run(s), kept {result['kept']} "
          f"(newest {args.keep} per kind+config)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.store",
        description="Longitudinal results store over every repro artifact schema.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser("ingest", help="ingest artifact files")
    ingest.add_argument("artifacts", nargs="+", metavar="FILE",
                        help="BENCH/campaign/fuzz/harness JSON, trace JSONL, "
                             "metrics or profile exports")
    ingest.add_argument("--commit", default=None, metavar="SHA",
                        help="commit to record (default: git rev-parse, else 'unknown')")
    _add_db(ingest)

    query = commands.add_parser("query", help="list stored runs")
    query.add_argument("--kind", default=None,
                       choices=("bench", "campaign", "fuzz", "harness",
                                "trace", "metrics", "profile"))
    query.add_argument("--commit", default=None, metavar="SHA")
    query.add_argument("--limit", type=int, default=None, metavar="N",
                       help="show only the newest N runs")
    query.add_argument("--strip-wall", action="store_true",
                       help="drop wall-side columns (commit, ingested-at); "
                            "output is then byte-identical across hosts")
    query.add_argument("--json", action="store_true")
    _add_db(query)

    trend = commands.add_parser(
        "trend", help="per-commit trajectory of one metric"
    )
    trend.add_argument("--metric", default=None, metavar="NAME",
                       help="metric name (omit to list available metrics)")
    trend.add_argument("--label", default=None, metavar="SUBSTR",
                       help="restrict to labels containing SUBSTR")
    trend.add_argument("--json", action="store_true")
    _add_thresholds(trend)
    _add_db(trend)

    diff = commands.add_parser("diff", help="compare two commits")
    diff.add_argument("commit_a")
    diff.add_argument("commit_b")
    diff.add_argument("--json", action="store_true")
    _add_thresholds(diff)
    _add_db(diff)

    gc = commands.add_parser("gc", help="drop old runs per kind+config")
    gc.add_argument("--keep", type=int, default=5, metavar="N",
                    help="runs to keep per (kind, config hash) (default 5)")
    gc.add_argument("--dry-run", action="store_true")
    _add_db(gc)

    args = parser.parse_args(argv)
    if args.command == "gc" and args.keep < 1:
        gc.error(f"--keep must be >= 1, got {args.keep}")
    return {
        "ingest": _ingest_main,
        "query": _query_main,
        "trend": _trend_main,
        "diff": _diff_main,
        "gc": _gc_main,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
