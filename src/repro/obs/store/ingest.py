"""Artifact detection and extraction for the longitudinal results store.

Every one-shot artifact the reproduction emits -- ``BENCH_*.json``
(schema ``repro-bench/1``), campaign reports (``repro-campaign/1``),
fuzz reports (``repro-campaign-fuzz/1``), harness ``--json`` payloads,
and the trace / metrics / profile exports -- is recognised here and
reduced to one :class:`Extracted` record: the wall-stripped canonical
payload (the deterministic part, byte-identical across serial and
``--jobs N`` source runs), plus relational projections (scalar metrics,
bench cases, campaign cells, violations, profile sections, error hops
by scope) that the query CLI and the GridConsole web view read without
re-parsing payloads.

Rejection is structured: anything that is not an artifact we know ends
in an :class:`IngestError` carrying a machine-readable ``code``
(``NOT_JSON`` / ``UNRECOGNIZED`` / ``MALFORMED``) and the offending
source name -- never a bare ``KeyError`` from deep inside an extractor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.bench.compare import strip_wall

__all__ = [
    "ARTIFACT_SCHEMAS",
    "Extracted",
    "IngestError",
    "extract",
    "extract_text",
]

#: artifact schema marker -> the store's ``kind`` for it.
ARTIFACT_SCHEMAS = {
    "repro-bench/1": "bench",
    "repro-campaign/1": "campaign",
    "repro-campaign-fuzz/1": "fuzz",
    "repro-harness/1": "harness",
    "repro-trace/1": "trace",
    "repro-metrics/1": "metrics",
    "repro-profile/1": "profile",
}


class IngestError(ValueError):
    """A source that cannot become a results-store row, with a typed code."""

    def __init__(self, code: str, source: str, message: str):
        self.code = code
        self.source = source
        self.message = message
        super().__init__(f"{source}: [{code}] {message}")

    def to_dict(self) -> dict:
        return {"code": self.code, "source": self.source, "message": self.message}


@dataclass
class Extracted:
    """One artifact reduced to store rows; ``payload`` is wall-stripped."""

    kind: str
    artifact_schema: str
    config: dict
    seed: int | None
    payload: Any
    #: (name, label, value, wall?) -- wall rows carry host measurement.
    metrics: list[tuple[str, str, float, bool]] = field(default_factory=list)
    #: (bench, case_id, ok, deterministic, sim_events, sim_time, wall_min)
    bench_cases: list[tuple] = field(default_factory=list)
    #: (cell, order, completed, held, unfinished, violations, makespan, error)
    cells: list[tuple] = field(default_factory=list)
    #: (cell, principle, subject, description)
    violations: list[tuple] = field(default_factory=list)
    #: (daemon, phase, scope, events, sim_time)
    profile_sections: list[tuple] = field(default_factory=list)
    #: (scope, hops)
    error_hops: list[tuple] = field(default_factory=list)


def _require(obj: dict, key: str, types, source: str, where: str) -> Any:
    value = obj.get(key)
    if not isinstance(value, types):
        raise IngestError(
            "MALFORMED",
            source,
            f"{where} is missing {key!r} (or it has the wrong type)",
        )
    return value


# -- per-schema extractors ----------------------------------------------
def _extract_bench(obj: dict, source: str) -> Extracted:
    bench = _require(obj, "bench", str, source, "bench record")
    cases = _require(obj, "cases", dict, source, "bench record")
    out = Extracted(
        kind="bench",
        artifact_schema="repro-bench/1",
        config={"kind": "bench", "bench": bench},
        seed=None,
        payload=strip_wall(obj),
    )
    for case_id, case in sorted(cases.items()):
        if not isinstance(case, dict):
            raise IngestError("MALFORMED", source, f"bench case {case_id!r} is not a record")
        label = f"{bench}:{case_id}"
        wall = case.get("wall_seconds") or {}
        wall_min = wall.get("min")
        if wall_min is not None:
            out.metrics.append(("wall_seconds", label, float(wall_min), True))
        sim = case.get("sim") or {}
        sim_events = sim.get("events")
        sim_time = sim.get("sim_time")
        if sim_time is not None:
            out.metrics.append(("sim_time", label, float(sim_time), False))
        if sim_events is not None:
            out.metrics.append(("sim_events", label, float(sim_events), False))
        out.bench_cases.append((
            bench,
            case_id,
            bool(case.get("ok")),
            bool(case.get("deterministic")),
            sim_events,
            sim_time,
            wall_min,
        ))
        for triple in (sim.get("top") or []):
            out.profile_sections.append((
                triple.get("daemon", "?"),
                triple.get("phase", "?"),
                str(triple.get("scope", "?")),
                int(triple.get("events", 0)),
                float(triple.get("sim_time", 0.0)),
            ))
    return out


def _campaign_common(obj: dict, source: str, out: Extracted) -> None:
    """Cells, violations, and totals shared by campaign and fuzz reports."""
    cells = _require(obj, "cells", list, source, f"{out.kind} report")
    totals = _require(obj, "totals", dict, source, f"{out.kind} report")
    for record in cells:
        if not isinstance(record, dict) or "cell" not in record:
            raise IngestError("MALFORMED", source, f"{out.kind} cell without a 'cell' id")
        jobs = record.get("jobs") or {}
        cell_id = record["cell"]
        out.cells.append((
            cell_id,
            len(record.get("injections") or []),
            int(jobs.get("completed", 0)),
            int(jobs.get("held", 0)),
            int(jobs.get("unfinished", 0)),
            len(record.get("violations") or []),
            record.get("makespan"),
            record.get("error"),
        ))
        for violation in (record.get("violations") or []):
            out.violations.append((
                cell_id,
                int(violation.get("principle", 0)),
                str(violation.get("subject", "?")),
                str(violation.get("description", "?")),
            ))
        profile = record.get("profile")
        for triple in ((profile or {}).get("top") or []):
            out.profile_sections.append((
                triple.get("daemon", "?"),
                triple.get("phase", "?"),
                str(triple.get("scope", "?")),
                int(triple.get("events", 0)),
                float(triple.get("sim_time", 0.0)),
            ))
    for name in ("cells", "cells_with_violations", "violations", "live_mismatches"):
        if name in totals:
            out.metrics.append((name, "total", float(totals[name]), False))
    for principle, count in (totals.get("by_principle") or {}).items():
        out.metrics.append(("violations", str(principle), float(count), False))


def _extract_campaign(obj: dict, source: str) -> Extracted:
    campaign = _require(obj, "campaign", dict, source, "campaign report")
    out = Extracted(
        kind="campaign",
        artifact_schema="repro-campaign/1",
        config={"kind": "campaign", "campaign": campaign},
        seed=campaign.get("seed"),
        payload=strip_wall(obj),
    )
    _campaign_common(obj, source, out)
    return out


def _extract_fuzz(obj: dict, source: str) -> Extracted:
    campaign = _require(obj, "campaign", dict, source, "fuzz report")
    fuzz = _require(obj, "fuzz", dict, source, "fuzz report")
    out = Extracted(
        kind="fuzz",
        artifact_schema="repro-campaign-fuzz/1",
        config={"kind": "fuzz", "campaign": campaign, "fuzz": fuzz},
        seed=campaign.get("seed"),
        payload=strip_wall(obj),
    )
    _campaign_common(obj, source, out)
    totals = obj["totals"]
    for name in ("features", "corpus", "distinct_violations", "batches"):
        if name in totals:
            out.metrics.append((name, "total", float(totals[name]), False))
    marks = obj.get("violations") or {}
    for name in ("first_violation_at", "all_principles_at"):
        if marks.get(name) is not None:
            out.metrics.append((name, "total", float(marks[name]), False))
    return out


def _extract_harness(obj: dict, source: str) -> Extracted:
    experiments = _require(obj, "experiments", dict, source, "harness payload")
    out = Extracted(
        kind="harness",
        artifact_schema="repro-harness/1",
        config={"kind": "harness", "experiments": sorted(experiments)},
        seed=obj.get("seed"),
        payload=strip_wall(obj),
    )
    for name, data in sorted(experiments.items()):
        if not isinstance(data, dict):
            continue
        for attr, value in sorted(data.items()):
            # scalar numeric result fields become trendable metrics
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.metrics.append((attr, name, float(value), False))
    return out


def _extract_metrics(obj: dict, source: str) -> Extracted:
    counters = _require(obj, "counters", dict, source, "metrics snapshot")
    histograms = _require(obj, "histograms", dict, source, "metrics snapshot")
    out = Extracted(
        kind="metrics",
        artifact_schema="repro-metrics/1",
        config={"kind": "metrics", "series": sorted(counters) + sorted(histograms)},
        seed=None,
        payload=strip_wall(obj),
    )
    hops: dict[str, float] = {}
    for key, value in sorted(counters.items()):
        name, label = _split_series_key(key)
        out.metrics.append((name, label, float(value), False))
        if name == "error_hops_total":
            scope = dict(
                part.split("=", 1) for part in label.split(",") if "=" in part
            ).get("scope", "?")
            hops[scope] = hops.get(scope, 0.0) + float(value)
    for key, value in sorted((obj.get("gauges") or {}).items()):
        name, label = _split_series_key(key)
        out.metrics.append((name, label, float(value), False))
    for key, hist in sorted(histograms.items()):
        name, label = _split_series_key(key)
        for q in ("p50", "p95", "p99"):
            if isinstance(hist, dict) and hist.get(q) is not None:
                out.metrics.append((f"{name}:{q}", label, float(hist[q]), False))
    out.error_hops = [(scope, int(n)) for scope, n in sorted(hops.items())]
    return out


def _split_series_key(key: str) -> tuple[str, str]:
    """``error_hops_total{hop=X,scope=Y}`` -> (name, ``hop=X,scope=Y``)."""
    name, brace, labels = key.partition("{")
    return (name, labels.rstrip("}")) if brace else (name, "")


def _extract_profile(obj: dict, source: str) -> Extracted:
    sim = _require(obj, "sim", dict, source, "profile report")
    out = Extracted(
        kind="profile",
        artifact_schema="repro-profile/1",
        config={"kind": "profile"},
        seed=None,
        payload=strip_wall(obj),
    )
    out.metrics.append(("sim_time", "total", float(sim.get("sim_time") or 0.0), False))
    out.metrics.append(("sim_events", "total", float(sim.get("events") or 0), False))
    for triple in (sim.get("triples") or []):
        out.profile_sections.append((
            triple.get("daemon", "?"),
            triple.get("phase", "?"),
            str(triple.get("scope", "?")),
            int(triple.get("events", 0)),
            float(triple.get("sim_time", 0.0)),
        ))
    critical = obj.get("critical_path") or {}
    if critical.get("makespan") is not None:
        out.metrics.append(("makespan", "total", float(critical["makespan"]), False))
    return out


def _extract_trace(lines: list[dict], source: str) -> Extracted:
    """A JSONL trace reduces to a deterministic summary payload.

    Full traces are megabytes of already-on-disk evidence; the store
    keeps their *shape* -- event counts by topic and name, span counts,
    and the error hops by scope the console's JOB->...->GRID panel
    plots.
    """
    by_topic: dict[str, int] = {}
    by_event: dict[str, int] = {}
    hops: dict[str, int] = {}
    spans = 0
    last_time = 0.0
    for record in lines:
        kind = record.get("kind")
        if kind == "span":
            spans += 1
            continue
        if kind != "event":
            raise IngestError(
                "MALFORMED", source, f"trace line is neither event nor span: {record!r}"
            )
        topic = str(record.get("topic", "?"))
        by_topic[topic] = by_topic.get(topic, 0) + 1
        name = f"{topic}:{record.get('name', '?')}"
        by_event[name] = by_event.get(name, 0) + 1
        last_time = max(last_time, float(record.get("t") or 0.0))
        if topic == "error":
            scope = str((record.get("attrs") or {}).get("scope", "?"))
            hops[scope] = hops.get(scope, 0) + 1
    payload = {
        "schema": "repro-trace/1",
        "events": sum(by_topic.values()),
        "spans": spans,
        "last_time": last_time,
        "by_topic": dict(sorted(by_topic.items())),
        "by_event": dict(sorted(by_event.items())),
        "error_hops": dict(sorted(hops.items())),
    }
    out = Extracted(
        kind="trace",
        artifact_schema="repro-trace/1",
        config={"kind": "trace"},
        seed=None,
        payload=payload,
    )
    for topic, count in sorted(by_topic.items()):
        out.metrics.append(("events", topic, float(count), False))
    out.metrics.append(("spans", "total", float(spans), False))
    out.error_hops = sorted(hops.items())
    return out


# -- detection ----------------------------------------------------------
def extract(obj: Any, source: str) -> Extracted:
    """Detect and extract one parsed JSON artifact."""
    if not isinstance(obj, dict):
        raise IngestError(
            "UNRECOGNIZED", source, f"top-level JSON is {type(obj).__name__}, not an object"
        )
    if obj.get("schema") == "repro-bench/1":
        return _extract_bench(obj, source)
    if obj.get("format") == "repro-campaign-fuzz/1":
        return _extract_fuzz(obj, source)
    if obj.get("schema") == "repro-profile/1":
        return _extract_profile(obj, source)
    if {"campaign", "cells", "totals"} <= obj.keys():
        return _extract_campaign(obj, source)
    if {"counters", "gauges", "histograms"} <= obj.keys():
        return _extract_metrics(obj, source)
    if {"seed", "experiments"} <= obj.keys():
        return _extract_harness(obj, source)
    known = ", ".join(sorted(ARTIFACT_SCHEMAS))
    raise IngestError(
        "UNRECOGNIZED",
        source,
        f"no artifact schema matches keys {sorted(obj)[:6]}; known schemas: {known}",
    )


def extract_text(text: str, source: str) -> Extracted:
    """Detect and extract one artifact from raw file text (JSON or JSONL)."""
    stripped = text.strip()
    if not stripped:
        raise IngestError("NOT_JSON", source, "file is empty")
    try:
        return extract(json.loads(stripped), source)
    except json.JSONDecodeError:
        pass
    # Not one JSON document: try a JSONL trace, line by line.
    lines: list[dict] = []
    for i, line in enumerate(stripped.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise IngestError(
                "NOT_JSON", source, f"line {i} is not valid JSON: {exc}"
            ) from None
        if not isinstance(record, dict):
            raise IngestError("MALFORMED", source, f"trace line {i} is not an object")
        lines.append(record)
    return _extract_trace(lines, source)
