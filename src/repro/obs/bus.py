"""The telemetry bus: typed topics, structured events, zero-cost when idle.

The paper's thesis is that errors must be visible to the right observer
at the right scope; this bus makes the *reproduction itself* observable
the same way.  Every interesting occurrence -- a job lifecycle step, a
daemon protocol exchange, an error hop through the management chain, a
fault arming, an I/O operation -- is published as a
:class:`TelemetryEvent` on a :class:`TelemetryBus` under a typed
:class:`Topic`.

Two properties are load-bearing:

- **Determinism** (DESIGN.md §6): events are stamped with *simulated*
  time and carry only deterministic attributes (names, scopes, counts --
  never wall clock, memory addresses, or host state), so a given seed
  always produces the identical event stream.
- **Zero cost when nobody listens**: emission sites guard with
  ``if bus is not None and bus.active:`` before building any attributes,
  and :meth:`TelemetryBus.emit` itself is a no-op while ``active`` is
  False.  An uninstrumented run and a bus-attached-but-unsubscribed run
  execute the identical simulation (same event count, same results).

The module is deliberately dependency-free (stdlib only) so the lowest
layers -- the simulation kernel duck-types its ``telemetry`` attribute,
``core.propagation`` its ``bus`` -- can feed it without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

__all__ = [
    "TelemetryBus",
    "TelemetryEvent",
    "Topic",
    "ambient_bus",
    "clear_ambient",
    "install_ambient",
]


class Topic(str, enum.Enum):
    """The typed event streams the reproduction publishes."""

    #: job lifecycle: submit -> match -> claim -> execute -> result/hold
    JOB = "job"
    #: daemon protocol steps: ads, negotiation cycles, claims, shadows
    DAEMON = "daemon"
    #: error hops through the management chain (one event per hop)
    ERROR = "error"
    #: one event per error presented at an ErrorInterface (vet crossing)
    INTERFACE = "interface"
    #: fault injector arm / disarm
    FAULT = "fault"
    #: per-operation remote I/O (chirp proxy ops, shadow RPC ops)
    IO = "io"
    #: simulation-kernel process start / end
    PROCESS = "process"


@dataclass(frozen=True)
class TelemetryEvent:
    """One occurrence: sim-time stamp, topic, name, sorted attributes.

    Attributes are stored as a sorted tuple of ``(key, value)`` pairs so
    events are hashable and their serialisation order never depends on
    call-site kwarg order.
    """

    time: float
    topic: Topic
    name: str
    attrs: tuple[tuple[str, Any], ...] = ()

    def attr(self, key: str, default: Any = None) -> Any:
        """Look up one attribute by name."""
        for k, v in self.attrs:
            if k == key:
                return v
        return default

    def __str__(self) -> str:
        attrs = " ".join(f"{k}={v}" for k, v in self.attrs)
        return f"t={self.time:.3f} [{self.topic.value}] {self.name}" + (
            f" {attrs}" if attrs else ""
        )


class TelemetryBus:
    """Synchronous publish/subscribe hub for :class:`TelemetryEvent`.

    Subscribers are called in subscription order, immediately, on the
    emitting thread (the simulation is single-threaded); a subscriber
    must not mutate simulation state, only observe it.

    ``active`` is a plain attribute maintained by subscribe/unsubscribe
    so hot-path emission sites can guard with one attribute read.
    ``dispatched`` counts events actually delivered -- it stays 0 for a
    run with no subscribers, which the tests use to prove zero cost.
    """

    __slots__ = ("active", "dispatched", "_subs", "_topic_subs")

    def __init__(self) -> None:
        self.active = False
        self.dispatched = 0
        self._subs: list[Any] = []
        self._topic_subs: dict[Topic, list[Any]] = {}

    # -- subscription ---------------------------------------------------
    def subscribe(self, fn, topic: Topic | str | None = None):
        """Register *fn(event)*; returns a zero-argument unsubscriber.

        With *topic* given, *fn* sees only that topic's events.
        """
        if topic is None:
            self._subs.append(fn)

            def unsubscribe() -> None:
                self._subs.remove(fn)
                self._refresh()

        else:
            key = Topic(topic)
            self._topic_subs.setdefault(key, []).append(fn)

            def unsubscribe() -> None:
                self._topic_subs[key].remove(fn)
                self._refresh()

        self.active = True
        return unsubscribe

    def _refresh(self) -> None:
        self.active = bool(self._subs) or any(self._topic_subs.values())

    # -- emission -------------------------------------------------------
    def emit(self, time: float, topic: Topic | str, name: str, **attrs: Any) -> None:
        """Publish one event.  No-op (and allocation-free) while inactive."""
        if not self.active:
            return
        event = TelemetryEvent(
            time=time,
            topic=Topic(topic),
            name=name,
            attrs=tuple(sorted(attrs.items())),
        )
        self.dispatched += 1
        for fn in self._subs:
            fn(event)
        for fn in self._topic_subs.get(event.topic, ()):
            fn(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        n = len(self._subs) + sum(len(v) for v in self._topic_subs.values())
        return f"<TelemetryBus active={self.active} subscribers={n}>"


# -- the ambient bus ----------------------------------------------------
#
# CLI flags like ``--trace`` must reach pools constructed deep inside
# experiment functions without threading a parameter through every
# signature.  An *ambient* bus, installed for the duration of an
# observation session, is picked up by every Pool built while it is
# installed.  With nothing installed, each Pool gets its own inert bus.

_ambient: TelemetryBus | None = None


def install_ambient(bus: TelemetryBus) -> None:
    """Make *bus* the ambient bus new pools attach to."""
    global _ambient
    _ambient = bus


def clear_ambient() -> None:
    """Remove the ambient bus (new pools get fresh inert buses again)."""
    global _ambient
    _ambient = None


def ambient_bus() -> TelemetryBus:
    """The installed ambient bus, or a fresh inert one."""
    return _ambient if _ambient is not None else TelemetryBus()
