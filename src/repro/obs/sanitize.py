"""The live principle sanitizer: P1-P4 asserted on the event stream.

The :class:`~repro.core.principles.PrincipleAuditor` judges a run from
its artifacts *after* it ends.  The sanitizer reaches the same verdicts
*while the run executes*, as a plain telemetry-bus subscriber:

- **P3** from ERROR-topic ``mishandled`` / ``unmanaged`` hops, the
  instant a manager swallows an error outside its scope;
- **P2/P4** from INTERFACE-topic ``crossing`` events, the instant an
  undocumented error slips through a generic operation;
- **P1** from JOB-topic terminal events (``result`` / ``hold``), by
  asking the fault injector for the job's ground truth at the moment the
  outcome is presented to the user.

Verdict texts are built from the same check functions and the same
error formatting the post-hoc auditor uses
(:func:`repro.core.principles.check_outcome` /
:func:`~repro.core.principles.check_crossing` /
:func:`~repro.core.principles.check_hop`,
:func:`repro.core.errors.format_error`), so for a given run the live
violation set equals the post-hoc one *event for event* -- the property
the campaign engine cross-checks on every cell.

With ``fail_fast=True`` the first violation raises
:class:`PrincipleViolationError` at the guilty instant -- the debugging
mode.  Emission sites inside simulated daemon *processes* absorb an
escaping exception as that process's failure (the kernel's contract), so
the sanitizer also keeps the exception in :attr:`PrincipleSanitizer.failure`
for the driver to re-raise once the run stops; the campaign engine does
exactly that.
"""

from __future__ import annotations

from repro.core.errors import format_error
from repro.core.principles import Violation, check_crossing, check_hop, check_outcome
from repro.core.scope import ErrorScope
from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic

__all__ = ["PrincipleSanitizer", "PrincipleViolationError"]

#: JOB-topic events after which a job's outcome is fixed and auditable.
_TERMINAL_JOB_EVENTS = frozenset({"result", "hold"})


class PrincipleViolationError(AssertionError):
    """Raised by a fail-fast sanitizer at the instant of first violation."""

    def __init__(self, violation: Violation, time: float):
        super().__init__(f"t={time:.3f} {violation}")
        self.violation = violation
        self.time = time


class PrincipleSanitizer:
    """Bus subscriber asserting Principles 1-4 on every relevant event.

    *injector* and *jobs* enable the P1 check (without them the
    sanitizer still audits P2-P4 live).  Register the workload with
    :meth:`watch` once the jobs exist -- they are usually created after
    the pool, hence after the sanitizer attaches.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        injector=None,
        jobs=None,
        fail_fast: bool = False,
    ):
        self.injector = injector
        self.fail_fast = fail_fast
        #: The fail-fast exception, kept for drivers to re-raise in case
        #: the raise itself was absorbed by a dying simulated process.
        self.failure: PrincipleViolationError | None = None
        self.violations: list[Violation] = []
        #: (sim time, violation) in detection order, for reports.
        self.timeline: list[tuple[float, Violation]] = []
        self._jobs: dict[str, object] = {}
        if jobs is not None:
            self.watch(jobs)
        self._unsubscribe = bus.subscribe(self.on_event)

    def watch(self, jobs) -> None:
        """Register *jobs* (iterable of Job) for the P1 outcome check."""
        for job in jobs:
            self._jobs[job.job_id] = job

    def detach(self) -> None:
        """Stop listening; accumulated verdicts remain readable."""
        self._unsubscribe()

    # -- reporting -------------------------------------------------------
    def summary(self) -> dict[int, int]:
        """Violation counts keyed by principle number (1-4, always present)."""
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for violation in self.violations:
            counts[violation.principle] += 1
        return counts

    # -- the subscriber --------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        """Judge one telemetry event; record (and maybe raise) violations."""
        if event.topic is Topic.ERROR:
            self._on_error_hop(event)
        elif event.topic is Topic.INTERFACE:
            self._on_crossing(event)
        elif event.topic is Topic.JOB and event.name in _TERMINAL_JOB_EVENTS:
            self._on_terminal_job(event)

    def _record(self, time: float, violation: Violation) -> None:
        self.violations.append(violation)
        self.timeline.append((time, violation))
        if self.fail_fast and self.failure is None:
            self.failure = PrincipleViolationError(violation, time)
            raise self.failure

    def _on_error_hop(self, event: TelemetryEvent) -> None:
        scope_name = event.attr("scope")
        if scope_name is None:
            return
        error_text = format_error(
            event.attr("error", "?"),
            str(ErrorScope[scope_name]),
            event.attr("kind", "?"),
            event.attr("detail", ""),
        )
        violation = check_hop(
            event.name, event.attr("manager", "?"), error_text, str(ErrorScope[scope_name])
        )
        if violation is not None:
            self._record(event.time, violation)

    def _on_crossing(self, event: TelemetryEvent) -> None:
        scope_name = event.attr("scope")
        if scope_name is None:
            return
        for violation in check_crossing(
            event.attr("op", "?"),
            event.attr("error", "?"),
            ErrorScope[scope_name],
            bool(event.attr("generic", False)),
            bool(event.attr("declared", False)),
            bool(event.attr("documented", False)),
        ):
            self._record(event.time, violation)

    def _on_terminal_job(self, event: TelemetryEvent) -> None:
        if self.injector is None:
            return
        job = self._jobs.get(event.attr("job"))
        if job is None:
            return
        violation = check_outcome(self.injector.truth_for_job(job))
        if violation is not None:
            self._record(event.time, violation)
