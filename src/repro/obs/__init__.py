"""``repro.obs``: the deterministic observability subsystem.

    "An error is a piece of information indicating that some component
    has failed" -- and so is every event this package publishes about
    the reproduction itself.

The subsystem has four layers, each usable alone:

- :mod:`repro.obs.bus` -- the typed-topic event bus (stdlib-only; the
  simulation kernel and the management chain feed it by duck typing, so
  instrumentation is zero-cost when nobody subscribes);
- :mod:`repro.obs.span` -- nested spans assembled live from the stream:
  one per job journey (submit -> match -> claim -> execute -> result)
  and one per error's propagation path, with a span per hop;
- :mod:`repro.obs.metrics` -- labeled counter/gauge/histogram series;
- :mod:`repro.obs.export` -- byte-reproducible JSONL traces and JSON
  snapshots, plus the :class:`~repro.obs.export.ObservationSession`
  behind the CLI's ``--trace`` / ``--metrics`` flags;
- :mod:`repro.obs.sanitize` -- the live principle sanitizer, asserting
  P1-P4 on the stream as the run executes (the campaign engine's
  in-flight counterpart to the post-hoc auditor);
- :mod:`repro.obs.profile` -- the deterministic grid profiler:
  sim-time attribution to (daemon, phase, scope) triples, critical-path
  extraction over job spans, folded-stack flamegraph export, and
  wall-time counters for the hot paths (strippable, never part of the
  determinism contract);
- :mod:`repro.obs.console` -- the operator dashboard.

Everything is stamped with *simulated* time and excludes wall clock
from exports, per the DESIGN.md §6 determinism contract.
"""

from repro.obs.bus import (
    TelemetryBus,
    TelemetryEvent,
    Topic,
    ambient_bus,
    clear_ambient,
    install_ambient,
)
from repro.obs.console import GridConsole
from repro.obs.export import ObservationSession, dump_json, to_jsonable
from repro.obs.metrics import BusMetricsRecorder, MetricsRegistry
from repro.obs.profile import (
    SimTimeProfiler,
    WallCounters,
    clear_wall,
    critical_path,
    folded_stacks,
    install_wall,
    profile_report,
    render_profile,
)
from repro.obs.sanitize import PrincipleSanitizer, PrincipleViolationError
from repro.obs.signature import normalize_violation, signature, violation_features
from repro.obs.span import Span, SpanBuilder

__all__ = [
    "BusMetricsRecorder",
    "GridConsole",
    "MetricsRegistry",
    "ObservationSession",
    "PrincipleSanitizer",
    "PrincipleViolationError",
    "SimTimeProfiler",
    "Span",
    "SpanBuilder",
    "TelemetryBus",
    "TelemetryEvent",
    "Topic",
    "WallCounters",
    "ambient_bus",
    "clear_ambient",
    "clear_wall",
    "critical_path",
    "dump_json",
    "folded_stacks",
    "install_ambient",
    "install_wall",
    "normalize_violation",
    "profile_report",
    "render_profile",
    "signature",
    "to_jsonable",
    "violation_features",
]
