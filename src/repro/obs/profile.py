"""The deterministic grid profiler: where does the time go?

Three views, all layered on the existing telemetry bus and span stream:

- :class:`SimTimeProfiler` -- a plain bus subscriber that attributes
  *simulated* time and event counts to ``(daemon, phase, scope)``
  triples.  Like every exporter it sees only deterministic attributes,
  so its snapshot is byte-identical across same-seed runs (DESIGN.md
  §6).
- :func:`critical_path` / :func:`folded_stacks` -- post-run analysis
  over the :class:`~repro.obs.span.SpanBuilder` span set: which phase
  dominates each job's makespan, which job carries the whole run's
  span, and a folded-stack text export consumable by standard
  flamegraph tooling (``frame;frame weight`` lines, weights in
  microseconds of simulated time).
- :class:`WallCounters` -- lightweight perf counters for the real hot
  paths (the sim engine's process step, ClassAd parsing/matching, the
  chirp and remote-I/O channels).  Instrumented modules hold a
  module-global ``WALL_PROFILE`` that defaults to ``None``; emission
  sites guard with one global read, mirroring the bus's
  inactive-emit contract, so an uninstrumented run pays nothing.
  Wall numbers are *never* part of the determinism contract: every
  export places them under a ``wall`` key that comparisons strip.

**Sim-time attribution model.**  Each event resolves to one triple:
the *daemon* dimension from the event's topic and name (DAEMON events
map by name, PROCESS events by their process-name prefix, IO events by
channel, ERROR events by the hop's manager); the *phase* dimension from
the job lifecycle phase the event's job is in (``queued`` / ``claim`` /
``attempt``; ``-`` for events not tied to a job); the *scope* dimension
from the event's ``scope`` attribute (``-`` when absent).  The interval
between two consecutive events is charged to the triple of the
*earlier* event -- simulated time "belongs" to whatever the grid was
last observed doing.  Transition events are attributed to the phase
they begin, except terminal ``result`` / ``hold`` events, which close
out the attempt that produced them.
"""

from __future__ import annotations

import importlib
import sys
from typing import Any

from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic
from repro.obs.span import Span

__all__ = [
    "PROFILE_SCHEMA",
    "SimTimeProfiler",
    "WallCounters",
    "clear_wall",
    "critical_path",
    "folded_stacks",
    "install_wall",
    "installed_wall",
    "profile_report",
    "render_profile",
]

PROFILE_SCHEMA = "repro-profile/1"

#: DAEMON-topic event name -> the daemon that published it.
_DAEMON_OF_EVENT = {
    "negotiation_cycle": "matchmaker",
    "match_made": "matchmaker",
    "shadow_spawn": "schedd",
    "shadow_exit": "shadow",
    "claim_rejected": "startd",
    "claim_granted": "startd",
    "evict": "startd",
    "starter_exec": "starter",
    "starter_error": "starter",
    "pool_created": "pool",
}

#: PROCESS-name prefix -> canonical daemon name.
_DAEMON_OF_PROCESS = {
    "chirp": "chirp",
    "ioserver": "remoteio",
    "ioserve": "remoteio",
}

_TRIPLE_NONE = ("-", "-", "-")


def _process_daemon(process_name: str) -> str:
    prefix = process_name.split(":", 1)[0].split("-", 1)[0]
    return _DAEMON_OF_PROCESS.get(prefix, prefix or "-")


class SimTimeProfiler:
    """Attributes simulated time and event counts to (daemon, phase, scope).

    An ordinary bus subscriber; attach before the run, read
    :meth:`snapshot` after.  Determinism: both maps iterate in sorted
    key order at snapshot time, and the running state (current phase
    per job, last-event triple) depends only on the event stream.
    """

    def __init__(self, bus: TelemetryBus):
        #: (daemon, phase, scope) -> event count
        self.counts: dict[tuple[str, str, str], int] = {}
        #: (daemon, phase, scope) -> attributed simulated seconds
        self.sim_time: dict[tuple[str, str, str], float] = {}
        self.total_events = 0
        self.last_time = 0.0
        self._last_triple = _TRIPLE_NONE
        #: job_id -> current lifecycle phase name
        self._job_phase: dict[Any, str] = {}
        self._unsubscribe = bus.subscribe(self.on_event)

    def detach(self) -> None:
        """Stop listening; accumulated attribution remains readable."""
        self._unsubscribe()

    # -- the subscriber -------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        """Charge one event (and the interval before it) to its triple."""
        triple = self._attribute(event)
        self.counts[triple] = self.counts.get(triple, 0) + 1
        self.total_events += 1
        dt = event.time - self.last_time
        if dt > 0:
            last = self._last_triple
            self.sim_time[last] = self.sim_time.get(last, 0.0) + dt
            self.last_time = event.time
        self._last_triple = triple

    def _attribute(self, event: TelemetryEvent) -> tuple[str, str, str]:
        topic, name = event.topic, event.name
        # Phase: follow the job lifecycle; terminal events close out the
        # phase that produced them, every other transition opens one.
        phase = "-"
        job = event.attr("job")
        if job is not None:
            if topic is Topic.JOB:
                if name == "submit":
                    self._job_phase[job] = "queued"
                elif name == "match":
                    self._job_phase[job] = "claim"
                elif name in ("claim_failed", "site_failed"):
                    self._job_phase[job] = "queued"
                elif name == "execute":
                    self._job_phase[job] = "attempt"
                phase = self._job_phase.get(job, "-")
                if name in ("result", "hold"):
                    phase = self._job_phase.pop(job, phase)
            else:
                phase = self._job_phase.get(job, "-")
        # Daemon: by topic.
        if topic is Topic.DAEMON:
            daemon = _DAEMON_OF_EVENT.get(name, "daemon")
        elif topic is Topic.JOB:
            daemon = "schedd"  # the lifecycle is the schedd's view
        elif topic is Topic.PROCESS:
            daemon = _process_daemon(str(event.attr("process", "-")))
        elif topic in (Topic.ERROR, Topic.INTERFACE):
            daemon = str(event.attr("manager") or event.attr("interface") or "-")
        elif topic is Topic.IO:
            daemon = str(event.attr("channel", "-"))
        elif topic is Topic.FAULT:
            daemon = "injector"
        else:  # pragma: no cover - new topics default to unattributed
            daemon = "-"
        scope = str(event.attr("scope", "-"))
        return (daemon, phase, scope)

    # -- reads ----------------------------------------------------------
    def snapshot(self) -> dict:
        """All triples, heaviest simulated time first (ties by key)."""
        keys = set(self.counts) | set(self.sim_time)
        triples = [
            {
                "daemon": d,
                "phase": p,
                "scope": s,
                "events": self.counts.get((d, p, s), 0),
                "sim_time": self.sim_time.get((d, p, s), 0.0),
            }
            for (d, p, s) in sorted(keys)
        ]
        triples.sort(key=lambda r: (-r["sim_time"], r["daemon"], r["phase"], r["scope"]))
        return {
            "events": self.total_events,
            "sim_time": self.last_time,
            "triples": triples,
        }

    def top(self, n: int = 8) -> list[dict]:
        """The *n* heaviest triples by attributed simulated time."""
        return self.snapshot()["triples"][:n]


# -- critical-path analysis over the span set ---------------------------
def _children_by_parent(spans: list[Span]) -> dict[int, list[Span]]:
    children: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


def critical_path(spans: list[Span]) -> dict:
    """Which phase dominates each job, and which job carries the run.

    Returns a dict with the run ``makespan`` (latest job-span end), the
    ``critical_job`` (the job whose journey ends last; ties break to the
    earliest span id, i.e. submission order), its phase-by-phase
    ``path``, the ``slowest_error_journey``, and a per-job table of
    dominant phases.  Open (never-closed) spans are excluded; all
    quantities are simulated seconds, so the result is deterministic.
    """
    children = _children_by_parent(spans)
    jobs = [s for s in spans if s.kind == "job" and s.end is not None]
    per_job = []
    for root in jobs:
        phases = [
            c for c in children.get(root.span_id, []) if c.kind == "phase" and c.end is not None
        ]
        dominant = None
        for phase in phases:
            if dominant is None or (phase.duration or 0.0) > (dominant.duration or 0.0):
                dominant = phase
        makespan = root.duration or 0.0
        per_job.append(
            {
                "job": root.name,
                "start": root.start,
                "end": root.end,
                "makespan": makespan,
                "status": root.status,
                "dominant_phase": None if dominant is None else dominant.name,
                "dominant_time": 0.0 if dominant is None else (dominant.duration or 0.0),
                "dominant_share": (
                    0.0
                    if dominant is None or makespan <= 0
                    else (dominant.duration or 0.0) / makespan
                ),
            }
        )
    critical = None
    for root in jobs:  # ties: spans list is in creation (span-id) order
        if critical is None or root.end > critical.end:
            critical = root
    path = []
    if critical is not None:
        for phase in children.get(critical.span_id, []):
            if phase.kind != "phase" or phase.end is None:
                continue
            path.append(
                {
                    "phase": phase.name,
                    "start": phase.start,
                    "end": phase.end,
                    "duration": phase.duration,
                    "site": phase.attrs.get("site"),
                    "status": phase.status,
                }
            )
    journeys = [s for s in spans if s.kind == "error" and s.end is not None]
    slowest = None
    for journey in journeys:
        if slowest is None or (journey.duration or 0.0) > (slowest.duration or 0.0):
            slowest = journey
    return {
        "makespan": 0.0 if critical is None else critical.end,
        "critical_job": None if critical is None else critical.name,
        "path": path,
        "jobs": per_job,
        "error_journeys": len(journeys),
        "slowest_error_journey": (
            None
            if slowest is None
            else {
                "error": slowest.name,
                "status": slowest.status,
                "duration": slowest.duration,
                "scope": slowest.attrs.get("scope"),
            }
        ),
    }


def folded_stacks(spans: list[Span]) -> list[str]:
    """Folded-stack lines (``job:N;phase weight``) for flamegraph tools.

    Weights are *simulated* microseconds (integers -- what ``flamegraph.pl``
    and speedscope expect).  Each closed job phase contributes one frame
    under its job root; residual root time (makespan not covered by any
    phase) stays on the root frame.  Lines are sorted, so the export is
    canonical for a given span set.
    """
    children = _children_by_parent(spans)
    weights: dict[str, float] = {}
    for root in spans:
        if root.kind != "job" or root.end is None:
            continue
        covered = 0.0
        for phase in children.get(root.span_id, []):
            if phase.kind != "phase" or phase.end is None:
                continue
            duration = phase.duration or 0.0
            key = f"{root.name};{phase.name}"
            weights[key] = weights.get(key, 0.0) + duration
            covered += duration
        residual = (root.duration or 0.0) - covered
        if residual > 1e-12:
            weights[root.name] = weights.get(root.name, 0.0) + residual
    return [
        f"{frame} {int(round(seconds * 1_000_000))}" for frame, seconds in sorted(weights.items())
    ]


# -- wall-time perf counters --------------------------------------------
class WallCounters:
    """Named wall-clock counters: calls, total, min, max (nanoseconds).

    Hot sites call :meth:`add` with a ``perf_counter_ns`` delta.  The
    snapshot converts to seconds.  Wall numbers are measurement, not
    contract: exports put them under a ``wall`` key which
    ``repro.bench.compare`` strips before byte-identity checks.
    """

    __slots__ = ("counters",)

    def __init__(self) -> None:
        #: name -> [calls, total_ns, min_ns, max_ns]
        self.counters: dict[str, list] = {}

    def add(self, name: str, ns: int) -> None:
        """Record one timed call of *ns* nanoseconds under *name*."""
        entry = self.counters.get(name)
        if entry is None:
            self.counters[name] = [1, ns, ns, ns]
            return
        entry[0] += 1
        entry[1] += ns
        if ns < entry[2]:
            entry[2] = ns
        if ns > entry[3]:
            entry[3] = ns

    def snapshot(self) -> dict:
        """name -> {calls, total/mean/min/max seconds}, sorted by name."""
        return {
            name: {
                "calls": calls,
                "total_seconds": total / 1e9,
                "mean_seconds": total / calls / 1e9,
                "min_seconds": lo / 1e9,
                "max_seconds": hi / 1e9,
            }
            for name, (calls, total, lo, hi) in sorted(self.counters.items())
        }

    def __len__(self) -> int:
        return len(self.counters)


#: Modules carrying a ``WALL_PROFILE`` hook (imported lazily on install
#: so this module never drags the whole stack in at import time).
_WALL_SITES = (
    "repro.sim.engine",
    "repro.condor.classads.ad",
    "repro.condor.classads.parser",
    "repro.chirp.proxy",
    "repro.remoteio.server",
    "repro.service.server",
)

_installed_wall: WallCounters | None = None


def install_wall(counters: WallCounters) -> None:
    """Point every instrumented module's ``WALL_PROFILE`` at *counters*."""
    global _installed_wall
    _installed_wall = counters
    for modname in _WALL_SITES:
        importlib.import_module(modname).WALL_PROFILE = counters


def clear_wall() -> None:
    """Reset every instrumented module's hook to ``None`` (zero cost)."""
    global _installed_wall
    _installed_wall = None
    for modname in _WALL_SITES:
        mod = sys.modules.get(modname)
        if mod is not None:
            mod.WALL_PROFILE = None


def installed_wall() -> WallCounters | None:
    """The currently installed wall counters, if any."""
    return _installed_wall


# -- the assembled report -----------------------------------------------
def profile_report(
    profiler: SimTimeProfiler,
    spans: list[Span],
    wall: WallCounters | None = None,
) -> dict:
    """The schema-versioned profile: sim attribution, critical path,
    folded stacks, and (non-deterministic, strippable) wall counters."""
    return {
        "schema": PROFILE_SCHEMA,
        "sim": profiler.snapshot(),
        "critical_path": critical_path(spans),
        "folded": folded_stacks(spans),
        "wall": None if wall is None else wall.snapshot(),
    }


def render_profile(report: dict, top: int = 8) -> str:
    """The operator-facing "where time went" panel for a profile report."""
    from repro.harness.report import Table  # local: report imports numpy

    sim = report["sim"]
    total = sim["sim_time"] or 0.0
    table = Table(
        ["daemon", "phase", "scope", "events", "sim time (s)", "share"],
        title=f"where time went (sim t={total:.1f}, {sim['events']} events)",
    )
    for row in sim["triples"][:top]:
        share = 0.0 if total <= 0 else row["sim_time"] / total
        table.add_row(
            [
                row["daemon"],
                row["phase"],
                row["scope"],
                row["events"],
                round(row["sim_time"], 3),
                f"{share:.0%}",
            ]
        )
    if not sim["triples"]:
        table.add_row(["(no events)", "-", "-", 0, 0.0, "-"])
    sections = [table.render()]

    cp = report["critical_path"]
    if cp["critical_job"] is not None:
        lines = [
            f"critical path: {cp['critical_job']} carries the run "
            f"(makespan {cp['makespan']:.1f}s)"
        ]
        for hop in cp["path"]:
            site = f" @ {hop['site']}" if hop.get("site") else ""
            lines.append(
                f"  {hop['phase']:<12} {hop['start']:>8.1f} -> {hop['end']:>8.1f} "
                f"({hop['duration']:.1f}s){site}"
            )
        slow = cp.get("slowest_error_journey")
        if slow is not None:
            lines.append(
                f"slowest error journey: {slow['error']} [{slow['status']}] "
                f"{slow['duration']:.1f}s in scope {slow['scope']}"
            )
        sections.append("\n".join(lines))

    wall = report.get("wall")
    if wall:
        wtable = Table(
            ["hot path", "calls", "total (s)", "mean (us)"],
            title="wall-time counters (not part of the determinism contract)",
        )
        for name, stats in wall.items():
            wtable.add_row(
                [
                    name,
                    stats["calls"],
                    round(stats["total_seconds"], 4),
                    round(stats["mean_seconds"] * 1e6, 2),
                ]
            )
        sections.append(wtable.render())
    return "\n\n".join(sections)
