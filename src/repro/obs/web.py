"""GridConsole web view: ``/console`` HTML + ``/v1/results/*`` JSON.

Transport-free like :class:`repro.service.api.ServiceApi`: the service
layer calls :meth:`ResultsWeb.handle` with the already-split path and
query string and gets back ``(status, payload, content_type)``.  This
module deliberately does NOT import ``repro.service`` -- the service
mounts us, not the other way round -- so the store/web pair stays
usable from tests and scripts without the asyncio stack.

Every route reads the results store fresh per request (SQLite open is
cheap and the ingest side may be another process), so the console
reflects new ingests without a restart.  A missing store file is a
typed 404 (``NO_RESULTS_DB``) on the data routes; ``/console`` itself
always renders, showing the fetch errors inline instead.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.core.scope import ErrorScope
from repro.obs.store import RESULTS_SCHEMA, ResultsStore

__all__ = ["ResultsWeb", "SCOPE_LADDER"]

#: Containment order, small to large -- the console renders hops in this
#: order so "how far errors travel" reads bottom-up like the paper's ladder.
SCOPE_LADDER = [scope.name for scope in sorted(ErrorScope)]


class ResultsWeb:
    """The ``/v1/results/*`` routes and the ``/console`` page.

    ``service_stats`` is an optional zero-arg callable returning the
    mounting service's live counters (requests by route, queue stats);
    ``None`` means the console runs storeside-only (e.g. under tests).
    """

    def __init__(
        self,
        db_path: str | Path = "repro-results.db",
        service_stats: Callable[[], dict] | None = None,
    ):
        self.db_path = Path(db_path)
        self.service_stats = service_stats

    # -- store access ----------------------------------------------------
    def _open(self) -> ResultsStore:
        if not self.db_path.is_file():
            raise FileNotFoundError(
                f"results store {str(self.db_path)!r} not found; create it with "
                f"`python -m repro.obs.store ingest <artifacts...> --db {self.db_path}`"
            )
        return ResultsStore(self.db_path)

    # -- dispatch --------------------------------------------------------
    def handle(
        self, method: str, parts: list[str], query: dict[str, str]
    ) -> tuple[int, dict | bytes, str]:
        """Dispatch one ``/v1/results/<parts...>`` request.

        Returns the service-layer triple; unknown routes and a missing
        store come back as enveloped 404s rather than exceptions so the
        mounting layer stays a straight pass-through.
        """
        if method != "GET":
            return self._error(405, "METHOD_NOT_ALLOWED",
                               f"results routes are read-only; no {method}")
        routes = {
            ("summary",): self._summary,
            ("runs",): self._runs,
            ("trend",): self._trend,
            ("errors",): self._errors,
            ("flame",): self._flame,
            ("matrix",): self._matrix,
        }
        handler = routes.get(tuple(parts))
        if handler is None:
            return self._error(
                404, "NOT_FOUND",
                f"no results route /v1/results/{'/'.join(parts)}; "
                f"have: {', '.join('/'.join(r) for r in sorted(routes))}",
            )
        try:
            store = self._open()
        except FileNotFoundError as exc:
            return self._error(404, "NO_RESULTS_DB", str(exc))
        try:
            return handler(store, query)
        finally:
            store.close()

    @staticmethod
    def _error(status: int, code: str, message: str) -> tuple[int, dict, str]:
        return status, {"error": {"code": code, "message": message}}, "json"

    # -- routes ----------------------------------------------------------
    def _summary(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        rows = store.runs()
        by_kind: dict[str, int] = {}
        for row in rows:
            by_kind[row["kind"]] = by_kind.get(row["kind"], 0) + 1
        payload = {
            "schema": RESULTS_SCHEMA,
            "db": str(self.db_path),
            "runs": len(rows),
            "by_kind": by_kind,
            "commits": store.commits(),
            "metrics": [name for name, _ in store.metric_names()],
            "violations": store.violation_count(),
            "service": self.service_stats() if self.service_stats else None,
        }
        return 200, payload, "json"

    def _runs(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        limit = _int_param(query, "limit", 50)
        rows = store.runs(
            kind=query.get("kind") or None,
            commit=query.get("commit") or None,
            limit=limit,
        )
        return 200, {"runs": rows}, "json"

    def _trend(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        metric = query.get("metric")
        if not metric:
            return self._error(400, "BAD_REQUEST",
                               "trend needs ?metric=<name>; see /v1/results/summary "
                               "for the metric list")
        trend = store.trend(metric, label=query.get("label") or None)
        return 200, trend, "json"

    def _errors(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        hops = store.error_hops(commit=query.get("commit") or None)
        ladder = [
            {"scope": name, "hops": hops.get(name, 0)}
            for name in SCOPE_LADDER
            if name in hops or query.get("all") == "1"
        ]
        return 200, {"order": SCOPE_LADDER, "ladder": ladder,
                     "total": sum(hops.values())}, "json"

    def _flame(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        stacks, sources = store.folded(commit=query.get("commit") or None)
        merged: dict[str, float] = {}
        for line in stacks:
            stack, _, weight = line.rpartition(" ")
            try:
                merged[stack] = merged.get(stack, 0.0) + float(weight)
            except ValueError:
                continue
        folded = [
            {"stack": stack, "value": value}
            for stack, value in sorted(merged.items(), key=lambda kv: (-kv[1], kv[0]))
        ]
        return 200, {
            "folded": folded,
            "sections": store.sections(commit=query.get("commit") or None),
            "sources": sources,
        }, "json"

    def _matrix(self, store: ResultsStore, query: dict) -> tuple[int, dict, str]:
        matrix = store.matrix(commit=query.get("commit") or None)
        if matrix is None:
            return 200, {"run": None, "cells": []}, "json"
        return 200, matrix, "json"

    # -- console page ----------------------------------------------------
    def console_page(self) -> tuple[int, bytes, str]:
        """The self-contained GridConsole page (no external assets)."""
        return 200, CONSOLE_HTML.encode("utf-8"), "html"


def _int_param(query: dict[str, str], key: str, default: int) -> int:
    try:
        return max(1, int(query.get(key, default)))
    except (TypeError, ValueError):
        return default


# ---------------------------------------------------------------------------
# The console page.  One file, stdlib-served, no external assets: CSS custom
# properties carry the light/dark palette (media query + data-theme override),
# and the charts are plain SVG/flex marks fed by the /v1/results routes.
# Single-series charts carry no legend; values render in text ink, never in
# the series color; violations use the status color WITH a label, never color
# alone.
# ---------------------------------------------------------------------------

CONSOLE_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>GridConsole</title>
<style>
  .viz-root {
    color-scheme: light;
    --page:           #f9f9f7;
    --surface-1:      #fcfcfb;
    --text-primary:   #0b0b0b;
    --text-secondary: #52514e;
    --text-muted:     #898781;
    --grid-hairline:  #e1e0d9;
    --baseline:       #c3c2b7;
    --border:         rgba(11, 11, 11, 0.10);
    --series-1:       #2a78d6;
    --seq-floor:      #86b6ef;
    --status-critical:#d03b3b;
    --status-good:    #006300;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --page:           #0d0d0d;
      --surface-1:      #1a1a19;
      --text-primary:   #ffffff;
      --text-secondary: #c3c2b7;
      --text-muted:     #898781;
      --grid-hairline:  #2c2c2a;
      --baseline:       #383835;
      --border:         rgba(255, 255, 255, 0.10);
      --series-1:       #3987e5;
      --seq-floor:      #184f95;
      --status-critical:#d03b3b;
      --status-good:    #0ca30c;
    }
  }
  :root[data-theme="dark"] .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid-hairline:  #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255, 255, 255, 0.10);
    --series-1:       #3987e5;
    --seq-floor:      #184f95;
    --status-critical:#d03b3b;
    --status-good:    #0ca30c;
  }
  * { box-sizing: border-box; }
  body.viz-root {
    margin: 0;
    background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header {
    display: flex; align-items: baseline; gap: 12px;
    padding: 16px 24px 8px;
  }
  header h1 { font-size: 18px; margin: 0; font-weight: 600; }
  header .sub { color: var(--text-secondary); font-size: 13px; }
  main {
    display: grid; gap: 16px; padding: 8px 24px 32px;
    grid-template-columns: repeat(auto-fit, minmax(340px, 1fr));
  }
  section.card {
    background: var(--surface-1);
    border: 1px solid var(--border);
    border-radius: 8px;
    padding: 14px 16px 16px;
    min-width: 0;
  }
  section.card.wide { grid-column: 1 / -1; }
  h2 { font-size: 13px; font-weight: 600; margin: 0 0 10px;
       color: var(--text-secondary); text-transform: uppercase;
       letter-spacing: 0.04em; }
  .tiles { display: flex; flex-wrap: wrap; gap: 18px 28px; }
  .tile .v { font-size: 26px; font-weight: 600; }
  .tile .k { font-size: 12px; color: var(--text-muted); }
  .note { color: var(--text-muted); font-size: 12px; margin-top: 8px; }
  .err  { color: var(--status-critical); font-size: 12px; }
  .err::before { content: "\\26A0 "; }

  /* horizontal bar rows (error hops, where-time-went) */
  .bars { display: grid; grid-template-columns: max-content 1fr max-content;
          gap: 6px 10px; align-items: center; }
  .bars .lbl { font-size: 12px; color: var(--text-secondary);
               white-space: nowrap; }
  .bars .val { font-size: 12px; color: var(--text-primary);
               font-variant-numeric: tabular-nums; text-align: right; }
  .track { background: transparent; border-left: 1px solid var(--baseline);
           height: 14px; }
  .bar { height: 10px; margin-top: 2px; background: var(--series-1);
         border-radius: 0 4px 4px 0; min-width: 1px; }

  table.matrix { border-collapse: collapse; width: 100%; font-size: 12px; }
  table.matrix th { text-align: left; font-weight: 600;
                    color: var(--text-secondary); padding: 4px 8px;
                    border-bottom: 1px solid var(--grid-hairline); }
  table.matrix td { padding: 4px 8px; font-variant-numeric: tabular-nums;
                    border-bottom: 1px solid var(--grid-hairline); }
  table.matrix td.viol { color: var(--status-critical); font-weight: 600; }
  table.matrix td.ok   { color: var(--text-muted); }

  .sparks { display: flex; flex-wrap: wrap; gap: 14px 22px; }
  .spark { min-width: 150px; }
  .spark .name { font-size: 12px; color: var(--text-secondary); }
  .spark .last { font-size: 15px; font-weight: 600; }
  .spark svg { display: block; margin-top: 2px; }
  .spark polyline { fill: none; stroke: var(--series-1); stroke-width: 2;
                    stroke-linejoin: round; stroke-linecap: round; }
  .spark circle { fill: var(--series-1); }
  footer { padding: 0 24px 24px; color: var(--text-muted); font-size: 12px; }
</style>
</head>
<body class="viz-root">
<header>
  <h1>GridConsole</h1>
  <span class="sub" id="db-sub">results store</span>
</header>
<main>
  <section class="card wide">
    <h2>Store &amp; live traffic</h2>
    <div class="tiles" id="tiles"></div>
    <div class="note" id="summary-note"></div>
  </section>
  <section class="card">
    <h2>Error hops by scope</h2>
    <div class="bars" id="hops"></div>
    <div class="note" id="hops-note"></div>
  </section>
  <section class="card">
    <h2>Where time went</h2>
    <div class="bars" id="flame"></div>
    <div class="note" id="flame-note"></div>
  </section>
  <section class="card wide">
    <h2>Campaign / fuzz coverage</h2>
    <div style="overflow-x:auto"><table class="matrix" id="matrix"></table></div>
    <div class="note" id="matrix-note"></div>
  </section>
  <section class="card wide">
    <h2>Bench wall time by commit</h2>
    <div class="sparks" id="sparks"></div>
    <div class="note" id="sparks-note"></div>
  </section>
</main>
<footer>
  GridConsole &mdash; longitudinal results over the deterministic grid
  reproduction. Data refreshes every 5s from <code>/v1/results/*</code>.
</footer>
<script>
"use strict";
const $ = id => document.getElementById(id);
const esc = s => String(s).replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));

async function getJSON(path) {
  const res = await fetch(path);
  const body = await res.json();
  if (!res.ok) {
    const err = body && body.error ? body.error : {code: res.status};
    throw new Error(err.code + ": " + (err.message || path));
  }
  return body;
}

function tile(value, label) {
  return '<div class="tile"><div class="v">' + esc(value) +
         '</div><div class="k">' + esc(label) + '</div></div>';
}

function barRows(el, rows, fmt) {
  const max = Math.max(1e-12, ...rows.map(r => r.value));
  el.innerHTML = rows.map(r =>
    '<div class="lbl" title="' + esc(r.title || r.label) + '">' + esc(r.label) +
    '</div><div class="track"><div class="bar" style="width:' +
    (100 * r.value / max).toFixed(2) + '%"></div></div>' +
    '<div class="val">' + esc(fmt(r.value)) + '</div>'
  ).join("");
}

async function renderSummary() {
  try {
    const s = await getJSON("/v1/results/summary");
    $("db-sub").textContent = s.db + " \\u2014 " + s.schema;
    let tiles = tile(s.runs, "runs stored") +
                tile(s.commits.length, "commits") +
                tile(s.violations, "violations recorded");
    for (const [kind, n] of Object.entries(s.by_kind).sort()) {
      tiles += tile(n, kind + " runs");
    }
    if (s.service) {
      if (s.service.queue) {
        tiles += tile(s.service.queue.active ?? 0, "active service runs");
      }
      tiles += tile(s.service.requests_total ?? 0, "requests served");
      const routes = Object.entries(s.service.requests_by_route || {});
      routes.sort((a, b) => b[1] - a[1]);
      if (routes.length) {
        $("summary-note").textContent = "busiest routes: " + routes.slice(0, 4)
          .map(([r, n]) => r + " (" + n + ")").join(", ");
      }
    } else {
      $("summary-note").textContent =
        "no live service attached \\u2014 store-only view";
    }
    $("tiles").innerHTML = tiles;
  } catch (e) {
    $("tiles").innerHTML = "";
    $("summary-note").innerHTML = '<span class="err">' + esc(e.message) + "</span>";
  }
}

async function renderHops() {
  try {
    const data = await getJSON("/v1/results/errors");
    if (!data.ladder.length) {
      $("hops").innerHTML = "";
      $("hops-note").textContent = "no error-hop data ingested yet";
      return;
    }
    barRows($("hops"), data.ladder.map(r =>
      ({label: r.scope, value: r.hops})), v => v);
    $("hops-note").textContent = data.total +
      " hop(s) total \\u2014 scopes ordered FILE \\u2192 GRID (containment order)";
  } catch (e) {
    $("hops-note").innerHTML = '<span class="err">' + esc(e.message) + "</span>";
  }
}

async function renderFlame() {
  try {
    const data = await getJSON("/v1/results/flame");
    const rows = data.sections.slice(0, 10).map(s => ({
      label: s.daemon + " " + s.phase,
      title: s.daemon + " / " + s.phase + " @ " + s.scope +
             " (" + s.events + " events)",
      value: s.sim_time,
    }));
    if (!rows.length && data.folded.length) {
      for (const f of data.folded.slice(0, 10)) {
        const frames = f.stack.split(";");
        rows.push({label: frames[frames.length - 1], title: f.stack,
                   value: f.value});
      }
    }
    if (!rows.length) {
      $("flame").innerHTML = "";
      $("flame-note").textContent = "no profile data ingested yet";
      return;
    }
    barRows($("flame"), rows, v => v.toFixed(1) + "s");
    $("flame-note").textContent = "simulated time by section over the latest " +
      "run of each source \\u2014 " + data.folded.length +
      " distinct stack(s) from " + data.sources.length + " run(s)";
  } catch (e) {
    $("flame-note").innerHTML = '<span class="err">' + esc(e.message) + "</span>";
  }
}

async function renderMatrix() {
  try {
    const data = await getJSON("/v1/results/matrix");
    if (!data.run) {
      $("matrix").innerHTML = "";
      $("matrix-note").textContent = "no campaign or fuzz runs ingested yet";
      return;
    }
    const head = "<tr><th>cell</th><th>order</th><th>completed</th>" +
                 "<th>held</th><th>unfinished</th><th>makespan</th>" +
                 "<th>violations</th></tr>";
    const body = data.cells.map(c => {
      const viol = c.error
        ? '<td class="viol">error: ' + esc(c.error) + "</td>"
        : (c.violations
           ? '<td class="viol">' + c.violations + " violation(s)</td>"
           : '<td class="ok">none</td>');
      return "<tr><td>" + esc(c.cell) + "</td><td>" + esc(c.order || "-") +
        "</td><td>" + c.completed + "</td><td>" + c.held + "</td><td>" +
        c.unfinished + "</td><td>" +
        (c.makespan == null ? "-" : c.makespan.toFixed(1) + "s") + "</td>" +
        viol + "</tr>";
    }).join("");
    $("matrix").innerHTML = head + body;
    const bad = data.cells.filter(c => c.violations || c.error).length;
    $("matrix-note").textContent = data.run.kind + " run #" + data.run.run_id +
      " (" + data.run.source + "): " + data.cells.length + " cell(s), " +
      bad + " with violations or errors";
  } catch (e) {
    $("matrix-note").innerHTML = '<span class="err">' + esc(e.message) + "</span>";
  }
}

function sparkline(values) {
  const W = 140, H = 34, PAD = 3;
  const vals = values.filter(v => v != null);
  const lo = Math.min(...vals), hi = Math.max(...vals);
  const span = (hi - lo) || 1;
  const x = i => values.length < 2 ? W / 2 :
    PAD + (W - 2 * PAD) * i / (values.length - 1);
  const y = v => H - PAD - (H - 2 * PAD) * (v - lo) / span;
  const pts = [];
  values.forEach((v, i) => { if (v != null) pts.push(x(i) + "," + y(v)); });
  let last = null, lastIdx = -1;
  values.forEach((v, i) => { if (v != null) { last = v; lastIdx = i; } });
  return '<svg width="' + W + '" height="' + H + '" role="img">' +
    '<line x1="0" y1="' + (H - 1) + '" x2="' + W + '" y2="' + (H - 1) +
    '" stroke="var(--baseline)" stroke-width="1"/>' +
    '<polyline points="' + pts.join(" ") + '"/>' +
    (last == null ? "" :
     '<circle cx="' + x(lastIdx) + '" cy="' + y(last) + '" r="3"/>') +
    "</svg>";
}

async function renderSparks() {
  try {
    const t = await getJSON("/v1/results/trend?metric=wall_seconds");
    const labels = Object.keys(t.series).sort();
    if (!labels.length) {
      $("sparks").innerHTML = "";
      $("sparks-note").textContent = "no wall_seconds series in the store yet";
      return;
    }
    // Group case-level series by bench: label "bench=x,case=y" or "x:y".
    const byBench = {};
    for (const label of labels) {
      const m = label.match(/bench=([^,]+)/);
      const bench = m ? m[1] : label.split(/[:,]/)[0];
      const acc = byBench[bench] || (byBench[bench] =
        t.commits.map(() => null));
      t.series[label].forEach((v, i) => {
        if (v != null) acc[i] = (acc[i] || 0) + v;
      });
    }
    $("sparks").innerHTML = Object.entries(byBench).sort().map(([bench, vals]) => {
      let last = null;
      vals.forEach(v => { if (v != null) last = v; });
      return '<div class="spark"><div class="name" title="total of per-case ' +
        'min wall seconds">' + esc(bench) + '</div><div class="last">' +
        (last == null ? "-" : last.toFixed(3) + "s") + "</div>" +
        sparkline(vals) + "</div>";
    }).join("");
    $("sparks-note").textContent = t.commits.length +
      " commit(s): " + t.commits.join(" \\u2192 ");
  } catch (e) {
    $("sparks-note").innerHTML = '<span class="err">' + esc(e.message) + "</span>";
  }
}

function refresh() {
  renderSummary(); renderHops(); renderFlame(); renderMatrix(); renderSparks();
}
refresh();
setInterval(refresh, 5000);
</script>
</body>
</html>
"""
