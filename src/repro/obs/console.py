"""The grid console: a live operator view over the telemetry stream.

Where ``condor/tools.py`` renders *pool state* (what the daemons' data
structures say now), the console renders the *event stream* (what has
been happening): per-topic traffic, the jobs' current lifecycle states,
error-hop counts by scope, and the most recent events -- the view an
operator would keep open while a run progresses.

Like every observer it is a plain bus subscriber: attach it, run, call
:meth:`GridConsole.render` whenever a snapshot is wanted.  Rendering is
pure over accumulated counts, so it is deterministic for a given seed.
"""

from __future__ import annotations

from collections import deque

from repro.harness.report import Table
from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SimTimeProfiler

__all__ = ["GridConsole"]

#: JOB-topic event name -> the state the job is in afterwards.
_JOB_STATE = {
    "submit": "idle",
    "match": "matched",
    "claim_failed": "idle",
    "execute": "running",
    "site_failed": "idle",
    "result": "completed",
    "hold": "held",
}

#: events that feed the federation panel -> the row label shown there.
_FEDERATION_EVENTS = {
    "flock": "jobs flocked",
    "flock_link_up": "flock links up",
    "flock_link_down": "flock links down",
    "grid_unreachable": "grid unreachable",
    "machine_leave": "machines left",
    "machine_join": "machines rejoined",
    "site_avoided": "sites avoided",
}


class GridConsole:
    """Accumulates telemetry and renders an operator dashboard."""

    def __init__(self, bus: TelemetryBus, keep_last: int = 12):
        self.counts: dict[tuple[str, str], int] = {}
        self.job_states: dict[str, str] = {}
        self.error_hops: dict[str, int] = {}
        self.federation: dict[str, int] = {}
        self.last_time = 0.0
        self.recent: deque[TelemetryEvent] = deque(maxlen=keep_last)
        #: sim-time attribution behind the "where time went" panel
        self.profile = SimTimeProfiler(bus)
        #: job-makespan distribution (p50/p95/p99 in the jobs panel)
        self.registry = MetricsRegistry()
        self._submit_times: dict[str, float] = {}
        self._unsubscribe = bus.subscribe(self.on_event)

    def detach(self) -> None:
        """Stop listening; accumulated state remains renderable."""
        self._unsubscribe()
        self.profile.detach()

    # -- the subscriber -------------------------------------------------
    def on_event(self, event: TelemetryEvent) -> None:
        """Fold one event into the dashboard state."""
        key = (event.topic.value, event.name)
        self.counts[key] = self.counts.get(key, 0) + 1
        self.last_time = max(self.last_time, event.time)
        self.recent.append(event)
        label = _FEDERATION_EVENTS.get(event.name)
        if label is not None:
            self.federation[label] = self.federation.get(label, 0) + 1
        if event.topic is Topic.JOB:
            job = event.attr("job")
            state = _JOB_STATE.get(event.name)
            if job is not None and state is not None:
                self.job_states[job] = state
            if job is not None:
                if event.name == "submit":
                    self._submit_times.setdefault(job, event.time)
                elif event.name in ("result", "hold"):
                    submitted = self._submit_times.pop(job, None)
                    if submitted is not None:
                        self.registry.histogram(
                            "job_makespan_seconds", event.time - submitted
                        )
        elif event.topic is Topic.ERROR:
            scope = str(event.attr("scope", "?"))
            self.error_hops[scope] = self.error_hops.get(scope, 0) + 1

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        """The dashboard: traffic, jobs, where time went, errors, recent."""
        sections = [self._traffic_table(), self._jobs_table()]
        if self.profile.total_events:
            sections.append(self._time_table())
        if self.federation:
            sections.append(self._federation_table())
        if self.error_hops:
            sections.append(self._errors_table())
        if self.recent:
            sections.append(self._recent_lines())
        return "\n\n".join(sections)

    def _traffic_table(self) -> str:
        table = Table(
            ["topic", "event", "count"],
            title=f"grid console @ t={self.last_time:.1f}",
        )
        for (topic, name), count in sorted(self.counts.items()):
            table.add_row([topic, name, count])
        if not self.counts:
            table.add_row(["(no events)", "-", 0])
        return table.render()

    def _jobs_table(self) -> str:
        tally: dict[str, int] = {}
        for state in self.job_states.values():
            tally[state] = tally.get(state, 0) + 1
        table = Table(["job state", "jobs"], title="jobs")
        for state in ("idle", "matched", "running", "completed", "held"):
            if state in tally:
                table.add_row([state, tally[state]])
        if not tally:
            table.add_row(["(none)", 0])
        p50 = self.registry.histogram_percentile("job_makespan_seconds", 50)
        if p50 is not None:
            p95 = self.registry.histogram_percentile("job_makespan_seconds", 95)
            p99 = self.registry.histogram_percentile("job_makespan_seconds", 99)
            table.add_footer(
                f"makespan p50={p50:.1f}s p95={p95:.1f}s p99={p99:.1f}s"
            )
        return table.render()

    def _time_table(self) -> str:
        snap = self.profile.snapshot()
        total = snap["sim_time"] or 0.0
        table = Table(
            ["daemon", "phase", "scope", "events", "sim time (s)"],
            title="where time went",
        )
        for row in snap["triples"][:6]:
            table.add_row(
                [
                    row["daemon"],
                    row["phase"],
                    row["scope"],
                    row["events"],
                    round(row["sim_time"], 1),
                ]
            )
        if total > 0:
            table.add_footer(f"total sim time {total:.1f}s")
        return table.render()

    def _federation_table(self) -> str:
        table = Table(["event", "count"], title="federation")
        for label in _FEDERATION_EVENTS.values():
            if label in self.federation:
                table.add_row([label, self.federation[label]])
        return table.render()

    def _errors_table(self) -> str:
        table = Table(["scope", "hops"], title="error hops")
        for scope in sorted(self.error_hops):
            table.add_row([scope, self.error_hops[scope]])
        return table.render()

    def _recent_lines(self) -> str:
        return "recent events:\n" + "\n".join(f"  {e}" for e in self.recent)
