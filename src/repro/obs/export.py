"""Exporters: JSONL traces, JSON metric snapshots, and the ambient session.

All output obeys the determinism contract (DESIGN.md §6): records carry
*simulated* time only; any wall-clock field (``wall_clock_seconds``,
``seed_seconds``, ``wall_seconds``) is stripped before serialisation;
keys are sorted and formatting is canonical.  Two runs with the same
seed therefore produce byte-identical files -- the property the harness
tests assert and the CLI acceptance check exercises.

:class:`ObservationSession` is the one-stop wiring used by the CLI
flags ``--trace`` / ``--metrics``: it installs an ambient bus (picked up
by every :class:`~repro.condor.pool.Pool` built while it is active),
records the raw event stream, assembles spans, folds the standard
metric series, and writes the files on exit.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from typing import Any

from repro.obs.bus import (
    TelemetryBus,
    TelemetryEvent,
    clear_ambient,
    install_ambient,
)
from repro.obs.metrics import BusMetricsRecorder, MetricsRegistry
from repro.obs.profile import (
    SimTimeProfiler,
    WallCounters,
    clear_wall,
    install_wall,
    profile_report,
)
from repro.obs.span import Span, SpanBuilder

__all__ = [
    "ObservationSession",
    "WALL_CLOCK_FIELDS",
    "dump_json",
    "event_record",
    "render_metrics",
    "render_trace",
    "span_record",
    "to_jsonable",
]

#: Field names that carry real (host) time and must never be exported.
WALL_CLOCK_FIELDS = frozenset(
    {"wall_clock_seconds", "seed_seconds", "wall_seconds"}
)


def to_jsonable(obj: Any, exclude: frozenset[str] = WALL_CLOCK_FIELDS) -> Any:
    """Convert *obj* (dataclasses, enums, numpy, containers) to JSON types.

    Dataclass fields named in *exclude* are dropped -- the default set is
    exactly the wall-clock fields, so experiment results serialise
    reproducibly.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name), exclude)
            for f in dataclasses.fields(obj)
            if f.name not in exclude
        }
    if isinstance(obj, enum.Enum):
        return obj.name if isinstance(obj, enum.IntEnum) else obj.value
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v, exclude) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v, exclude) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(to_jsonable(v, exclude) for v in obj)
    if isinstance(obj, bytes):
        return obj.hex()
    if isinstance(obj, (bool, int, float, str)) or obj is None:
        return obj
    # numpy scalars / arrays without a hard numpy dependency here.
    if hasattr(obj, "tolist"):
        return to_jsonable(obj.tolist(), exclude)
    if hasattr(obj, "item"):
        return obj.item()
    return str(obj)


def dump_json(path: str, obj: Any) -> None:
    """Write *obj* as canonical JSON: sorted keys, fixed separators, LF."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        json.dump(to_jsonable(obj), fh, sort_keys=True, indent=2)
        fh.write("\n")


# -- trace records ------------------------------------------------------
def event_record(event: TelemetryEvent) -> dict:
    """The canonical JSON form of one bus event."""
    return {
        "kind": "event",
        "t": event.time,
        "topic": event.topic.value,
        "name": event.name,
        "attrs": {k: to_jsonable(v) for k, v in event.attrs},
    }


def span_record(span: Span) -> dict:
    """The canonical JSON form of one span."""
    return {
        "kind": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "span_kind": span.kind,
        "start": span.start,
        "end": span.end,
        "status": span.status,
        "attrs": {k: to_jsonable(v) for k, v in span.attrs.items()},
    }


def render_trace(events: list[TelemetryEvent], spans: list[Span] | None = None) -> str:
    """The JSONL trace body: events in emission order, then spans by id."""
    lines = [
        json.dumps(event_record(e), sort_keys=True, separators=(",", ":"))
        for e in events
    ]
    for span in sorted(spans or [], key=lambda s: s.span_id):
        lines.append(json.dumps(span_record(span), sort_keys=True, separators=(",", ":")))
    return "\n".join(lines) + ("\n" if lines else "")


def render_metrics(registry: MetricsRegistry) -> str:
    """The canonical JSON form of a metrics snapshot."""
    return json.dumps(to_jsonable(registry.snapshot()), sort_keys=True, indent=2) + "\n"


# -- the ambient observation session ------------------------------------
class ObservationSession:
    """Collects one run's telemetry and writes the export files on exit.

    Usage::

        with ObservationSession(trace_path="t.jsonl", metrics_path="m.json"):
            run_fig3_scopes(seed=0)

    While the session is active its bus is *ambient*: every Pool built
    inside the block attaches to it.  Sessions do not nest (the last
    installed bus wins), which matches their single CLI entry point.
    """

    def __init__(
        self,
        trace_path: str | None = None,
        metrics_path: str | None = None,
        profile_path: str | None = None,
        profile: bool = False,
    ):
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.profile_path = profile_path
        self.profiling = profile or profile_path is not None
        self.bus = TelemetryBus()
        self.events: list[TelemetryEvent] = []
        self.spans = SpanBuilder(self.bus)
        self.recorder = BusMetricsRecorder(self.bus)
        self.registry = self.recorder.registry
        self.profiler = SimTimeProfiler(self.bus)
        #: wall counters exist only while profiling; they are installed
        #: into the hot-path hooks for the session's duration and their
        #: numbers live under a strippable "wall" key in the export.
        self.wall: WallCounters | None = WallCounters() if self.profiling else None
        self.bus.subscribe(self.events.append)

    def __enter__(self) -> "ObservationSession":
        install_ambient(self.bus)
        if self.wall is not None:
            install_wall(self.wall)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        clear_ambient()
        if self.wall is not None:
            clear_wall()
        if exc_type is None:
            self.flush()

    def profile_report(self) -> dict:
        """The schema-versioned profile for the telemetry collected so far."""
        return profile_report(self.profiler, self.spans.spans, self.wall)

    def flush(self) -> None:
        """Write the trace / metrics / profile files now."""
        if self.trace_path is not None:
            with open(self.trace_path, "w", encoding="utf-8", newline="\n") as fh:
                fh.write(render_trace(self.events, self.spans.spans))
        if self.metrics_path is not None:
            with open(self.metrics_path, "w", encoding="utf-8", newline="\n") as fh:
                fh.write(render_metrics(self.registry))
        if self.profile_path is not None:
            dump_json(self.profile_path, self.profile_report())
