"""Regression comparison between two bench runs.

Two classes of field, two classes of check (DESIGN.md determinism
contract):

- **Sim-side fields** (event counts, attributed sim time, critical
  paths, folded stacks, histogram percentiles) are deterministic for a
  given seed.  After stripping the wall keys, the old and new records
  must be *exactly* equal; any difference is a hard failure -- a
  behavioural regression, not noise.
- **Wall-side fields** (``wall_seconds`` stats, ``wall`` counters) are
  measurement.  They are stripped before the equality check and judged
  only against a configurable fractional threshold on the per-case
  minimum round time (the min is the least noisy statistic), with a
  floor below which timings are ignored entirely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_MIN_WALL_SECONDS",
    "DEFAULT_WALL_THRESHOLD",
    "MissingBaselineError",
    "WALL_KEYS",
    "compare_paths",
    "compare_records",
    "strip_wall",
]

#: Keys whose subtrees carry host wall-clock data and are never compared
#: byte-for-byte.
WALL_KEYS = frozenset({"wall", "wall_seconds"})

#: Default allowed fractional wall slowdown on a case's min round time
#: (1.0 = a 2x slowdown passes).  Shared with ``repro.obs.store`` so
#: ``trend`` / ``diff`` flag regressions by the same rule as the CI gate.
DEFAULT_WALL_THRESHOLD = 1.0
#: Cases whose min round time is below this on both sides are ignored.
DEFAULT_MIN_WALL_SECONDS = 0.05


class MissingBaselineError(FileNotFoundError):
    """A comparison side does not exist (or holds no BENCH files).

    Distinct from a regression: a missing baseline means there is
    nothing to compare against -- the caller should exit with its own
    status (the CLI uses 2) rather than report a false regression.
    """


def strip_wall(obj: Any) -> Any:
    """A deep copy of *obj* with every wall-carrying key removed."""
    if isinstance(obj, dict):
        return {k: strip_wall(v) for k, v in obj.items() if k not in WALL_KEYS}
    if isinstance(obj, list):
        return [strip_wall(v) for v in obj]
    return obj


def _diff_paths(old: Any, new: Any, at: str, out: list[str], limit: int = 20) -> None:
    """Collect human-readable paths where *old* and *new* disagree."""
    if len(out) >= limit:
        return
    if isinstance(old, dict) and isinstance(new, dict):
        for key in sorted(set(old) | set(new)):
            here = f"{at}.{key}" if at else str(key)
            if key not in old:
                out.append(f"{here}: only in new")
            elif key not in new:
                out.append(f"{here}: only in old")
            else:
                _diff_paths(old[key], new[key], here, out, limit)
            if len(out) >= limit:
                return
    elif isinstance(old, list) and isinstance(new, list):
        if len(old) != len(new):
            out.append(f"{at}: length {len(old)} -> {len(new)}")
            return
        for i, (a, b) in enumerate(zip(old, new)):
            _diff_paths(a, b, f"{at}[{i}]", out, limit)
            if len(out) >= limit:
                return
    elif old != new:
        out.append(f"{at}: {old!r} -> {new!r}")


def compare_records(
    old: dict,
    new: dict,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
    check_wall: bool = True,
) -> list[str]:
    """Problems between two BENCH records for the same benchmark.

    Sim-side differences (after :func:`strip_wall`) are reported
    per-path and are always failures.  A wall regression is reported
    when a case's new minimum round time exceeds the old by more than
    ``wall_threshold`` (fractional -- 1.0 allows a 2x slowdown) *and*
    both minima clear ``min_wall_seconds``.
    """
    name = old.get("bench", "?")
    problems: list[str] = []
    stripped_old, stripped_new = strip_wall(old), strip_wall(new)
    if stripped_old != stripped_new:
        diffs: list[str] = []
        _diff_paths(stripped_old, stripped_new, "", diffs)
        problems.extend(f"{name}: sim-side mismatch at {d}" for d in diffs)
    if not check_wall:
        return problems
    old_cases, new_cases = old.get("cases", {}), new.get("cases", {})
    for case_id in sorted(set(old_cases) & set(new_cases)):
        old_wall = old_cases[case_id].get("wall_seconds") or {}
        new_wall = new_cases[case_id].get("wall_seconds") or {}
        old_min, new_min = old_wall.get("min"), new_wall.get("min")
        if old_min is None or new_min is None:
            continue
        if old_min < min_wall_seconds and new_min < min_wall_seconds:
            continue
        if new_min > old_min * (1.0 + wall_threshold):
            problems.append(
                f"{name}:{case_id}: wall regression "
                f"{old_min:.4f}s -> {new_min:.4f}s "
                f"(> {wall_threshold:+.0%} threshold)"
            )
    return problems


def _bench_files(path: Path, side: str) -> dict[str, Path]:
    # Only a path that does not exist at all is "missing"; an existing
    # directory with no BENCH files still compares (each absent benchmark
    # is then an ordinary problem -- a vanished benchmark must not pass).
    if path.is_dir():
        return {p.name: p for p in sorted(path.glob("BENCH_*.json"))}
    if not path.is_file():
        raise MissingBaselineError(f"{side} {str(path)!r} does not exist")
    return {path.name: path}


def compare_paths(
    old: str | Path,
    new: str | Path,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
    min_wall_seconds: float = DEFAULT_MIN_WALL_SECONDS,
    check_wall: bool = True,
) -> tuple[list[str], int]:
    """Compare two BENCH files, or two directories of them, pairwise.

    Returns ``(problems, n_compared)``.  A benchmark present on only one
    side is itself a problem: a silently vanished benchmark must not
    read as a pass.  A side that does not exist at all raises
    :class:`MissingBaselineError` instead -- "no baseline yet" must not
    masquerade as "everything regressed".
    """
    old_files = _bench_files(Path(old), "baseline")
    new_files = _bench_files(Path(new), "candidate")
    problems: list[str] = []
    for missing in sorted(set(old_files) - set(new_files)):
        problems.append(f"{missing}: present in old run only")
    for extra in sorted(set(new_files) - set(old_files)):
        problems.append(f"{extra}: present in new run only")
    shared = sorted(set(old_files) & set(new_files))
    for filename in shared:
        with open(old_files[filename], encoding="utf-8") as fh:
            old_record = json.load(fh)
        with open(new_files[filename], encoding="utf-8") as fh:
            new_record = json.load(fh)
        problems.extend(
            compare_records(
                old_record,
                new_record,
                wall_threshold=wall_threshold,
                min_wall_seconds=min_wall_seconds,
                check_wall=check_wall,
            )
        )
    return problems, len(shared)
