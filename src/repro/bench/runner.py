"""Discovery and execution of the ``benchmarks/bench_*.py`` suite.

Each benchmark module is an ordinary pytest-benchmark file: ``test_*``
functions that may take a ``benchmark`` fixture and may be
``pytest.mark.parametrize``-d.  This runner executes them *without*
pytest: it loads each module straight from its file, expands parametrize
marks, and hands every case a :class:`BenchmarkProxy` -- a drop-in for
the pytest-benchmark fixture (``benchmark(fn, *args)`` and
``benchmark.pedantic(...)``) that also wires up the grid profiler.

Every *round* of a case runs under a fresh ambient
:class:`~repro.obs.bus.TelemetryBus` with a
:class:`~repro.obs.profile.SimTimeProfiler`, a
:class:`~repro.obs.span.SpanBuilder`, a
:class:`~repro.obs.metrics.BusMetricsRecorder`, and freshly installed
:class:`~repro.obs.profile.WallCounters`.  The sim-side results
(attribution triples, critical path, histogram percentiles) come from
the final round and are asserted identical across rounds (the
``deterministic`` bit in the record); the wall-side results aggregate
over rounds and live only under strippable ``wall``/``wall_seconds``
keys.  The emitted ``BENCH_<name>.json`` is canonical JSON
(schema ``repro-bench/1``), byte-identical across same-seed runs once
those keys are stripped -- the property
:mod:`repro.bench.compare` and the CI gate rely on.
"""

from __future__ import annotations

import contextlib
import importlib.util
import inspect
import io
import sys
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter_ns
from typing import Any, Callable

from repro.obs.bus import TelemetryBus, clear_ambient, install_ambient
from repro.obs.export import dump_json
from repro.obs.metrics import BusMetricsRecorder
from repro.obs.profile import (
    SimTimeProfiler,
    WallCounters,
    clear_wall,
    critical_path,
    folded_stacks,
    install_wall,
)
from repro.obs.span import SpanBuilder

__all__ = [
    "BENCH_SCHEMA",
    "BenchCase",
    "BenchmarkProxy",
    "discover",
    "run_bench_file",
    "run_suite",
]

BENCH_SCHEMA = "repro-bench/1"

#: Default rounds when a case calls ``benchmark(fn)`` without pedantic.
DEFAULT_ROUNDS = 3

#: How many attribution triples each case keeps in its record.
PROFILE_TOP_N = 8


@dataclass
class BenchCase:
    """One runnable case: a test function plus one parametrize binding."""

    case_id: str
    fn: Callable
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def wants_proxy(self) -> bool:
        return "benchmark" in inspect.signature(self.fn).parameters


def _expand_parametrize(fn: Callable) -> list[tuple[str, dict[str, Any]]]:
    """Expand ``pytest.mark.parametrize`` marks into (id-suffix, params)."""
    bindings: list[tuple[str, dict[str, Any]]] = [("", {})]
    for mark in getattr(fn, "pytestmark", ()):
        if getattr(mark, "name", "") != "parametrize":
            continue
        argnames, argvalues = mark.args[0], mark.args[1]
        names = [n.strip() for n in argnames.split(",")]
        expanded = []
        for suffix, base in bindings:
            for value in argvalues:
                values = tuple(value) if isinstance(value, (tuple, list)) else (value,)
                params = dict(base)
                params.update(zip(names, values))
                part = "-".join(str(v) for v in values)
                expanded.append((f"{suffix}-{part}" if suffix else part, params))
        bindings = expanded
    return bindings


class BenchmarkProxy:
    """Stand-in for the pytest-benchmark fixture, profiler included.

    ``benchmark(fn, *args, **kwargs)`` runs *fn* for the configured
    number of rounds; ``benchmark.pedantic(...)`` honours the in-file
    rounds/iterations unless the runner overrides them.  Either way the
    *last* call's per-round observations are what the case record reads.
    """

    def __init__(self, rounds_override: int | None = None):
        self.rounds_override = rounds_override
        self.rounds_run = 0
        self.iterations = 1
        self.round_wall_ns: list[int] = []
        self.deterministic: bool | None = None
        self.last_profile: dict | None = None
        self.last_spans: list = []
        self.last_histograms: dict = {}
        self.last_wall: dict = {}
        self.last_result: Any = None

    # -- the pytest-benchmark surface -----------------------------------
    def __call__(self, fn: Callable, *args: Any, **kwargs: Any) -> Any:
        return self._run(fn, args, kwargs, rounds=DEFAULT_ROUNDS, iterations=1)

    def pedantic(
        self,
        target: Callable,
        args: tuple = (),
        kwargs: dict | None = None,
        rounds: int = 1,
        iterations: int = 1,
        warmup_rounds: int = 0,
    ) -> Any:
        return self._run(target, tuple(args), kwargs or {}, rounds=rounds, iterations=iterations)

    # -- execution ------------------------------------------------------
    def _run(
        self, fn: Callable, args: tuple, kwargs: dict, rounds: int, iterations: int
    ) -> Any:
        if self.rounds_override is not None:
            rounds = self.rounds_override
        rounds = max(1, rounds)
        iterations = max(1, iterations)
        snapshots: list[dict] = []
        result: Any = None
        self.round_wall_ns = []
        for _ in range(rounds):
            bus = TelemetryBus()
            profiler = SimTimeProfiler(bus)
            spans = SpanBuilder(bus)
            recorder = BusMetricsRecorder(bus)
            wall = WallCounters()
            install_ambient(bus)
            install_wall(wall)
            try:
                t0 = perf_counter_ns()
                for _ in range(iterations):
                    result = fn(*args, **kwargs)
                self.round_wall_ns.append(perf_counter_ns() - t0)
            finally:
                clear_ambient()
                clear_wall()
                profiler.detach()
                spans.detach()
                recorder.detach()
            snapshots.append(profiler.snapshot())
            self.last_profile = snapshots[-1]
            self.last_spans = spans.spans
            self.last_histograms = recorder.registry.snapshot()["histograms"]
            self.last_wall = wall.snapshot()
        self.rounds_run = rounds
        self.iterations = iterations
        self.deterministic = all(snap == snapshots[0] for snap in snapshots)
        self.last_result = result
        return result


def _case_record(proxy: BenchmarkProxy, ok: bool, error: str | None) -> dict:
    """One case's JSON record; wall data only under strippable keys."""
    wall_seconds = [ns / 1e9 for ns in proxy.round_wall_ns]
    record: dict[str, Any] = {
        "ok": ok,
        "error": error,
        "rounds": proxy.rounds_run,
        "iterations": proxy.iterations,
        "deterministic": proxy.deterministic,
        "wall_seconds": (
            None
            if not wall_seconds
            else {
                "min": min(wall_seconds),
                "max": max(wall_seconds),
                "mean": sum(wall_seconds) / len(wall_seconds),
                "per_round": wall_seconds,
            }
        ),
        "wall": proxy.last_wall or None,
    }
    if proxy.last_profile is not None:
        record["sim"] = {
            "events": proxy.last_profile["events"],
            "sim_time": proxy.last_profile["sim_time"],
            "top": proxy.last_profile["triples"][:PROFILE_TOP_N],
        }
        record["critical_path"] = critical_path(proxy.last_spans)
        record["folded"] = folded_stacks(proxy.last_spans)
        record["histograms"] = proxy.last_histograms
    else:
        record["sim"] = None
        record["critical_path"] = None
        record["folded"] = []
        record["histograms"] = {}
    return record


# -- discovery ----------------------------------------------------------
def discover(bench_dir: str | Path = "benchmarks") -> list[Path]:
    """The ``bench_*.py`` files under *bench_dir*, sorted by name."""
    return sorted(Path(bench_dir).glob("bench_*.py"))


def bench_name(path: Path) -> str:
    """``benchmarks/bench_sim_engine.py`` -> ``sim_engine``."""
    return path.stem.removeprefix("bench_")


def _load_module(path: Path):
    name = f"repro_bench_{path.stem}"
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load benchmark module {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def collect_cases(path: Path) -> list[BenchCase]:
    """Load one benchmark file and expand its test functions into cases."""
    module = _load_module(path)
    cases: list[BenchCase] = []
    for attr, fn in vars(module).items():
        if not attr.startswith("test_") or not callable(fn):
            continue
        for suffix, params in _expand_parametrize(fn):
            case_id = f"{attr}[{suffix}]" if suffix else attr
            cases.append(BenchCase(case_id=case_id, fn=fn, params=params))
    return cases


# -- running ------------------------------------------------------------
def run_bench_file(
    path: Path,
    rounds_override: int | None = None,
    capture: bool = True,
) -> dict:
    """Run every case in one benchmark file; return the BENCH record."""
    cases: dict[str, dict] = {}
    for case in collect_cases(path):
        proxy = BenchmarkProxy(rounds_override=rounds_override)
        kwargs = dict(case.params)
        if case.wants_proxy:
            kwargs["benchmark"] = proxy
        sink = io.StringIO()
        error: str | None = None
        try:
            with contextlib.redirect_stdout(sink) if capture else contextlib.nullcontext():
                if case.wants_proxy:
                    case.fn(**kwargs)
                else:
                    # A plain test function: one observed, timed round.
                    proxy._run(case.fn, (), kwargs, rounds=1, iterations=1)
            ok = True
        except Exception as exc:  # noqa: BLE001 - a failed case is data
            ok = False
            error = f"{type(exc).__name__}: {exc}"
            if not isinstance(exc, AssertionError):
                error += "\n" + traceback.format_exc(limit=4)
        cases[case.case_id] = _case_record(proxy, ok, error)
    return {
        "schema": BENCH_SCHEMA,
        "bench": bench_name(path),
        "rounds_override": rounds_override,
        "cases": cases,
    }


def run_suite(
    bench_dir: str | Path = "benchmarks",
    out_dir: str | Path = "bench-out",
    only: list[str] | None = None,
    rounds_override: int | None = None,
    echo=print,
) -> list[Path]:
    """Run the (possibly filtered) suite; write one BENCH file per module.

    *only* filters by benchmark name substring (``sim_engine`` matches
    ``bench_sim_engine.py``).  Returns the written paths.
    """
    paths = discover(bench_dir)
    if only:
        paths = [p for p in paths if any(sel in bench_name(p) for sel in only)]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for path in paths:
        record = run_bench_file(path, rounds_override=rounds_override)
        target = out / f"BENCH_{record['bench']}.json"
        dump_json(str(target), record)
        written.append(target)
        n_ok = sum(1 for c in record["cases"].values() if c["ok"])
        total = len(record["cases"])
        status = "ok" if n_ok == total else f"{total - n_ok} FAILED"
        echo(f"bench {record['bench']}: {n_ok}/{total} cases {status} -> {target}")
    return written
