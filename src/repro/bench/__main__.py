"""The bench CLI: ``python -m repro.bench``.

Examples::

    python -m repro.bench                        # run all, write bench-out/
    python -m repro.bench --only sim_engine --only classads --rounds 1
    python -m repro.bench --list
    python -m repro.bench compare benchmarks/baseline bench-out
    python -m repro.bench compare old.json new.json --wall-threshold 4.0
    python -m repro.bench compare baseline bench-out --sim-only

The run subcommand (the default) discovers ``benchmarks/bench_*.py``,
executes each under the deterministic grid profiler, and writes one
schema-versioned ``BENCH_<name>.json`` per module.  ``compare`` diffs
two bench runs: sim-side differences always fail; wall-time regressions
fail only past ``--wall-threshold``.  Exit status is nonzero on any
failed case or detected regression, so both subcommands gate CI.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.compare import MissingBaselineError, compare_paths
from repro.bench.runner import bench_name, discover, run_suite


def _run_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the benchmark suite under the grid profiler.",
    )
    parser.add_argument("--bench-dir", default="benchmarks", metavar="DIR",
                        help="directory holding bench_*.py (default: benchmarks)")
    parser.add_argument("--out", default="bench-out", metavar="DIR",
                        help="directory for BENCH_*.json (default: bench-out)")
    parser.add_argument("--only", action="append", default=None, metavar="NAME",
                        help="run only benchmarks whose name contains NAME "
                             "(repeatable)")
    parser.add_argument("--rounds", type=int, default=None, metavar="N",
                        help="override every case's round count (wall stats "
                             "only; sim results are per-round identical)")
    parser.add_argument("--list", action="store_true",
                        help="list discovered benchmarks and exit")
    parser.add_argument("--results-db", default=None, metavar="PATH",
                        help="also ingest each written BENCH file into this "
                             "longitudinal results store")
    args = parser.parse_args(argv)
    if args.rounds is not None and args.rounds < 1:
        parser.error("--rounds must be >= 1")
    if args.list:
        print("benchmarks:")
        for path in discover(args.bench_dir):
            print(f"  {bench_name(path)}")
        return 0
    written = run_suite(
        bench_dir=args.bench_dir,
        out_dir=args.out,
        only=args.only,
        rounds_override=args.rounds,
    )
    if not written:
        print("no benchmarks matched", file=sys.stderr)
        return 1
    if args.results_db:
        from repro.obs.store import ResultsStore, default_commit

        store = ResultsStore(args.results_db)
        try:
            commit = default_commit()
            for path in written:
                run_id = store.ingest_path(path, commit=commit)
                print(f"ingested {path} -> run {run_id} "
                      f"({args.results_db} @ {commit})")
        finally:
            store.close()
    import json

    failed = 0
    for path in written:
        with open(path, encoding="utf-8") as fh:
            record = json.load(fh)
        failed += sum(1 for case in record["cases"].values() if not case["ok"])
    if failed:
        print(f"{failed} benchmark case(s) failed", file=sys.stderr)
        return 1
    return 0


def _compare_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench compare",
        description="Diff two bench runs; fail on sim changes or wall regressions.",
    )
    parser.add_argument("old", help="baseline BENCH file or directory")
    parser.add_argument("new", help="candidate BENCH file or directory")
    parser.add_argument("--wall-threshold", type=float, default=1.0, metavar="F",
                        help="allowed fractional wall slowdown on per-case min "
                             "(default 1.0 = 2x)")
    parser.add_argument("--min-wall-seconds", type=float, default=0.05, metavar="S",
                        help="ignore cases whose min round time is below S "
                             "on both sides (default 0.05)")
    parser.add_argument("--sim-only", action="store_true",
                        help="skip wall-time checks entirely (sim diffs are "
                             "exact and still hard-fail)")
    args = parser.parse_args(argv)
    try:
        problems, compared = compare_paths(
            args.old,
            args.new,
            wall_threshold=args.wall_threshold,
            min_wall_seconds=args.min_wall_seconds,
            check_wall=not args.sim_only,
        )
    except MissingBaselineError as exc:
        # Not a regression: there is nothing to compare against.  Exit 2
        # so CI can tell "no baseline yet" from "benchmarks regressed".
        print(f"MISSING BASELINE: {exc}", file=sys.stderr)
        print("run `python -m repro.bench` to produce one, or check the path",
              file=sys.stderr)
        return 2
    for problem in problems:
        print(f"REGRESSION: {problem}")
    print(f"compared {compared} benchmark(s): "
          + ("OK" if not problems else f"{len(problems)} problem(s)"))
    return 1 if problems else 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "compare":
        return _compare_main(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    return _run_main(argv)


if __name__ == "__main__":
    sys.exit(main())
