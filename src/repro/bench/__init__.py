"""``repro.bench``: the regression-gated benchmark harness.

Turns the ad-hoc ``benchmarks/bench_*.py`` scripts into a suite with a
contract: ``python -m repro.bench`` runs every discovered benchmark
under the deterministic grid profiler (:mod:`repro.obs.profile`) and
emits one canonical ``BENCH_<name>.json`` per module -- sim-time
attribution, critical-path summary, histogram percentiles, folded
flamegraph stacks, and (strippable) wall-time statistics.  ``python -m
repro.bench compare`` then diffs two runs: simulated-time results are
exact and hard-fail on any change; wall-clock results are judged against
a configurable threshold, so the gate never flakes on a noisy host.

- :mod:`repro.bench.runner` -- discovery, the pytest-benchmark-
  compatible :class:`~repro.bench.runner.BenchmarkProxy`, suite
  execution;
- :mod:`repro.bench.compare` -- wall stripping and regression checks.
"""

from repro.bench.compare import compare_paths, compare_records, strip_wall
from repro.bench.runner import (
    BENCH_SCHEMA,
    BenchmarkProxy,
    discover,
    run_bench_file,
    run_suite,
)

__all__ = [
    "BENCH_SCHEMA",
    "BenchmarkProxy",
    "compare_paths",
    "compare_records",
    "discover",
    "run_bench_file",
    "run_suite",
    "strip_wall",
]
