"""Job-stream generators.

Every generated job carries its *expected clean-run result*, computed by
statically walking the program model.  That expectation is what makes the
Principle-1 audit precise: a delivered result that differs from the
expectation, while a fault overlapped the decisive attempt, is an
environmental error in program-result clothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.job import Job, ProgramImage, Universe
from repro.core.result import ResultFile
from repro.jvm.program import JavaProgram, Step, StepKind
from repro.jvm.throwables import JError, throwable_by_name

__all__ = ["WorkloadSpec", "expected_result_for", "make_workload"]

MB = 2**20


def expected_result_for(program: JavaProgram, home_files: set[str] | None = None) -> ResultFile:
    """The result a clean environment delivers for *program*.

    Walks the step list: the first uncaught throw or exit decides; I/O
    steps succeed when their path is in *home_files* (reads) or always
    (writes), else raise FileNotFoundException.
    """
    home_files = home_files if home_files is not None else set()
    for step in program.steps:
        if step.kind is StepKind.EXIT:
            return ResultFile.completed(step.arg)
        if step.kind is StepKind.THROW:
            exc = throwable_by_name(step.arg)
            if isinstance(exc, JError):
                # A thrown Error is uncatchable; in a clean environment the
                # wrapper would still classify e.g. OutOfMemoryError as
                # VM scope -- workloads avoid generating these.
                return ResultFile.exception(step.arg)
            if step.arg in program.handles:
                continue
            return ResultFile.exception(step.arg)
        if step.kind is StepKind.READ and step.arg not in home_files:
            if "FileNotFoundException" in program.handles:
                continue
            return ResultFile.exception("FileNotFoundException", step.arg)
    return ResultFile.completed(0)


@dataclass
class WorkloadSpec:
    """Shape of a generated job stream."""

    n_jobs: int = 20
    #: mean compute per job (normalized cpu-seconds)
    mean_work: float = 10.0
    #: fraction of jobs that read + write home files
    io_fraction: float = 0.3
    #: fraction of jobs that end in a program exception (wanted results)
    exception_fraction: float = 0.1
    #: fraction of jobs that call System.exit with a nonzero code
    exit_code_fraction: float = 0.1
    #: per-job heap request
    heap_request: int = 32 * MB
    owner: str = "thain"
    universe: Universe = Universe.JAVA


def make_workload(spec: WorkloadSpec, rng, home_fs=None) -> list[Job]:
    """Generate ``spec.n_jobs`` jobs; populate *home_fs* with their inputs.

    *rng* is a ``random.Random`` stream; determinism flows from it.
    """
    jobs: list[Job] = []
    home_files: set[str] = set()
    for i in range(spec.n_jobs):
        steps: list[Step] = []
        work = max(0.5, rng.expovariate(1.0 / spec.mean_work))
        steps.append(Step.compute(work))
        input_files: dict[str, str] = {}
        draw = rng.random()
        if draw < spec.io_fraction and home_fs is not None:
            path = f"/home/user/input{i:04d}.dat"
            home_fs.write_file(path, f"input for job {i}".encode())
            home_files.add(path)
            steps.append(Step.read(path))
            steps.append(Step.write(f"/home/user/output{i:04d}.dat", b"out"))
        draw = rng.random()
        if draw < spec.exception_fraction:
            steps.append(
                Step.throw(
                    rng.choice(
                        [
                            "ArrayIndexOutOfBoundsException",
                            "NullPointerException",
                            "ArithmeticException",
                        ]
                    )
                )
            )
        elif draw < spec.exception_fraction + spec.exit_code_fraction:
            steps.append(Step.exit(rng.randint(1, 9)))
        program = JavaProgram(name=f"Job{i}", steps=steps)
        job = Job(
            job_id=f"1.{i}",
            owner=spec.owner,
            universe=spec.universe,
            image=ProgramImage(f"job{i}.class", program=program),
            input_files=input_files,
            heap_request=spec.heap_request,
        )
        job.expected_result = expected_result_for(program, home_files)
        jobs.append(job)
    return jobs
