"""Seed replication: run an experiment across seeds, report mean +/- std.

Single-seed results can flatter or slander a design; the experiments in
EXPERIMENTS.md assert *shapes*, and this module checks those shapes hold
across seeds, numpy doing the aggregation.

Replication is embarrassingly parallel (per-seed runs are independent by
the determinism contract), so :func:`replicate` accepts ``workers=`` and
fans seeds out over processes via :class:`repro.harness.parallel.ParallelRunner`.
The merge is in canonical seed order, so ``workers=4`` returns samples
bit-identical to ``workers=1`` for the same seeds.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.harness.parallel import ParallelRunner
from repro.harness.report import Table

__all__ = ["Replication", "replicate"]


@dataclass
class Replication:
    """Aggregated metric samples across seeds."""

    seeds: list[int]
    samples: dict[str, np.ndarray]  # metric name -> per-seed values
    #: wall-clock seconds each seed's run took, aligned with ``seeds``
    seed_seconds: list[float] = field(default_factory=list)
    #: wall-clock seconds for the whole replication (serial or parallel)
    wall_seconds: float = 0.0

    def mean(self, metric: str) -> float:
        return float(self.samples[metric].mean())

    def std(self, metric: str) -> float:
        return float(self.samples[metric].std(ddof=1)) if len(self.seeds) > 1 else 0.0

    def min(self, metric: str) -> float:
        return float(self.samples[metric].min())

    def max(self, metric: str) -> float:
        return float(self.samples[metric].max())

    def always(self, predicate: Callable[[dict[str, float]], bool]) -> bool:
        """Does *predicate* hold for every individual seed's sample row?"""
        for i in range(len(self.seeds)):
            row = {name: float(vals[i]) for name, vals in self.samples.items()}
            if not predicate(row):
                return False
        return True

    def table(self, title: str = "replication") -> Table:
        table = Table(
            ["metric", "mean", "std", "min", "max"],
            title=f"{title} (n={len(self.seeds)} seeds)",
        )
        for metric in self.samples:
            table.add_row([
                metric,
                round(self.mean(metric), 3),
                round(self.std(metric), 3),
                round(self.min(metric), 3),
                round(self.max(metric), 3),
            ])
        if self.seed_seconds:
            per_seed = sum(self.seed_seconds) / len(self.seed_seconds)
            table.add_footer(
                f"wall clock {self.wall_seconds:.3f}s"
                f" | per-seed mean {per_seed:.3f}s"
                f" (min {min(self.seed_seconds):.3f}s,"
                f" max {max(self.seed_seconds):.3f}s)"
            )
        return table


def replicate(
    run: Callable[[int], dict[str, float]],
    seeds: list[int] | range,
    workers: int = 1,
    timeout: float | None = None,
) -> Replication:
    """Run *run(seed)* for each seed; *run* returns metric-name -> value.

    ``workers > 1`` shards the seed list across that many worker
    processes; results are merged in canonical seed order, so the
    returned samples are bit-identical to a serial run.  A crashed or
    hung worker raises :class:`repro.harness.parallel.WorkerFailure`
    naming its seeds (it never yields a shorter sample array), and
    ``timeout`` bounds each seed's wall clock when given.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    started = time.perf_counter()
    outcomes = ParallelRunner(run, workers=workers, timeout=timeout).map(seeds)
    wall_seconds = time.perf_counter() - started
    rows = [outcome.value for outcome in outcomes]
    # Canonical metric order is the first row's; later rows may be
    # reported in any insertion order (parallel workers make none
    # canonical), as long as the *set* of metrics matches.
    names = list(rows[0])
    name_set = set(names)
    for row in rows:
        if set(row) != name_set:
            raise ValueError("every run must report the same metrics")
    samples = {
        name: np.array([row[name] for row in rows], dtype=float) for name in names
    }
    return Replication(
        seeds=seeds,
        samples=samples,
        seed_seconds=[outcome.seconds for outcome in outcomes],
        wall_seconds=wall_seconds,
    )
