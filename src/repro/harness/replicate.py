"""Seed replication: run an experiment across seeds, report mean +/- std.

Single-seed results can flatter or slander a design; the experiments in
EXPERIMENTS.md assert *shapes*, and this module checks those shapes hold
across seeds, numpy doing the aggregation.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.harness.report import Table

__all__ = ["Replication", "replicate"]


@dataclass
class Replication:
    """Aggregated metric samples across seeds."""

    seeds: list[int]
    samples: dict[str, np.ndarray]  # metric name -> per-seed values

    def mean(self, metric: str) -> float:
        return float(self.samples[metric].mean())

    def std(self, metric: str) -> float:
        return float(self.samples[metric].std(ddof=1)) if len(self.seeds) > 1 else 0.0

    def min(self, metric: str) -> float:
        return float(self.samples[metric].min())

    def max(self, metric: str) -> float:
        return float(self.samples[metric].max())

    def always(self, predicate: Callable[[dict[str, float]], bool]) -> bool:
        """Does *predicate* hold for every individual seed's sample row?"""
        for i in range(len(self.seeds)):
            row = {name: float(vals[i]) for name, vals in self.samples.items()}
            if not predicate(row):
                return False
        return True

    def table(self, title: str = "replication") -> Table:
        table = Table(
            ["metric", "mean", "std", "min", "max"],
            title=f"{title} (n={len(self.seeds)} seeds)",
        )
        for metric in self.samples:
            table.add_row([
                metric,
                round(self.mean(metric), 3),
                round(self.std(metric), 3),
                round(self.min(metric), 3),
                round(self.max(metric), 3),
            ])
        return table


def replicate(
    run: Callable[[int], dict[str, float]],
    seeds: list[int] | range,
) -> Replication:
    """Run *run(seed)* for each seed; *run* returns metric-name -> value."""
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    rows = [run(seed) for seed in seeds]
    names = list(rows[0])
    for row in rows:
        if list(row) != names:
            raise ValueError("every run must report the same metrics")
    samples = {
        name: np.array([row[name] for row in rows], dtype=float) for name in names
    }
    return Replication(seeds=seeds, samples=samples)
