"""Run metrics: the quantities the paper's narrative is about.

    "A disciplined error propagation system conserves two precious
    resources: time and aggravation." (§7)

Aggravation is measured as *user-visible incidental errors* and
*postmortems required*; time as goodput, wasted executions, and makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.job import Job, JobState

__all__ = ["RunMetrics", "collect_metrics"]


@dataclass
class RunMetrics:
    """Aggregated outcome of one pool run."""

    jobs: int = 0
    completed: int = 0
    held: int = 0
    unfinished: int = 0
    #: jobs whose delivered outcome was correct (matches expectation)
    correct_results: int = 0
    #: environmental errors shown to the user as if they were results
    #: (wrong "completions" plus environment-reason holds)
    user_visible_incidental: int = 0
    #: terminal outcomes a user must investigate by hand
    postmortems_required: int = 0
    total_attempts: int = 0
    wasted_attempts: int = 0
    #: Condor's classic vocabulary: simulated seconds spent in attempts
    #: that ended in environmental errors (badput) vs. in the attempts
    #: that produced the delivered results (goodput).
    goodput_seconds: float = 0.0
    badput_seconds: float = 0.0
    makespan: float = 0.0
    mean_turnaround: float = 0.0
    network_bytes: int = 0
    #: real (host) seconds the run took, as opposed to simulated seconds.
    #: Deliberately NOT part of :meth:`as_rows`: rendered tables must be
    #: bit-reproducible across runs (DESIGN.md §6), so wall clock reaches
    #: the user via table *footers* (CLI, replication) instead of rows.
    wall_clock_seconds: float = 0.0

    def as_rows(self) -> list[list]:
        return [
            ["jobs", self.jobs],
            ["completed", self.completed],
            ["held", self.held],
            ["unfinished", self.unfinished],
            ["correct results", self.correct_results],
            ["user-visible incidental errors", self.user_visible_incidental],
            ["postmortems required", self.postmortems_required],
            ["total attempts", self.total_attempts],
            ["wasted attempts", self.wasted_attempts],
            ["goodput (s)", self.goodput_seconds],
            ["badput (s)", self.badput_seconds],
            ["makespan (s)", self.makespan],
            ["mean turnaround (s)", self.mean_turnaround],
            ["network bytes", self.network_bytes],
        ]


def collect_metrics(
    pool, jobs: list[Job], injector=None, wall_clock: float = 0.0
) -> RunMetrics:
    """Compute :class:`RunMetrics` for *jobs* run on *pool*.

    When *injector* is given, its ground truth refines the incidental
    count: a completion whose result differs from the job's expectation,
    with a fault overlapping the decisive attempt, counts as an incidental
    error the user was wrongly shown.
    """
    if injector is not None:
        injector.stamp_attempts(jobs)
    metrics = RunMetrics(jobs=len(jobs), wall_clock_seconds=wall_clock)
    turnarounds = []
    for job in jobs:
        metrics.total_attempts += job.attempt_count
        for attempt in job.attempts:
            duration = max(0.0, attempt.ended - attempt.started)
            if (
                attempt.error_scope is not None
                and not attempt.error_scope.within_program_contract
            ):
                metrics.wasted_attempts += 1
                metrics.badput_seconds += duration
            elif attempt.succeeded:
                metrics.goodput_seconds += duration
        if job.state is JobState.COMPLETED:
            metrics.completed += 1
            turnarounds.append(
                (job.attempts[-1].ended if job.attempts else job.submitted_at)
                - job.submitted_at
            )
            expected = job.expected_result
            delivered = job.final_result
            if expected is None or (delivered is not None and delivered.same_outcome(expected)):
                metrics.correct_results += 1
            else:
                # The user got a "result" that is not the program's result.
                metrics.postmortems_required += 1
                decisive = job.attempts[-1] if job.attempts else None
                if decisive is not None and decisive.truth_scope is not None:
                    metrics.user_visible_incidental += 1
        elif job.state is JobState.HELD:
            metrics.held += 1
            metrics.postmortems_required += 1
            if not job.hold_reason.startswith("unexecutable"):
                # Holds for job-scope errors are correct deliveries; holds
                # for anything else expose environmental junk to the user.
                metrics.user_visible_incidental += 1
        else:
            metrics.unfinished += 1
    metrics.makespan = pool.sim.now
    metrics.mean_turnaround = (
        sum(turnarounds) / len(turnarounds) if turnarounds else 0.0
    )
    metrics.network_bytes = pool.net.total_traffic()
    return metrics
