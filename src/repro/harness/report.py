"""ASCII table rendering for benches and EXPERIMENTS.md."""

from __future__ import annotations

import math
from typing import Any

__all__ = ["Table", "fmt"]


def fmt(value: Any) -> str:
    """Render one cell: floats get 3 significant figures past the point."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if not math.isfinite(value):
            # int(inf) raises OverflowError and int(nan) raises
            # ValueError; a diverged metric must still render (P1/P2:
            # show the explicit error, don't crash the table).
            return str(value)  # 'inf', '-inf', or 'nan'
        if value == int(value) and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.3f}"
    return str(value)


class Table:
    """A minimal fixed-width table: headers, rows, render()."""

    def __init__(self, headers: list[str], rows: list[list[Any]] | None = None, title: str = ""):
        self.title = title
        self.headers = list(headers)
        self.rows: list[list[str]] = []
        self.footers: list[str] = []
        for row in rows or []:
            self.add_row(row)

    def add_row(self, row: list[Any]) -> None:
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([fmt(cell) for cell in row])

    def add_footer(self, text: str) -> None:
        """Append a free-form footer line (timings, provenance notes)."""
        self.footers.append(str(text))

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

        rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
        out = []
        if self.title:
            out.append(self.title)
        out.append(line(self.headers))
        out.append(rule)
        out.extend(line(row) for row in self.rows)
        if self.footers:
            out.append(rule)
            out.extend(self.footers)
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
