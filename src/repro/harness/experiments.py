"""One named experiment per paper figure and evaluative claim.

See DESIGN.md §4 for the experiment index.  Every function is
deterministic given its seed, and returns a result object exposing
``table()`` -- the rows the matching benchmark prints and EXPERIMENTS.md
records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.condor import Job, JobState, Pool, PoolConfig, ProgramImage, Universe
from repro.condor.daemons.config import CondorConfig
from repro.core.principles import PrincipleAuditor
from repro.core.result import ResultFile, ResultStatus
from repro.core.scope import ErrorScope
from repro.core.timescope import EscalationLadder, TimeScopeEscalator
from repro.faults import (
    CorruptProgramImage,
    CredentialExpiry,
    FaultInjector,
    HomeFilesystemOffline,
    MemoryPressure,
    MisconfiguredJvm,
    MissingInputFile,
)
from repro.harness.metrics import RunMetrics, collect_metrics
from repro.harness.report import Table
from repro.harness.workloads import WorkloadSpec, expected_result_for, make_workload
from repro.jvm.program import JavaProgram, Step
from repro.sim.rng import RngRegistry

__all__ = [
    "run_fig1_kernel",
    "run_fig2_java_universe",
    "run_fig3_scopes",
    "run_fig4_result_codes",
    "run_naive_vs_scoped",
    "run_black_hole",
    "run_nfs_mounts",
    "run_time_scope",
    "run_principles",
    "run_end_to_end",
    "run_checkpoint_ablation",
    "run_fair_share",
    "run_preemption",
    "run_retry_sweep",
    "run_churn",
    "run_flocking",
]

MB = 2**20


# ---------------------------------------------------------------------------
# FIG1 -- the Condor kernel
# ---------------------------------------------------------------------------

@dataclass
class Fig1Result:
    jobs: int
    machines: int
    ads_sent: int
    cycles: int
    matches: int
    claims_granted: int
    shadows_spawned: int
    completed: int
    makespan: float

    def table(self) -> Table:
        return Table(
            ["kernel stage", "count"],
            [
                ["machine ads sent (startd -> matchmaker)", self.ads_sent],
                ["negotiation cycles", self.cycles],
                ["matches notified (matchmaker -> schedd)", self.matches],
                ["claims granted (schedd <-> startd)", self.claims_granted],
                ["shadows spawned (schedd fork)", self.shadows_spawned],
                ["jobs completed", self.completed],
                ["makespan (s)", self.makespan],
            ],
            title=f"FIG1: Condor kernel, {self.jobs} jobs on {self.machines} machines",
        )


def run_fig1_kernel(seed: int = 0, n_jobs: int = 8, n_machines: int = 4) -> Fig1Result:
    """A healthy pool: verifies Figure 1's protocol wiring end to end."""
    pool = Pool(PoolConfig(n_machines=n_machines, seed=seed))
    rngs = RngRegistry(seed)
    jobs = make_workload(
        WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                     exit_code_fraction=0.0),
        rngs.stream("fig1"),
    )
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=100_000)
    return Fig1Result(
        jobs=n_jobs,
        machines=n_machines,
        ads_sent=sum(s.ads_sent for s in pool.startds.values()),
        cycles=pool.matchmaker.cycles_run,
        matches=pool.matchmaker.matches_made,
        claims_granted=sum(s.claims_granted for s in pool.startds.values()),
        shadows_spawned=pool.schedd.shadows_spawned,
        completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
        makespan=pool.sim.now,
    )


# ---------------------------------------------------------------------------
# FIG2 -- the Java Universe I/O path
# ---------------------------------------------------------------------------

@dataclass
class Fig2Result:
    completed: bool
    chirp_requests: int
    rpc_requests: int
    bytes_exec_to_submit: int
    bytes_submit_to_exec: int
    output_written: bool

    def table(self) -> Table:
        return Table(
            ["Java Universe hop", "value"],
            [
                ["job completed", self.completed],
                ["Chirp requests (program -> proxy)", self.chirp_requests],
                ["RPC requests (proxy -> shadow)", self.rpc_requests],
                ["bytes exec -> submit", self.bytes_exec_to_submit],
                ["bytes submit -> exec", self.bytes_submit_to_exec],
                ["output landed on home fs", self.output_written],
            ],
            title="FIG2: two-hop remote I/O through the starter proxy",
        )


def run_fig2_java_universe(seed: int = 0, n_reads: int = 4) -> Fig2Result:
    """One Java job doing remote I/O through proxy and shadow (Figure 2)."""
    registry: list = []
    pool = Pool(PoolConfig(
        n_machines=1, seed=seed,
        condor=CondorConfig(error_mode="scoped", interface_registry=registry),
    ))
    for i in range(n_reads):
        pool.home_fs.write_file(f"/home/user/in{i}.dat", b"x" * 512)
    steps = [Step.read(f"/home/user/in{i}.dat") for i in range(n_reads)]
    steps.append(Step.write("/home/user/result.dat", b"y" * 256))
    program = JavaProgram(steps=steps)
    job = Job("1.0", owner="thain", universe=Universe.JAVA,
              image=ProgramImage("io.class", program=program))
    pool.submit(job)
    pool.run_until_done(max_time=100_000)
    exec_host = job.attempts[0].site if job.attempts else "exec000"
    io_requests = n_reads + 1
    return Fig2Result(
        completed=job.state is JobState.COMPLETED,
        chirp_requests=io_requests,
        rpc_requests=io_requests,
        bytes_exec_to_submit=pool.net.traffic_bytes.get((exec_host, "submit"), 0),
        bytes_submit_to_exec=pool.net.traffic_bytes.get(("submit", exec_host), 0),
        output_written=pool.home_fs.exists("/home/user/result.dat"),
    )


# ---------------------------------------------------------------------------
# FIG3 -- error scopes and their handlers
# ---------------------------------------------------------------------------

@dataclass
class Fig3Row:
    fault: str
    expected_scope: ErrorScope
    observed_scope: ErrorScope | None
    handler: str
    disposition: str
    correct: bool


@dataclass
class Fig3Result:
    rows: list[Fig3Row]

    def table(self) -> Table:
        table = Table(
            ["fault", "expected scope", "observed scope", "handler", "disposition", "correct"],
            title="FIG3: each canonical fault lands at its scope's manager",
        )
        for row in self.rows:
            table.add_row([
                row.fault,
                str(row.expected_scope),
                str(row.observed_scope) if row.observed_scope else "program-result",
                row.handler,
                row.disposition,
                row.correct,
            ])
        return table

    @property
    def all_correct(self) -> bool:
        return all(row.correct for row in self.rows)


def _one_job_pool(seed: int, steps=None, n_machines: int = 3) -> tuple[Pool, Job]:
    pool = Pool(PoolConfig(n_machines=n_machines, seed=seed,
                           condor=CondorConfig(error_mode="scoped")))
    pool.home_fs.write_file("/home/user/in.dat", b"data")
    program = JavaProgram(steps=steps or [Step.compute(2.0)])
    job = Job("1.0", owner="thain", universe=Universe.JAVA,
              image=ProgramImage("probe.class", program=program))
    job.expected_result = expected_result_for(program, {"/home/user/in.dat"})
    return pool, job


def run_fig3_scopes(seed: int = 0) -> Fig3Result:
    """Inject each scope's canonical fault; verify delivery per Figure 3."""
    rows: list[Fig3Row] = []

    # PROGRAM scope: the program's own exception is a result for the user.
    pool, job = _one_job_pool(seed, steps=[Step.throw("NullPointerException")])
    pool.submit(job)
    pool.run_until_done(max_time=50_000)
    rows.append(Fig3Row(
        "NullPointerException (program bug)", ErrorScope.PROGRAM, None,
        "user", "delivered as program result",
        job.state is JobState.COMPLETED
        and job.final_result.status is ResultStatus.EXCEPTION,
    ))

    # VIRTUAL_MACHINE scope: memory pressure.
    pool, job = _one_job_pool(seed + 1, steps=[Step.allocate(64 * MB)])
    job.heap_request = 128 * MB
    FaultInjector(pool).schedule(MemoryPressure("exec000", 250 * MB))
    pool.submit(job)
    pool.run_until_done(max_time=50_000)
    failed = [a for a in job.attempts if a.error_scope is not None]
    rows.append(Fig3Row(
        "OutOfMemoryError (machine busy)", ErrorScope.VIRTUAL_MACHINE,
        failed[0].error_scope if failed else None,
        "starter", "retried at a new site",
        bool(failed) and failed[0].error_scope is ErrorScope.VIRTUAL_MACHINE
        and job.state is JobState.COMPLETED,
    ))

    # REMOTE_RESOURCE scope: misconfigured JVM.
    pool, job = _one_job_pool(seed + 2)
    FaultInjector(pool).schedule(MisconfiguredJvm("exec000"))
    pool.submit(job)
    pool.run_until_done(max_time=50_000)
    failed = [a for a in job.attempts if a.error_scope is not None]
    rows.append(Fig3Row(
        "Misconfigured JVM", ErrorScope.REMOTE_RESOURCE,
        failed[0].error_scope if failed else None,
        "shadow", "retried at a new site",
        bool(failed) and failed[0].error_scope is ErrorScope.REMOTE_RESOURCE
        and job.state is JobState.COMPLETED,
    ))

    # LOCAL_RESOURCE scope: home file system offline (transient).
    pool, job = _one_job_pool(
        seed + 3, steps=[Step.read("/home/user/in.dat"), Step.exit(0)]
    )
    FaultInjector(pool).schedule(HomeFilesystemOffline(), at=0.0, until=300.0)
    pool.submit(job)
    pool.run_until_done(max_time=50_000)
    failed = [a for a in job.attempts if a.error_scope is not None]
    rows.append(Fig3Row(
        "Home file system offline", ErrorScope.LOCAL_RESOURCE,
        failed[0].error_scope if failed else None,
        "schedd", "retried until it healed",
        bool(failed) and failed[0].error_scope is ErrorScope.LOCAL_RESOURCE
        and job.state is JobState.COMPLETED,
    ))

    # JOB scope: corrupt program image.
    pool, job = _one_job_pool(seed + 4)
    pool.submit(job)
    FaultInjector(pool).schedule(CorruptProgramImage(job.job_id))
    pool.run_until_done(max_time=50_000)
    failed = [a for a in job.attempts if a.error_scope is not None]
    rows.append(Fig3Row(
        "Corrupt program image", ErrorScope.JOB,
        failed[0].error_scope if failed else None,
        "schedd", "held as unexecutable (no retry)",
        bool(failed) and failed[0].error_scope is ErrorScope.JOB
        and job.state is JobState.HELD and len(job.attempts) == 1,
    ))
    return Fig3Result(rows)


# ---------------------------------------------------------------------------
# FIG4 -- JVM result codes
# ---------------------------------------------------------------------------

@dataclass
class Fig4Row:
    detail: str
    scope: str
    bare_code: int
    wrapper_report: str


@dataclass
class Fig4Result:
    rows: list[Fig4Row]

    def table(self) -> Table:
        table = Table(
            ["Execution Detail", "Error Scope", "JVM Result Code", "Wrapper Result File"],
            title="FIG4: JVM result codes (paper columns) + wrapper recovery",
        )
        for row in self.rows:
            table.add_row([row.detail, row.scope, row.bare_code, row.wrapper_report])
        return table

    @property
    def bare_codes(self) -> list[int]:
        return [row.bare_code for row in self.rows]

    @property
    def distinct_wrapper_reports(self) -> int:
        return len({row.wrapper_report for row in self.rows})


def run_fig4_result_codes() -> Fig4Result:
    """Reproduce Figure 4 exactly: seven execution details, bare exit codes,
    and the wrapper's recovered scopes."""
    from repro.core.classify import DEFAULT_CLASSIFIER
    from repro.jvm.machine import Jvm
    from repro.sim.engine import Simulator
    from repro.sim.machine import JavaInstallation, Machine

    scenarios = [
        ("The program exited by completing main.", "Program",
         JavaProgram(steps=[Step.compute(1.0)]), {}, None),
        ("The program exited by calling System.exit(x)", "Program",
         JavaProgram(steps=[Step.exit(5)]), {}, None),
        ("Exception: The program de-referenced a null pointer.", "Program",
         JavaProgram(steps=[Step.throw("NullPointerException")]), {}, None),
        ("Exception: There was not enough memory for the program.", "Virtual Machine",
         JavaProgram(steps=[Step.allocate(64 * MB)]), {"heap": 16 * MB}, None),
        ("Exception: The Java installation is misconfigured.", "Remote Resource",
         JavaProgram(steps=[Step.compute(1.0)]), {},
         JavaInstallation(classpath_ok=False)),
        ("Exception: The home file system was offline.", "Local Resource",
         JavaProgram(steps=[Step.throw("ConnectionTimedOutException")]), {}, None),
        ("Exception: The program image was corrupt.", "Job",
         JavaProgram(steps=[Step.compute(1.0)]), {"corrupt": True}, None),
    ]
    rows: list[Fig4Row] = []
    for detail, scope_name, program, opts, installation in scenarios:
        bare_code = _bare_exit_code(program, opts, installation)
        wrapper_report = _wrapper_report(program, opts, installation)
        rows.append(Fig4Row(detail, scope_name, bare_code, wrapper_report))
    return Fig4Result(rows)


def _jvm_rig(installation):
    from repro.jvm.machine import Jvm
    from repro.sim.engine import Simulator
    from repro.sim.machine import Machine

    sim = Simulator()
    machine = Machine(sim, "exec", java=installation) if installation else Machine(sim, "exec")
    machine.scratch.mkdir("/scratch/job", parents=True)
    jvm = Jvm(sim, machine, installation=installation)
    return sim, machine, jvm


def _bare_exit_code(program, opts, installation) -> int:
    from repro.chirp.client import LocalIoLibrary

    sim, machine, jvm = _jvm_rig(installation)
    io = LocalIoLibrary(machine.scratch, "/scratch/job")
    image = ProgramImage("Main.class", program=program, corrupt=opts.get("corrupt", False))
    proc = machine.processes.spawn(
        "java", jvm.run_bare(image, program, io, opts.get("heap", 32 * MB))
    )
    sim.run()
    return proc.status.code


def _wrapper_report(program, opts, installation) -> str:
    from repro.chirp.client import LocalIoLibrary
    from repro.core.classify import DEFAULT_CLASSIFIER

    sim, machine, jvm = _jvm_rig(installation)
    io = LocalIoLibrary(machine.scratch, "/scratch/job")
    image = ProgramImage("Main.class", program=program, corrupt=opts.get("corrupt", False))
    sink: list[bytes] = []
    proc = machine.processes.spawn(
        "java",
        jvm.run_wrapped(image, program, io, opts.get("heap", 32 * MB),
                        DEFAULT_CLASSIFIER, sink.append),
    )
    sim.run()
    if not sink:
        # No result file: the starter scopes this as remote-resource.
        return "no result file -> environment(remote-resource)"
    return str(ResultFile.parse(sink[0]))


# ---------------------------------------------------------------------------
# EXP-NAIVE / EXP-SCOPED -- the headline comparison
# ---------------------------------------------------------------------------

@dataclass
class NaiveVsScopedResult:
    naive: RunMetrics
    scoped: RunMetrics
    naive_violations: dict[int, int]
    scoped_violations: dict[int, int]

    def table(self) -> Table:
        table = Table(
            ["metric", "naive (§2.3)", "scoped (§4)"],
            title="EXP-NAIVE vs EXP-SCOPED: the same workload and faults",
        )
        for (name, naive_value), (_, scoped_value) in zip(
            self.naive.as_rows(), self.scoped.as_rows()
        ):
            table.add_row([name, naive_value, scoped_value])
        for principle in (1, 2, 3, 4):
            table.add_row([
                f"P{principle} violations",
                self.naive_violations.get(principle, 0),
                self.scoped_violations.get(principle, 0),
            ])
        return table


def _fault_mix(pool: Pool, jobs: list[Job]) -> FaultInjector:
    """The §2.3 gauntlet: one bad JVM, one starved machine, a home-fs
    outage window, a credential-expiry window, one corrupt image and one
    missing input."""
    injector = FaultInjector(pool)
    injector.schedule(MisconfiguredJvm("exec000"))
    injector.schedule(MemoryPressure("exec001", pool.machines["exec001"].memory_total - 10 * MB))
    injector.schedule(HomeFilesystemOffline(), at=150.0, until=450.0)
    injector.schedule(CredentialExpiry(), at=600.0, until=900.0)
    if len(jobs) >= 2:
        injector.schedule(CorruptProgramImage(jobs[0]))
        injector.schedule(MissingInputFile(jobs[1]))
    return injector


def _run_mode(mode: str, seed: int, n_jobs: int, n_machines: int):
    started = time.perf_counter()
    registry: list = []
    condor = CondorConfig(error_mode=mode, interface_registry=registry)
    pool = Pool(PoolConfig(n_machines=n_machines, seed=seed, condor=condor))
    rngs = RngRegistry(seed)
    spec = WorkloadSpec(n_jobs=n_jobs, io_fraction=0.5, exception_fraction=0.15,
                        exit_code_fraction=0.1, mean_work=8.0)
    jobs = make_workload(spec, rngs.stream("workload"), home_fs=pool.home_fs)
    # Jobs that allocate exercise the memory-pressure machine.
    for i, job in enumerate(jobs):
        if i % 3 == 0:
            job.image.program.steps.insert(0, Step.allocate(16 * MB))
    # Stagger arrivals so the job stream overlaps the fault windows, like
    # a real pool's continuous load.
    arrivals = rngs.stream("arrivals")
    when = 0.0
    for job in jobs:
        pool.submit_at(job, when)
        when += arrivals.expovariate(1.0 / 40.0)
    injector = _fault_mix(pool, jobs)
    pool.run_until_done(max_time=200_000, expected_jobs=len(jobs))
    metrics = collect_metrics(
        pool, jobs, injector, wall_clock=time.perf_counter() - started
    )
    auditor = PrincipleAuditor()
    auditor.audit_outcomes(injector.audit_outcomes(jobs))
    auditor.audit_interfaces(registry)
    auditor.audit_trace(pool.trace)
    return metrics, auditor.summary()


def run_naive_vs_scoped(seed: int = 0, n_jobs: int = 24, n_machines: int = 6) -> NaiveVsScopedResult:
    """The headline experiment: identical workload and fault schedule under
    the naive and the scoped configurations."""
    naive_metrics, naive_violations = _run_mode("naive", seed, n_jobs, n_machines)
    scoped_metrics, scoped_violations = _run_mode("scoped", seed, n_jobs, n_machines)
    return NaiveVsScopedResult(
        naive=naive_metrics,
        scoped=scoped_metrics,
        naive_violations=naive_violations,
        scoped_violations=scoped_violations,
    )


# ---------------------------------------------------------------------------
# EXP-BH -- black-hole machines (§5)
# ---------------------------------------------------------------------------

@dataclass
class BlackHoleRow:
    defense: str
    completed: int
    wasted_attempts: int
    network_bytes: int
    makespan: float
    mean_turnaround: float


@dataclass
class BlackHoleResult:
    rows: list[BlackHoleRow]

    def table(self) -> Table:
        table = Table(
            ["defense", "completed", "wasted executions", "network bytes",
             "makespan (s)", "mean turnaround (s)"],
            title="EXP-BH: black-hole machines vs the two §5 defenses",
        )
        for row in self.rows:
            table.add_row([
                row.defense, row.completed, row.wasted_attempts,
                row.network_bytes, row.makespan, row.mean_turnaround,
            ])
        return table

    def row(self, defense: str) -> BlackHoleRow:
        for r in self.rows:
            if r.defense == defense:
                return r
        raise KeyError(defense)


def run_black_hole(
    seed: int = 0,
    n_jobs: int = 16,
    n_machines: int = 6,
    n_black_holes: int = 2,
    defenses: tuple[str, ...] = ("none", "self-test", "avoidance"),
) -> BlackHoleResult:
    """§5: 'a small number of misconfigured machines attracted a continuous
    stream of jobs that would attempt to execute, fail, and be returned.'"""
    rows = []
    for defense in defenses:
        condor = CondorConfig(
            error_mode="scoped",
            startd_self_test=(defense == "self-test"),
            schedd_avoidance=(defense == "avoidance"),
        )
        pool = Pool(PoolConfig(n_machines=n_machines, seed=seed, condor=condor))
        injector = FaultInjector(pool)
        for i in range(n_black_holes):
            injector.schedule(MisconfiguredJvm(f"exec{i:03d}"))
        rngs = RngRegistry(seed)
        jobs = make_workload(
            WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0, mean_work=5.0),
            rngs.stream("bh"),
        )
        # Self-test needs the startds rebuilt with knowledge of the fault:
        # arm first, then re-run the probe.
        if defense == "self-test":
            for name, startd in pool.startds.items():
                startd.java_advertised = startd._self_test()
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=300_000)
        metrics = collect_metrics(pool, jobs, injector)
        rows.append(BlackHoleRow(
            defense=defense,
            completed=metrics.completed,
            wasted_attempts=metrics.wasted_attempts,
            network_bytes=metrics.network_bytes,
            makespan=metrics.makespan,
            mean_turnaround=metrics.mean_turnaround,
        ))
    return BlackHoleResult(rows)


# ---------------------------------------------------------------------------
# EXP-NFS -- hard vs soft mounts (§5)
# ---------------------------------------------------------------------------

@dataclass
class NfsRow:
    outage: float
    mode: str
    outcome: str
    elapsed: float
    retries: int
    timeouts: int


@dataclass
class NfsResult:
    rows: list[NfsRow]

    def table(self) -> Table:
        table = Table(
            ["outage (s)", "mount mode", "outcome", "elapsed (s)", "retries", "timeouts"],
            title="EXP-NFS: the hard/soft mount dilemma (§5)",
        )
        for row in self.rows:
            table.add_row([
                row.outage, row.mode, row.outcome, row.elapsed, row.retries, row.timeouts,
            ])
        return table


def run_nfs_mounts(
    outages: tuple[float, ...] = (5.0, 60.0, 600.0),
    soft_timeout: float = 30.0,
    deadline: float = 120.0,
) -> NfsResult:
    """A program reads through an NFS mount during an outage, under hard,
    soft, and per-operation-deadline (the paper's wished-for mechanism)."""
    from repro.sim.engine import Simulator
    from repro.sim.filesystem import FsError, LocalFileSystem, NfsClient

    rows: list[NfsRow] = []
    for outage in outages:
        for mode in ("hard", "soft", "per-op deadline"):
            sim = Simulator()
            server = LocalFileSystem("server", sim=sim)
            server.mkdir("/export")
            server.write_file("/export/data", b"payload")
            mount_mode = "soft" if mode == "soft" else "hard"
            mount = NfsClient(sim, server, mode=mount_mode,
                              soft_timeout=soft_timeout, retry_interval=1.0)
            server.set_online(False)
            sim.call_at(outage, lambda fs=server: fs.set_online(True))

            outcome: list[str] = []

            def job(sim=sim, mount=mount, mode=mode):
                try:
                    if mode == "per-op deadline":
                        yield from mount.read_file("/export/data", deadline=deadline)
                    else:
                        yield from mount.read_file("/export/data")
                    outcome.append("completed")
                except FsError as exc:
                    outcome.append(f"error {exc.code}")

            proc = sim.spawn(job())
            proc.defuse()
            sim.run(until=10 * max(outages) + 1000)
            rows.append(NfsRow(
                outage=outage,
                mode=mode,
                outcome=outcome[0] if outcome else "hung",
                elapsed=sim.now if not outcome else _first_done_time(mount, sim),
                retries=mount.stats.retries,
                timeouts=mount.stats.timeouts,
            ))
    return NfsResult(rows)


def _first_done_time(mount, sim) -> float:
    # blocked_time accumulates exactly the job's wait; rpc latency is small.
    return round(mount.stats.blocked_time, 3)


# ---------------------------------------------------------------------------
# EXP-SCOPE-TIME -- time-dependent scope (§5)
# ---------------------------------------------------------------------------

@dataclass
class TimeScopeRow:
    outage: float
    truth: str
    assigned: str
    correct: bool
    decided_after: float


@dataclass
class TimeScopeResult:
    rows: list[TimeScopeRow]
    threshold: float

    def table(self) -> Table:
        table = Table(
            ["outage (s)", "true scope", "assigned scope", "correct", "decided after (s)"],
            title=f"EXP-SCOPE-TIME: escalation threshold = {self.threshold}s",
        )
        for row in self.rows:
            table.add_row([row.outage, row.truth, row.assigned, row.correct,
                           row.decided_after])
        return table

    @property
    def accuracy(self) -> float:
        return sum(1 for r in self.rows if r.correct) / len(self.rows)


def run_time_scope(
    outages: tuple[float, ...] = (1.0, 5.0, 30.0, 120.0, 900.0, 10_000.0),
    threshold: float = 60.0,
    retry_interval: float = 5.0,
    observation_window: float = 1200.0,
) -> TimeScopeResult:
    """§5: 'time becomes a factor in error propagation.'  A client retries a
    failing service; the escalator assigns process scope to blips and
    remote-resource scope to persistent outages."""
    ladder = EscalationLadder((
        (0.0, ErrorScope.PROCESS),
        (threshold, ErrorScope.REMOTE_RESOURCE),
    ))
    rows: list[TimeScopeRow] = []
    for outage in outages:
        escalator = TimeScopeEscalator(ladder)
        truth = (
            ErrorScope.PROCESS if outage < threshold else ErrorScope.REMOTE_RESOURCE
        )
        assigned = ErrorScope.PROCESS
        decided_after = 0.0
        now = 0.0
        while now < min(outage, observation_window):
            assigned = escalator.record_failure("service", now)
            decided_after = now
            if assigned is not ErrorScope.PROCESS:
                break
            now += retry_interval
        rows.append(TimeScopeRow(
            outage=outage,
            truth=str(truth),
            assigned=str(assigned),
            correct=assigned is truth,
            decided_after=decided_after,
        ))
    return TimeScopeResult(rows, threshold)


# ---------------------------------------------------------------------------
# EXP-P1..P4 -- principle violations at scale
# ---------------------------------------------------------------------------

@dataclass
class PrinciplesResult:
    naive: dict[int, int]
    scoped: dict[int, int]
    n_jobs: int

    def table(self) -> Table:
        table = Table(
            ["principle", "naive violations", "scoped violations"],
            title=f"EXP-P1..P4: violations over {self.n_jobs} jobs",
        )
        for principle in (1, 2, 3, 4):
            table.add_row([
                f"P{principle}",
                self.naive.get(principle, 0),
                self.scoped.get(principle, 0),
            ])
        return table


def run_principles(seed: int = 0, n_jobs: int = 24, n_machines: int = 6) -> PrinciplesResult:
    """Audit both configurations for violations of all four principles."""
    _, naive = _run_mode("naive", seed, n_jobs, n_machines)
    _, scoped = _run_mode("scoped", seed, n_jobs, n_machines)
    return PrinciplesResult(naive=naive, scoped=scoped, n_jobs=n_jobs)


# ---------------------------------------------------------------------------
# EXP-RETRY -- schedd retry-budget sweep (policy ablation)
# ---------------------------------------------------------------------------

@dataclass
class RetryRow:
    max_retries: int
    completed: int
    held: int
    wasted_attempts: int
    mean_turnaround: float


@dataclass
class RetrySweepResult:
    rows: list[RetryRow]
    n_jobs: int

    def table(self) -> Table:
        table = Table(
            ["max retries", "completed", "held", "wasted attempts",
             "mean turnaround (s)"],
            title=f"EXP-RETRY: schedd retry budget vs outcome ({self.n_jobs} jobs)",
        )
        for row in self.rows:
            table.add_row([
                row.max_retries, row.completed, row.held,
                row.wasted_attempts, row.mean_turnaround,
            ])
        return table

    def row(self, max_retries: int) -> RetryRow:
        for r in self.rows:
            if r.max_retries == max_retries:
                return r
        raise KeyError(max_retries)


def run_retry_sweep(
    seed: int = 0,
    n_jobs: int = 12,
    n_machines: int = 4,
    n_broken: int = 2,
    budgets: tuple[int, ...] = (0, 1, 2, 4, 8),
) -> RetrySweepResult:
    """How many retries does the 'log and retry elsewhere' policy need?

    Half the pool is broken.  With budget 0, the first environmental
    error holds the job (the naive outcome, minus the lie); with a
    budget at least the broken-machine count, the matchmaker's rotation
    guarantees a good machine is found.  The sweep locates the knee.
    """
    rows: list[RetryRow] = []
    for budget in budgets:
        condor = CondorConfig(error_mode="scoped", max_retries=budget)
        pool = Pool(PoolConfig(n_machines=n_machines, seed=seed, condor=condor))
        injector = FaultInjector(pool)
        for i in range(n_broken):
            injector.schedule(MisconfiguredJvm(f"exec{i:03d}"))
        rngs = RngRegistry(seed)
        jobs = make_workload(
            WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0, mean_work=5.0),
            rngs.stream("retry"),
        )
        for job in jobs:
            pool.submit(job)
        pool.run_until_done(max_time=300_000)
        metrics = collect_metrics(pool, jobs, injector)
        rows.append(RetryRow(
            max_retries=budget,
            completed=metrics.completed,
            held=metrics.held,
            wasted_attempts=metrics.wasted_attempts,
            mean_turnaround=metrics.mean_turnaround,
        ))
    return RetrySweepResult(rows, n_jobs)


# ---------------------------------------------------------------------------
# EXP-FAIR -- matchmaker fair share (substrate ablation)
# ---------------------------------------------------------------------------

@dataclass
class FairShareRow:
    fair_share: bool
    flood_user_mean_turnaround: float
    small_user_mean_turnaround: float
    small_user_done_at: float


@dataclass
class FairShareResult:
    rows: list[FairShareRow]

    def table(self) -> Table:
        table = Table(
            ["fair share", "flood user mean turnaround (s)",
             "small user mean turnaround (s)", "small user done at (s)"],
            title="EXP-FAIR: matchmaker fair share, flood vs trickle",
        )
        for row in self.rows:
            table.add_row([
                row.fair_share, row.flood_user_mean_turnaround,
                row.small_user_mean_turnaround, row.small_user_done_at,
            ])
        return table

    def row(self, fair_share: bool) -> FairShareRow:
        for r in self.rows:
            if r.fair_share == fair_share:
                return r
        raise KeyError(fair_share)


def run_fair_share(
    seed: int = 0,
    flood_jobs: int = 8,
    small_jobs: int = 2,
    work: float = 20.0,
    small_arrives_at: float = 100.0,
) -> FairShareResult:
    """One machine, one flooding user, one late small user: does the small
    user wait behind the whole flood?  (Negotiator ablation.)"""
    rows: list[FairShareRow] = []
    for fair_share in (True, False):
        condor = CondorConfig(error_mode="scoped", fair_share=fair_share)
        pool = Pool(PoolConfig(n_machines=1, seed=seed, condor=condor))
        flood = []
        for i in range(flood_jobs):
            program = JavaProgram(steps=[Step.compute(work)])
            job = Job(f"1.{i}", owner="flooder", universe=Universe.JAVA,
                      image=ProgramImage(f"f{i}.class", program=program))
            flood.append(job)
            pool.submit(job)
        second = pool.add_schedd("submit2")
        small = []
        for i in range(small_jobs):
            program = JavaProgram(steps=[Step.compute(work)])
            job = Job(f"2.{i}", owner="trickler", universe=Universe.JAVA,
                      image=ProgramImage(f"s{i}.class", program=program))
            small.append(job)
            pool.sim.call_at(small_arrives_at, lambda j=job: second.submit(j))
        pool.run_until_done(max_time=500_000, expected_jobs=flood_jobs + small_jobs)

        def turnaround(jobs, submitted_at=0.0):
            return sum(
                j.attempts[-1].ended - max(j.submitted_at, submitted_at)
                for j in jobs
            ) / len(jobs)

        rows.append(FairShareRow(
            fair_share=fair_share,
            flood_user_mean_turnaround=turnaround(flood),
            small_user_mean_turnaround=turnaround(small),
            small_user_done_at=max(j.attempts[-1].ended for j in small),
        ))
    return FairShareResult(rows)


# ---------------------------------------------------------------------------
# EXP-PREEMPT -- rank preemption x checkpointing (substrate ablation)
# ---------------------------------------------------------------------------

@dataclass
class PreemptRow:
    configuration: str
    boss_turnaround: float
    peon_turnaround: float
    peon_steps_executed: int
    evictions: int


@dataclass
class PreemptResult:
    rows: list[PreemptRow]

    def table(self) -> Table:
        table = Table(
            ["configuration", "boss turnaround (s)", "peon turnaround (s)",
             "peon steps executed", "evictions"],
            title="EXP-PREEMPT: rank preemption x checkpointing",
        )
        for row in self.rows:
            table.add_row([
                row.configuration, row.boss_turnaround, row.peon_turnaround,
                row.peon_steps_executed, row.evictions,
            ])
        return table

    def row(self, configuration: str) -> PreemptRow:
        for r in self.rows:
            if r.configuration == configuration:
                return r
        raise KeyError(configuration)


def run_preemption(
    seed: int = 0,
    peon_steps: int = 40,
    step_work: float = 10.0,
    boss_work: float = 30.0,
    boss_arrives_at: float = 120.0,
) -> PreemptResult:
    """One prized machine whose owner ranks the boss's jobs above all:
    does the boss wait, and what does preemption cost the peon?"""
    from repro.sim.machine import OwnerPolicy

    configurations = [
        ("no preemption", False, True),
        ("preemption + checkpointing", True, True),
        ("preemption, no checkpointing", True, False),
    ]
    rows: list[PreemptRow] = []
    for name, preemption, checkpointing in configurations:
        condor = CondorConfig(error_mode="scoped", preemption=preemption,
                              checkpointing=checkpointing)
        pool = Pool(PoolConfig(n_machines=0, seed=seed, condor=condor))
        pool.add_machine(
            "prized",
            policy=OwnerPolicy(rank_expr='ifThenElse(TARGET.owner == "boss", 10, 1)'),
            memory=1024 * MB,
        )
        peon = Job("1.0", owner="peon", universe=Universe.STANDARD,
                   image=ProgramImage("peon.bin", program=JavaProgram(
                       steps=[Step.compute(step_work) for _ in range(peon_steps)])))
        pool.submit(peon)
        boss = Job("2.0", owner="boss", universe=Universe.JAVA,
                   image=ProgramImage("boss.class", program=JavaProgram(
                       steps=[Step.compute(boss_work)])))
        pool.sim.call_at(boss_arrives_at, lambda: pool.submit(boss))
        pool.run_until_done(max_time=1_000_000, expected_jobs=2)
        rows.append(PreemptRow(
            configuration=name,
            boss_turnaround=boss.attempts[-1].ended - boss_arrives_at,
            peon_turnaround=peon.attempts[-1].ended,
            peon_steps_executed=peon.steps_executed,
            evictions=sum(1 for a in peon.attempts
                          if a.error_name.startswith("Evicted")),
        ))
    return PreemptResult(rows)


# ---------------------------------------------------------------------------
# EXP-E2E -- implicit errors and the layer above Condor (§5)
# ---------------------------------------------------------------------------

@dataclass
class EndToEndRow:
    configuration: str
    jobs: int
    corruptions_in_flight: int
    wrong_outputs_delivered: int
    implicit_errors_caught: int
    resubmits: int
    final_valid_outputs: int


@dataclass
class EndToEndResult:
    rows: list[EndToEndRow]

    def table(self) -> Table:
        table = Table(
            ["configuration", "jobs", "corruptions in flight",
             "wrong outputs delivered", "implicit errors caught",
             "resubmits", "final valid outputs"],
            title="EXP-E2E: implicit errors vs the end-to-end layer (§5)",
        )
        for row in self.rows:
            table.add_row([
                row.configuration, row.jobs, row.corruptions_in_flight,
                row.wrong_outputs_delivered, row.implicit_errors_caught,
                row.resubmits, row.final_valid_outputs,
            ])
        return table

    def row(self, configuration: str) -> EndToEndRow:
        for r in self.rows:
            if r.configuration == configuration:
                return r
        raise KeyError(configuration)


def _e2e_workload(pool: Pool, n_jobs: int):
    """Transform jobs: read an input, write its reversal back home."""
    from repro.e2e import JobValidation, OutputExpectation
    from repro.jvm.program import transform_bytes

    jobs, validations = [], []
    for i in range(n_jobs):
        src = f"/home/user/e2e-in{i:03d}.dat"
        dst = f"/home/user/e2e-out{i:03d}.dat"
        payload = bytes((i + j) % 251 for j in range(256))
        pool.home_fs.write_file(src, payload)
        program = JavaProgram(steps=[Step.transform(src, dst)])
        job = Job(f"1.{i}", owner="thain", universe=Universe.JAVA,
                  image=ProgramImage(f"t{i}.class", program=program))
        job.expected_result = ResultFile.completed(0)
        jobs.append(job)
        validations.append(JobValidation(
            expectations=[OutputExpectation(dst, transform_bytes(payload))],
            expected_result=ResultFile.completed(0),
        ))
    return jobs, validations


def run_end_to_end(
    seed: int = 0,
    n_jobs: int = 12,
    n_machines: int = 4,
    corruption_probability: float = 0.25,
    max_resubmits: int = 4,
) -> EndToEndResult:
    """§5: implicit errors pass every layer below the application; only a
    process above Condor, checking outputs, can catch and retry them."""
    from repro.e2e import EndToEndManager
    from repro.faults.faults import SilentDataCorruption

    rows: list[EndToEndRow] = []
    for configuration in ("no end-to-end layer", "end-to-end layer"):
        pool = Pool(PoolConfig(n_machines=n_machines, seed=seed))
        injector = FaultInjector(pool)
        injector.schedule(SilentDataCorruption(corruption_probability))
        jobs, validations = _e2e_workload(pool, n_jobs)
        manager = EndToEndManager(pool, max_resubmits=max_resubmits)
        if configuration == "end-to-end layer":
            for job, validation in zip(jobs, validations):
                manager.submit(job, validation)
            manager.run()
        else:
            for job in jobs:
                pool.submit(job)
            pool.run_until_done(max_time=200_000)
        # Ground truth: check every lineage's final output ourselves.
        wrong = 0
        valid = 0
        for job, validation in zip(jobs, validations):
            problems = validation.validate(
                _final_submission(manager, job, configuration), pool.home_fs
            )
            if problems:
                wrong += 1
            else:
                valid += 1
        summary = manager.summary() if configuration == "end-to-end layer" else {
            "resubmits": 0, "implicit_errors_caught": 0,
        }
        rows.append(EndToEndRow(
            configuration=configuration,
            jobs=n_jobs,
            corruptions_in_flight=pool.net.corruptions,
            wrong_outputs_delivered=wrong,
            implicit_errors_caught=summary["implicit_errors_caught"],
            resubmits=summary["resubmits"],
            final_valid_outputs=valid,
        ))
    return EndToEndResult(rows)


def _final_submission(manager, job, configuration):
    if configuration != "end-to-end layer":
        return job
    for lineage in manager.lineages:
        if lineage.base is job:
            return lineage.accepted or lineage.submissions[-1]
    return job


# ---------------------------------------------------------------------------
# EXP-CHURN -- backoff avoidance vs a healing black hole, under churn (§5)
# ---------------------------------------------------------------------------

@dataclass
class ChurnRow:
    avoidance: str
    completed: int
    wasted_attempts: int
    makespan: float
    goodput_rate: float
    churn_leaves: int
    churn_joins: int
    attempts_on_healed_site: int

    @property
    def readmitted(self) -> bool:
        """Did the schedd use the site again after it was repaired?"""
        return self.attempts_on_healed_site > 0


@dataclass
class ChurnResult:
    rows: list[ChurnRow]
    heal_at: float

    def table(self) -> Table:
        table = Table(
            ["avoidance", "completed", "wasted executions", "makespan (s)",
             "goodput rate", "churn leaves/joins", "attempts on healed site",
             "re-admitted"],
            title=f"EXP-CHURN: avoidance modes vs a black hole healed at "
                  f"t={self.heal_at:g}, under machine churn",
        )
        for row in self.rows:
            table.add_row([
                row.avoidance, row.completed, row.wasted_attempts,
                round(row.makespan, 1), round(row.goodput_rate, 4),
                f"{row.churn_leaves}/{row.churn_joins}",
                row.attempts_on_healed_site, row.readmitted,
            ])
        return table

    def row(self, avoidance: str) -> ChurnRow:
        for r in self.rows:
            if r.avoidance == avoidance:
                return r
        raise KeyError(avoidance)


def run_churn(
    seed: int = 0,
    n_jobs: int = 24,
    n_machines: int = 4,
    heal_at: float = 200.0,
    mean_interval: float = 150.0,
    mean_downtime: float = 60.0,
) -> ChurnResult:
    """§5 under churn: exec000 is a black hole that gets *repaired* at
    ``heal_at``, while the other machines leave and rejoin the pool.

    The permanent blacklist (the original §5 defense) never forgives the
    repaired site, so it finishes the workload one machine short; backoff
    avoidance re-admits it on probation and recovers the capacity.  The
    `none` row shows the undefended cost: every probe of the (still
    broken) black hole is a wasted execution.
    """
    from repro.condor.grid import ChurnGenerator
    from repro.faults import BlackHole

    modes = (
        ("none", dict(schedd_avoidance=False)),
        ("permanent", dict(schedd_avoidance=True, avoidance_mode="permanent")),
        ("backoff", dict(schedd_avoidance=True, avoidance_mode="backoff")),
    )
    rows: list[ChurnRow] = []
    for name, knobs in modes:
        condor = CondorConfig(
            error_mode="scoped",
            avoidance_base=60.0,
            avoidance_cap=480.0,
            **knobs,
        )
        pool = Pool(PoolConfig(n_machines=n_machines, seed=seed, condor=condor))
        injector = FaultInjector(pool)
        injector.schedule(BlackHole("exec000"), at=0.0, until=heal_at)
        # Churn everything except the black hole: removing it would wipe
        # the avoidance record under test.
        churn = ChurnGenerator(
            pool,
            pool.rngs.stream("churn"),
            machines=tuple(
                m for m in sorted(pool.machines) if m != "exec000"
            ),
            mean_interval=mean_interval,
            mean_downtime=mean_downtime,
            graceful_fraction=0.5,
            min_alive=2,
        )
        rngs = RngRegistry(seed)
        jobs = make_workload(
            WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0, mean_work=60.0),
            rngs.stream("churn-workload"),
        )
        arrivals = rngs.stream("churn-arrivals")
        when = 0.0
        for job in jobs:
            pool.submit_at(job, when)
            when += arrivals.expovariate(1.0 / 8.0)
        pool.run_until_done(max_time=500_000, expected_jobs=len(jobs))
        metrics = collect_metrics(pool, jobs, injector)
        healed_attempts = sum(
            1
            for job in jobs
            for attempt in job.attempts
            if attempt.site == "exec000" and attempt.started >= heal_at
        )
        rows.append(ChurnRow(
            avoidance=name,
            completed=metrics.completed,
            wasted_attempts=metrics.wasted_attempts,
            makespan=metrics.makespan,
            goodput_rate=(
                metrics.goodput_seconds / metrics.makespan
                if metrics.makespan else 0.0
            ),
            churn_leaves=churn.leaves,
            churn_joins=churn.joins,
            attempts_on_healed_site=healed_attempts,
        ))
    return ChurnResult(rows, heal_at=heal_at)


# ---------------------------------------------------------------------------
# EXP-FLOCK -- flocking across pools (the grid above the pool)
# ---------------------------------------------------------------------------

@dataclass
class FlockRow:
    configuration: str
    completed: int
    jobs_flocked: int
    remote_completions: int
    flock_links_down: int
    makespan: float
    mean_turnaround: float


@dataclass
class FlockResult:
    rows: list[FlockRow]

    def table(self) -> Table:
        table = Table(
            ["configuration", "completed", "jobs flocked", "remote completions",
             "flock links down", "makespan (s)", "mean turnaround (s)"],
            title="EXP-FLOCK: overflow to a remote pool, and a flock link outage",
        )
        for row in self.rows:
            table.add_row([
                row.configuration, row.completed, row.jobs_flocked,
                row.remote_completions, row.flock_links_down,
                round(row.makespan, 1), round(row.mean_turnaround, 1),
            ])
        return table

    def row(self, configuration: str) -> FlockRow:
        for r in self.rows:
            if r.configuration == configuration:
                return r
        raise KeyError(configuration)


def run_flocking(
    seed: int = 0,
    n_jobs: int = 16,
    home_machines: int = 2,
    remote_machines: int = 4,
    link_down_until: float = 200.0,
) -> FlockResult:
    """A saturated home pool next to an idle remote pool, three ways:
    no flocking (the home pool grinds alone), flocking (idle jobs
    overflow), and flocking through a link outage (the schedd's
    exponential backoff rides it out, then overflow resumes)."""
    from repro.condor.grid import Grid, GridConfig, GridPoolSpec
    from repro.faults import FlockLinkDown

    configurations = (
        ("no flocking", False, False),
        ("flocking", True, False),
        ("flocking + link outage", True, True),
    )
    rows: list[FlockRow] = []
    for name, flocking, outage in configurations:
        condor = CondorConfig(error_mode="scoped", flock_after=30.0)
        grid = Grid(GridConfig(
            pools=(
                GridPoolSpec("a", n_machines=home_machines),
                GridPoolSpec("b", n_machines=remote_machines),
            ),
            seed=seed,
            condor=condor,
            flocking=flocking,
        ))
        injector = FaultInjector(grid)
        if outage:
            injector.schedule(FlockLinkDown(), at=0.0, until=link_down_until)
        rngs = RngRegistry(seed)
        jobs = make_workload(
            WorkloadSpec(n_jobs=n_jobs, io_fraction=0.0, exception_fraction=0.0,
                         exit_code_fraction=0.0, mean_work=60.0),
            rngs.stream("flock"),
        )
        for job in jobs:
            grid.submit(job)
        grid.run_until_done(max_time=500_000, expected_jobs=len(jobs))
        metrics = collect_metrics(grid, jobs, injector)
        remote = sum(
            1 for job in jobs
            if job.state is JobState.COMPLETED
            and job.attempts
            and job.attempts[-1].site.startswith("b-")
        )
        links_down = sum(link.times_down for link in grid.schedd.flock_links)
        rows.append(FlockRow(
            configuration=name,
            completed=metrics.completed,
            jobs_flocked=grid.schedd.jobs_flocked,
            remote_completions=remote,
            flock_links_down=links_down,
            makespan=metrics.makespan,
            mean_turnaround=metrics.mean_turnaround,
        ))
    return FlockResult(rows)


# ---------------------------------------------------------------------------
# EXP-CKPT -- checkpointing ablation (§2.1's Standard Universe)
# ---------------------------------------------------------------------------

@dataclass
class CheckpointRow:
    checkpointing: bool
    completed: int
    total_steps_needed: int
    steps_executed: int
    reexecuted_steps: int
    makespan: float


@dataclass
class CheckpointResult:
    rows: list[CheckpointRow]

    def table(self) -> Table:
        table = Table(
            ["checkpointing", "completed", "steps needed", "steps executed",
             "re-executed (waste)", "makespan (s)"],
            title="EXP-CKPT: Standard Universe checkpointing under evictions",
        )
        for row in self.rows:
            table.add_row([
                row.checkpointing, row.completed, row.total_steps_needed,
                row.steps_executed, row.reexecuted_steps, row.makespan,
            ])
        return table

    def row(self, checkpointing: bool) -> CheckpointRow:
        for r in self.rows:
            if r.checkpointing == checkpointing:
                return r
        raise KeyError(checkpointing)


def run_checkpoint_ablation(
    seed: int = 0,
    n_jobs: int = 6,
    n_machines: int = 3,
    n_steps: int = 30,
    step_work: float = 5.0,
    eviction_times: tuple[float, ...] = (80.0, 300.0),
    eviction_duration: float = 60.0,
) -> CheckpointResult:
    """Ablate §2.1's transparent checkpointing: the same eviction storm
    with and without it, measuring re-executed work."""
    from repro.faults import OwnerActivity

    rows: list[CheckpointRow] = []
    for checkpointing in (True, False):
        condor = CondorConfig(error_mode="scoped", checkpointing=checkpointing)
        pool = Pool(PoolConfig(n_machines=n_machines, seed=seed, condor=condor))
        injector = FaultInjector(pool)
        for at in eviction_times:
            for m in range(n_machines):
                injector.schedule(
                    OwnerActivity(f"exec{m:03d}"), at=at, until=at + eviction_duration
                )
        jobs = []
        for i in range(n_jobs):
            program = JavaProgram(steps=[Step.compute(step_work) for _ in range(n_steps)])
            job = Job(f"1.{i}", owner="thain", universe=Universe.STANDARD,
                      image=ProgramImage(f"s{i}.bin", program=program))
            jobs.append(job)
            pool.submit(job)
        pool.run_until_done(max_time=500_000)
        executed = sum(j.steps_executed for j in jobs)
        needed = n_jobs * n_steps
        rows.append(CheckpointRow(
            checkpointing=checkpointing,
            completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
            total_steps_needed=needed,
            steps_executed=executed,
            reexecuted_steps=max(0, executed - needed),
            makespan=pool.sim.now,
        ))
    return CheckpointResult(rows)
