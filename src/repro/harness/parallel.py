"""Process-parallel fan-out with a deterministic, seed-ordered merge.

The determinism contract (DESIGN.md §6) makes per-seed experiment runs
independent: every stream of randomness is derived from the seed alone
(:mod:`repro.sim.rng`), so ``run(seed)`` touches no state shared with
``run(other_seed)``.  That independence is what makes fan-out safe: this
module shards a seed list across a :class:`~concurrent.futures.ProcessPoolExecutor`,
runs each shard in its own worker process, and merges the per-seed rows
back **in canonical seed order**, so parallel output is bit-identical to
serial output.

Worker failure policy follows the paper's P1/P2 ("a program must not
generate an implicit error as a result of receiving an explicit error"):
a worker that crashes, hangs past its per-seed budget, or raises, always
surfaces as an explicit :class:`WorkerFailure` naming the seeds it was
responsible for -- never as a silently shorter sample array.  When the
pool itself cannot start (no forking allowed, function not picklable),
the runner falls back to a plain serial loop, which is always correct.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import pickle
import time
from collections.abc import Callable, Sequence
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

__all__ = [
    "ItemResult",
    "ParallelRunner",
    "WorkerFailure",
    "positive_worker_count",
    "shard_items",
]


def positive_worker_count(text: str) -> int:
    """Argparse type for ``--jobs``/``--workers``: an integer >= 1.

    Shared by every CLI that fans work over :class:`ParallelRunner`, so
    ``--jobs 0``, negatives, and non-integers all fail at argument
    parsing with one clear message instead of falling through to a
    confusing executor failure later.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid worker count {text!r}: must be an integer >= 1"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"invalid worker count {value}: must be >= 1 (use 1 for serial)"
        )
    return value


class WorkerFailure(RuntimeError):
    """A worker crashed, hung, or raised: explicit, never silent (P1/P2).

    ``items`` names exactly the work the failed worker was responsible
    for (for seed replication, the seeds), so the caller knows which
    samples are missing rather than receiving a shorter array.
    """

    def __init__(self, message: str, items: Sequence[Any] = (), cause: str = ""):
        super().__init__(message)
        self.items = tuple(items)
        self.cause = cause

    @property
    def seeds(self) -> tuple:
        """Alias for ``items`` when the work units are seeds."""
        return self.items

    def __reduce__(self):
        # Exceptions pickle by re-calling __init__ with .args; carry the
        # extra attributes across the process boundary explicitly.
        return (type(self), (self.args[0] if self.args else "", self.items, self.cause))


@dataclass(frozen=True)
class ItemResult:
    """One work unit's outcome: the item, its value, and its wall clock."""

    item: Any
    value: Any
    seconds: float


def shard_items(items: Sequence[Any], n_shards: int) -> list[list[Any]]:
    """Split *items* into at most *n_shards* contiguous, balanced shards.

    Contiguity keeps the merge trivially order-preserving and keeps
    neighbouring seeds (often similar cost) spread across workers.
    """
    items = list(items)
    n_shards = max(1, min(int(n_shards), len(items)))
    base, extra = divmod(len(items), n_shards)
    shards, start = [], 0
    for i in range(n_shards):
        size = base + (1 if i < extra else 0)
        shards.append(items[start:start + size])
        start += size
    return shards


def _run_shard(fn: Callable[[Any], Any], items: list[Any]) -> list[tuple[Any, Any, float]]:
    """Worker-side loop: run *fn* over *items*, timing each call.

    A failure inside *fn* is converted here, in the worker, into a
    :class:`WorkerFailure` naming the precise item -- the parent then
    re-raises it as-is instead of guessing which item of the shard died.
    """
    out = []
    for item in items:
        started = time.perf_counter()
        try:
            value = fn(item)
        except Exception as exc:
            raise WorkerFailure(
                f"worker failed on {item!r}: {exc!r}", [item], cause=repr(exc)
            ) from exc
        out.append((item, value, time.perf_counter() - started))
    return out


class ParallelRunner:
    """Fan ``fn(item)`` calls out over processes; merge in canonical order.

    Parameters
    ----------
    fn:
        A picklable callable of one argument (typically ``run(seed)``).
        Non-picklable callables silently take the serial path.
    workers:
        Process count; ``None`` means ``os.cpu_count()``.  ``workers <= 1``
        runs serially (no pool, no overhead).
    timeout:
        Optional per-item wall-clock budget in seconds.  A shard gets
        ``timeout * len(shard)``; exceeding it raises :class:`WorkerFailure`
        naming the shard's items.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        workers: int | None = None,
        timeout: float | None = None,
    ):
        self.fn = fn
        self.workers = (os.cpu_count() or 1) if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.timeout = timeout
        #: Used as a context manager, the runner keeps one process pool
        #: alive across ``map`` calls -- batched drivers (the fuzzer's
        #: batch loop) would otherwise pay pool start-up per batch.
        self._persistent = False
        self._executor: concurrent.futures.ProcessPoolExecutor | None = None

    # -- persistent-pool session ----------------------------------------
    def __enter__(self) -> ParallelRunner:
        self._persistent = True
        return self

    def __exit__(self, *exc_info) -> None:
        self._persistent = False
        self._discard_executor(wait=True)

    def _discard_executor(self, wait: bool) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=not wait)
            self._executor = None

    # -- public ----------------------------------------------------------
    def map(self, items: Sequence[Any]) -> list[ItemResult]:
        """Run ``fn`` over *items*; results come back in *items* order."""
        items = list(items)
        if not items:
            return []
        if self.workers <= 1 or len(items) == 1 or not self._can_fan_out():
            return self._serial(items)
        return self._parallel(items)

    # -- serial path -----------------------------------------------------
    def _serial(self, items: list[Any]) -> list[ItemResult]:
        return [
            ItemResult(item, value, seconds)
            for item, value, seconds in _run_shard(self.fn, items)
        ]

    # -- parallel path ---------------------------------------------------
    def _can_fan_out(self) -> bool:
        """The pool needs a picklable callable; fall back serial otherwise."""
        try:
            pickle.dumps(self.fn)
        except Exception:
            return False
        return True

    def _parallel(self, items: list[Any]) -> list[ItemResult]:
        shards = shard_items(items, self.workers)
        try:
            if self._persistent:
                if self._executor is None:
                    self._executor = concurrent.futures.ProcessPoolExecutor(
                        max_workers=self.workers
                    )
                executor = self._executor
            else:
                executor = concurrent.futures.ProcessPoolExecutor(
                    max_workers=len(shards)
                )
        except (OSError, ValueError, RuntimeError):
            # The pool cannot start (fork refused, resource limits):
            # serial is always a correct answer.
            return self._serial(items)
        collected: dict[Any, tuple[Any, float]] = {}
        try:
            futures = [(executor.submit(_run_shard, self.fn, shard), shard) for shard in shards]
            for future, shard in futures:
                budget = None if self.timeout is None else self.timeout * len(shard)
                try:
                    rows = future.result(timeout=budget)
                except WorkerFailure:
                    raise
                except concurrent.futures.TimeoutError:
                    raise WorkerFailure(
                        f"worker exceeded its {self.timeout}s/seed budget "
                        f"while running {shard!r}",
                        shard,
                        cause="timeout",
                    ) from None
                except BrokenProcessPool as exc:
                    raise WorkerFailure(
                        f"worker process died while running {shard!r}", shard,
                        cause=repr(exc),
                    ) from exc
                for item, value, seconds in rows:
                    collected[item] = (value, seconds)
        except WorkerFailure:
            # Do not block on still-running siblings of a failed worker;
            # a persistent pool is discarded too (it may be broken).
            if self._persistent:
                self._discard_executor(wait=False)
            else:
                executor.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            if not self._persistent:
                executor.shutdown(wait=True)
        # Canonical-order merge; any hole is an explicit error, never a
        # silently shorter result list.
        missing = [item for item in items if item not in collected]
        if missing:
            raise WorkerFailure(
                f"workers returned no result for {missing!r}", missing,
                cause="missing results",
            )
        return [ItemResult(item, *collected[item]) for item in items]
