"""Workloads, metrics, and the per-figure experiment runners.

- :mod:`repro.harness.workloads` -- job-stream generators with known
  expected results (the auditor's ground truth);
- :mod:`repro.harness.metrics` -- the quantities the paper's narrative
  claims are about: user-visible incidental errors, postmortems, wasted
  executions, goodput;
- :mod:`repro.harness.report` -- ASCII tables for benches and
  EXPERIMENTS.md;
- :mod:`repro.harness.replicate` -- seed replication (serial or
  process-parallel with a deterministic seed-order merge);
- :mod:`repro.harness.parallel` -- the process fan-out machinery and its
  explicit worker-failure policy;
- :mod:`repro.harness.experiments` -- one named runner per paper figure
  and claim (see DESIGN.md §4 for the index).
"""

from repro.harness.metrics import RunMetrics, collect_metrics
from repro.harness.parallel import ParallelRunner, WorkerFailure
from repro.harness.replicate import Replication, replicate
from repro.harness.report import Table
from repro.harness.workloads import WorkloadSpec, expected_result_for, make_workload

__all__ = [
    "ParallelRunner",
    "Replication",
    "RunMetrics",
    "Table",
    "WorkerFailure",
    "WorkloadSpec",
    "collect_metrics",
    "expected_result_for",
    "make_workload",
    "replicate",
]
