"""Command-line runner for the experiments: ``python -m repro.harness``.

Examples::

    python -m repro.harness --list
    python -m repro.harness fig4
    python -m repro.harness naive_vs_scoped --seed 3
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import experiments as E

#: name -> (callable accepting seed kwarg?, takes_seed)
EXPERIMENTS: dict[str, tuple] = {
    "fig1": (E.run_fig1_kernel, True),
    "fig2": (E.run_fig2_java_universe, True),
    "fig3": (E.run_fig3_scopes, True),
    "fig4": (E.run_fig4_result_codes, False),
    "naive_vs_scoped": (E.run_naive_vs_scoped, True),
    "black_hole": (E.run_black_hole, True),
    "nfs_mounts": (E.run_nfs_mounts, False),
    "time_scope": (E.run_time_scope, False),
    "principles": (E.run_principles, True),
    "end_to_end": (E.run_end_to_end, True),
    "checkpointing": (E.run_checkpoint_ablation, True),
    "fair_share": (E.run_fair_share, True),
    "preemption": (E.run_preemption, True),
    "retry_sweep": (E.run_retry_sweep, True),
}


def run_experiment(name: str, seed: int = 0) -> str:
    """Run one named experiment and return its rendered table."""
    try:
        fn, takes_seed = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; try one of: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    result = fn(seed=seed) if takes_seed else fn()
    return result.table().render()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment name, or 'all'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--list", action="store_true", help="list experiments")
    args = parser.parse_args(argv)
    if args.list or not args.experiment:
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(run_experiment(name, seed=args.seed))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
