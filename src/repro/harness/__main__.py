"""Command-line runner for the experiments: ``python -m repro.harness``.

Examples::

    python -m repro.harness --list
    python -m repro.harness fig4
    python -m repro.harness campaign --mode classic --jobs 4
    python -m repro.harness naive_vs_scoped --seed 3
    python -m repro.harness all
    python -m repro.harness all --jobs 4          # fan out over processes
    python -m repro.harness fig1 fig3 --jobs 2
    python -m repro.harness fig3 --trace t.jsonl --metrics m.json
    python -m repro.harness naive_vs_scoped --json results.json

With ``--jobs N`` the named experiments run concurrently in worker
processes; tables are still printed in stable (sorted) name order, so
the output is byte-identical to a serial run apart from the wall-clock
footers.  A crashed or hung worker surfaces as an explicit error naming
the experiment (P1/P2), never as silently missing output.

``--trace`` / ``--metrics`` / ``--profile`` attach a
:class:`repro.obs.ObservationSession` for the run and write a JSONL
event+span trace, a JSON metrics snapshot, and a grid-profiler report
(sim-time attribution, critical path, folded stacks); ``--json`` writes
the experiments' result dataclasses as JSON.  All exports strip
wall-clock fields, so same-seed runs produce byte-identical files
(DESIGN.md §6).  Telemetry requires in-process execution, so the
telemetry flags reject ``--jobs > 1`` with an error naming the exact
conflict.
"""

from __future__ import annotations

import argparse
import functools
import sys
import time

from repro.harness import experiments as E
from repro.harness.parallel import ParallelRunner, WorkerFailure, positive_worker_count
from repro.obs.export import ObservationSession, dump_json, to_jsonable
from repro.obs.profile import render_profile

#: name -> (callable accepting seed kwarg?, takes_seed)
EXPERIMENTS: dict[str, tuple] = {
    "fig1": (E.run_fig1_kernel, True),
    "fig2": (E.run_fig2_java_universe, True),
    "fig3": (E.run_fig3_scopes, True),
    "fig4": (E.run_fig4_result_codes, False),
    "naive_vs_scoped": (E.run_naive_vs_scoped, True),
    "black_hole": (E.run_black_hole, True),
    "nfs_mounts": (E.run_nfs_mounts, False),
    "time_scope": (E.run_time_scope, False),
    "principles": (E.run_principles, True),
    "end_to_end": (E.run_end_to_end, True),
    "checkpointing": (E.run_checkpoint_ablation, True),
    "fair_share": (E.run_fair_share, True),
    "preemption": (E.run_preemption, True),
    "retry_sweep": (E.run_retry_sweep, True),
    "churn": (E.run_churn, True),
    "flocking": (E.run_flocking, True),
}


def run_experiment_record(name: str, seed: int = 0) -> dict:
    """Run one named experiment; return its rendered table and JSON data.

    The record is ``{"name", "rendered", "data"}`` with *data* the
    result dataclass converted to JSON types, wall-clock fields stripped
    (they reach the user only through the table footer).
    """
    try:
        fn, takes_seed = EXPERIMENTS[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; try one of: {', '.join(sorted(EXPERIMENTS))}"
        ) from None
    started = time.perf_counter()
    result = fn(seed=seed) if takes_seed else fn()
    table = result.table()
    table.add_footer(f"wall clock {time.perf_counter() - started:.3f}s")
    return {"name": name, "rendered": table.render(), "data": to_jsonable(result)}


def run_experiment(name: str, seed: int = 0) -> str:
    """Run one named experiment and return its rendered table."""
    return run_experiment_record(name, seed=seed)["rendered"]


def run_experiments(names: list[str], seed: int = 0, jobs: int = 1) -> list[dict]:
    """Run *names* (serially or over *jobs* workers); records in input order."""
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {name!r}; "
                f"try one of: {', '.join(sorted(EXPERIMENTS))}"
            )
    # Reference the canonical module so the partial pickles by a stable
    # qualified name even when this file is executing as ``__main__``.
    from repro.harness import __main__ as canonical

    runner = ParallelRunner(
        functools.partial(canonical.run_experiment_record, seed=seed), workers=jobs
    )
    try:
        return [outcome.value for outcome in runner.map(names)]
    except WorkerFailure as exc:
        raise SystemExit(f"experiment worker failed: {exc}") from exc


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "campaign":
        # The fault-campaign engine has its own argument surface; hand
        # the rest of the command line straight to it.
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "serve":
        # Likewise the grid-as-a-service edge: ``python -m repro.harness
        # serve ...`` is ``python -m repro.service serve ...``.
        from repro.service.__main__ import main as service_main

        return service_main(argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Run the paper-reproduction experiments.",
    )
    parser.add_argument("experiment", nargs="*",
                        help="experiment name(s), or 'all'")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=positive_worker_count, default=1, metavar="N",
                        help="run experiments over N worker processes "
                             "(output order stays stable)")
    parser.add_argument("--list", action="store_true", help="list experiments")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a JSONL telemetry trace (events + spans)")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write a JSON metrics snapshot")
    parser.add_argument("--profile", metavar="PATH", default=None,
                        help="write a grid-profiler report (sim-time "
                             "attribution, critical path, folded stacks) "
                             "and print a 'where time went' summary")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the experiment results as JSON")
    parser.add_argument("--results-db", metavar="PATH", default=None,
                        help="ingest the run (and any --trace/--metrics/"
                             "--profile exports) into this results store")
    args = parser.parse_args(argv)
    if args.list or not args.experiment:
        print("experiments:")
        for name in sorted(EXPERIMENTS):
            print(f"  {name}")
        print("subcommands:")
        print("  campaign  (fault-campaign engine; 'campaign --help' for flags)")
        return 0
    telemetry_flags = [
        flag
        for flag, value in (
            ("--trace", args.trace),
            ("--metrics", args.metrics),
            ("--profile", args.profile),
        )
        if value
    ]
    if telemetry_flags and args.jobs > 1:
        parser.error(
            f"{'/'.join(telemetry_flags)} cannot be combined with "
            f"--jobs {args.jobs}: telemetry is collected in-process, so "
            f"these flags require --jobs 1 (drop "
            f"{'/'.join(telemetry_flags)} or --jobs {args.jobs})"
        )
    names = sorted(EXPERIMENTS) if args.experiment == ["all"] else args.experiment
    if telemetry_flags:
        session = ObservationSession(
            trace_path=args.trace,
            metrics_path=args.metrics,
            profile_path=args.profile,
        )
        with session:
            records = run_experiments(names, seed=args.seed, jobs=args.jobs)
    else:
        session = None
        records = run_experiments(names, seed=args.seed, jobs=args.jobs)
    for record in records:
        print(record["rendered"])
        print()
    if session is not None and session.profiling:
        print(render_profile(session.profile_report()))
        print()
    payload = {
        "seed": args.seed,
        "experiments": {r["name"]: r["data"] for r in records},
    }
    if args.json:
        dump_json(args.json, payload)
    if args.results_db:
        from repro.obs.store import ResultsStore, default_commit

        store = ResultsStore(args.results_db)
        try:
            commit = default_commit()
            run_id = store.ingest_obj(
                payload, source=f"harness:{','.join(names)}", commit=commit
            )
            print(f"ingested harness run -> run {run_id} "
                  f"({args.results_db} @ {commit})")
            for path in (args.trace, args.metrics, args.profile):
                if path:
                    run_id = store.ingest_path(path, commit=commit)
                    print(f"ingested {path} -> run {run_id}")
        finally:
            store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
