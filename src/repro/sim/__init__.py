"""Discrete-event simulation substrate.

This subpackage provides the deterministic simulation kernel on which the
Condor-kernel reproduction runs:

- :mod:`repro.sim.engine` -- event queue, simulated clock, and a
  generator-coroutine process model (a from-scratch SimPy-like kernel).
- :mod:`repro.sim.rng` -- named, seeded random streams so that every
  experiment is reproducible from a single seed.
- :mod:`repro.sim.process` -- an OS-process model (fork/wait, exit codes,
  signals) used by the simulated daemons.
- :mod:`repro.sim.machine` -- machines with CPU, memory, scratch disk and
  an owner policy.
- :mod:`repro.sim.network` -- point-to-point messaging with latency,
  partitions, refused connections and breakable connections.
- :mod:`repro.sim.filesystem` -- local and NFS-style file systems with
  hard/soft mount semantics, quotas and corruption.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    SimProcess,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupted",
    "RngRegistry",
    "SimProcess",
    "SimulationError",
    "Simulator",
    "Timeout",
]
