"""Deterministic discrete-event simulation kernel.

The kernel follows the classic event-queue design: a priority queue of
``(time, priority, sequence, callback)`` entries, a simulated clock that
jumps from event to event, and a coroutine process model in which a
simulated activity is an ordinary Python generator that *yields* the
events it wants to wait for.

Determinism is a hard requirement for the reproduction (DESIGN.md §6):
two events scheduled for the same instant fire in the exact order they
were scheduled (FIFO, via the monotone sequence number), so a given seed
always produces the identical trace.

Example::

    sim = Simulator()

    def hello(sim):
        yield sim.timeout(5.0)
        print("the time is", sim.now)

    sim.spawn(hello(sim))
    sim.run()
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Generator
from time import perf_counter_ns
from typing import Any

#: Wall-time profiling hook (duck-typed like ``Simulator.telemetry``:
#: anything with ``.add(name, ns)``).  ``repro.obs.profile.install_wall``
#: points this at its counters; the default ``None`` costs one global
#: read per process step, so an unprofiled run pays nothing.
WALL_PROFILE = None

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupted",
    "SimProcess",
    "SimulationError",
    "Simulator",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Interrupted(Exception):
    """Thrown into a process generator when :meth:`SimProcess.interrupt` is called.

    The interrupting party supplies a *cause*, available as ``.cause``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


#: Events scheduled with URGENT fire before NORMAL ones at the same instant.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence that processes may wait on.

    An event starts *pending*; it is *triggered* exactly once, either by
    :meth:`succeed` (with an optional value) or :meth:`fail` (with an
    exception that will be thrown into every waiter).  Waiters attached
    after triggering are scheduled immediately.
    """

    __slots__ = ("sim", "_callbacks", "_triggered", "_ok", "_value", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._callbacks: list[Callable[[Event], None]] | None = []
        self._triggered = False
        self._ok = True
        self._value: Any = None
        self._defused = False

    # -- inspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The success value or failure exception."""
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters with *value*."""
        self._trigger(ok=True, value=value)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; *exc* is thrown into every waiter.

        If nobody ever waits on a failed event the simulation ends with
        the exception re-raised from :meth:`Simulator.run` (mirroring
        "unhandled error" semantics), unless :meth:`defuse` is called.
        """
        if not isinstance(exc, BaseException):
            raise SimulationError(f"fail() requires an exception, got {exc!r}")
        self._trigger(ok=False, value=exc)
        return self

    def defuse(self) -> "Event":
        """Mark a failed event as handled even if no process waits on it."""
        self._defused = True
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self._callbacks = self._callbacks, None
        assert callbacks is not None
        self.sim._schedule_callbacks(self, callbacks)

    # -- waiting -------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Invoke *fn(event)* when the event triggers (immediately if it has)."""
        if self._callbacks is None:
            self.sim._schedule_callbacks(self, [fn])
        else:
            self._callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._ok else f"failed({self._value!r})"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a simulated delay.

    A timeout that lost its race (e.g. a ``recv`` deadline beaten by the
    message) can be :meth:`cancel`-led: the heap entry stays where it is,
    but firing becomes a no-op instead of triggering the event and
    scheduling a callback batch.  At pool scale (one deadline per
    received ad) this keeps the event heap from churning on dead timers.
    """

    __slots__ = ("delay", "_cancelled")

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._cancelled = False
        sim.call_at(sim.now + delay, lambda: self._fire(value))

    def _fire(self, value: Any) -> None:
        if not self._cancelled:
            self.succeed(value)

    def cancel(self) -> None:
        """Neutralize the timeout; firing it later does nothing.

        Cancelling an already-triggered timeout is a no-op.
        """
        if not self._triggered:
            self._cancelled = True


class _Condition(Event):
    """Base for AnyOf/AllOf: waits on several events at once."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: list[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._pending = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _results(self) -> dict[Event, Any]:
        return {ev: ev.value for ev in self.events if ev.triggered}


class AnyOf(_Condition):
    """Triggers as soon as *any* child event triggers.

    Succeeds with a dict of the already-triggered events and their values;
    fails if the first child to trigger failed.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            if not ev.ok:
                ev.defuse()
            return
        if ev.ok:
            self.succeed(self._results())
        else:
            ev.defuse()
            self.fail(ev.value)


class AllOf(_Condition):
    """Triggers once *all* child events have triggered.

    Fails fast on the first child failure.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            if not ev.ok:
                ev.defuse()
            return
        if not ev.ok:
            ev.defuse()
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(self._results())


ProcessGenerator = Generator[Event, Any, Any]


class SimProcess(Event):
    """A running simulated activity.

    Wraps a generator that yields :class:`Event` objects.  The process is
    itself an event: it triggers when the generator returns (success, with
    the return value) or raises (failure).  This lets processes wait on
    each other, e.g. ``result = yield child_process``.
    """

    __slots__ = ("generator", "name", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(sim)
        if not isinstance(generator, Generator):
            raise SimulationError(
                f"spawn() requires a generator, got {type(generator).__name__}"
            )
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Event | None = None
        # Start the process at the current instant, but via the queue so
        # that spawn order == execution order.
        sim.call_at(sim.now, self._start, priority=PRIORITY_URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _start(self) -> None:
        t = self.sim.telemetry
        if t is not None and t.active:
            t.emit(self.sim.now, "process", "start", process=self.name)
        self._step(None, None)

    def _note_end(self, outcome: str) -> None:
        t = self.sim.telemetry
        if t is not None and t.active:
            t.emit(self.sim.now, "process", "end", process=self.name, outcome=outcome)

    def _resume(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            # A stale wakeup from an event this process no longer waits on
            # (it was interrupted while waiting).  Ignore.
            if not ev.ok:
                ev.defuse()
            return
        self._waiting_on = None
        if ev.ok:
            self._step(ev.value, None)
        else:
            self._step(None, ev.value)

    def _step(self, value: Any, exc: BaseException | None) -> None:
        wall = WALL_PROFILE
        if wall is None:
            return self._advance(value, exc)
        t0 = perf_counter_ns()
        try:
            return self._advance(value, exc)
        finally:
            wall.add("sim.process_step", perf_counter_ns() - t0)

    def _advance(self, value: Any, exc: BaseException | None) -> None:
        # Loop so that a kernel-raised SimulationError (bad yield) goes
        # back through the same send/throw handling as any other resume:
        # the generator may catch it and yield a fresh event (continue
        # waiting), return (StopIteration triggers the process), or let
        # it escape (the process fails).  Without this, a StopIteration
        # from the throw escaped into the event loop and a recovery
        # yield was silently dropped, hanging the process forever.
        while True:
            try:
                if exc is not None:
                    target = self.generator.throw(exc)
                else:
                    target = self.generator.send(value)
            except StopIteration as stop:
                self._note_end("returned")
                self.succeed(stop.value)
                return
            except Interrupted as err:
                # An interrupt that escapes the generator terminates it but is
                # not a kernel error: the process "dies of" the interruption.
                self._note_end("interrupted")
                self.succeed(err.cause)
                return
            except BaseException as err:  # noqa: BLE001 - deliberate: process died
                self._note_end("failed")
                self.fail(err)
                return
            if not isinstance(target, Event):
                value, exc = None, SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                continue
            if target.sim is not self.sim:
                value, exc = None, SimulationError(
                    "process yielded an event from another simulator"
                )
                continue
            self._waiting_on = target
            target.add_callback(self._resume)
            return

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupted` into the process at the current instant.

        Interrupting a finished process is a no-op (the usual race when a
        watchdog and its subject complete simultaneously).
        """
        if self.triggered:
            return

        def do_interrupt() -> None:
            if self.triggered:
                return
            waiting, self._waiting_on = self._waiting_on, None
            if waiting is None and not self.triggered:
                # Process is mid-step or not yet started; deliver the
                # interrupt on its next resumption point instead.
                self.sim.call_at(self.sim.now, do_interrupt, priority=PRIORITY_NORMAL)
                return
            self._step(None, Interrupted(cause))

        self.sim.call_at(self.sim.now, do_interrupt, priority=PRIORITY_URGENT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProcess {self.name!r} alive={self.is_alive}>"


class Simulator:
    """The simulation kernel: clock + event queue + process scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, int, Callable[[], None]]] = []
        self._seq = 0
        self._running = False
        #: Optional telemetry sink (duck-typed: anything with ``.active``
        #: and ``.emit(time, topic, name, **attrs)``).  The kernel never
        #: imports ``repro.obs``; a Pool attaches its bus here.  Emission
        #: sites guard on ``.active`` so an idle sink costs one attribute
        #: read per process transition.
        self.telemetry = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time (seconds)."""
        return self._now

    # -- low-level scheduling ---------------------------------------------
    def call_at(
        self,
        when: float,
        fn: Callable[[], None],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule plain callback *fn* to run at simulated time *when*."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past ({when} < now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, fn))

    def call_in(self, delay: float, fn: Callable[[], None]) -> None:
        """Schedule *fn* to run *delay* seconds from now."""
        self.call_at(self._now + delay, fn)

    def _schedule_callbacks(
        self, ev: Event, callbacks: list[Callable[[Event], None]]
    ) -> None:
        def run() -> None:
            if not ev.ok and not callbacks and not ev._defused:
                raise ev.value
            for cb in callbacks:
                cb(ev)

        self.call_at(self._now, run, priority=PRIORITY_URGENT)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after *delay* simulated seconds."""
        return Timeout(self, delay, value)

    def any_of(self, events: list[Event]) -> AnyOf:
        """Wait for the first of *events*."""
        return AnyOf(self, events)

    def all_of(self, events: list[Event]) -> AllOf:
        """Wait for all of *events*."""
        return AllOf(self, events)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> SimProcess:
        """Start a new simulated process from *generator*."""
        return SimProcess(self, generator, name)

    # -- execution -----------------------------------------------------------
    def step(self) -> bool:
        """Run the single next event.  Returns False if the queue is empty."""
        if not self._queue:
            return False
        when, _prio, _seq, fn = heapq.heappop(self._queue)
        self._now = when
        fn()
        return True

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains or the clock passes *until*.

        Returns the final simulated time.  An unhandled failed event
        re-raises its exception here.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        try:
            while self._queue:
                when = self._queue[0][0]
                if until is not None and when > until:
                    self._now = until
                    break
                self.step()
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``float('inf')`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now} queued={len(self._queue)}>"
