"""Simulated OS processes.

The paper's escaping-error vocabulary is grounded in UNIX process
mechanics: "within a running program, an escaping error is communicated by
stopping the program with a unique exit code"; a POSIX signal "can deliver
an error directly to a parent process" (§3.3).  This module provides that
substrate: a per-machine process table whose entries wrap simulation
coroutines and expose exit codes, signals, and parent waits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.engine import Interrupted, SimProcess, Simulator

__all__ = ["ExitStatus", "OsProcess", "ProcessTable", "Signal"]


class Signal:
    """The handful of signal numbers the simulation uses."""

    SIGKILL = 9
    SIGSEGV = 11
    SIGTERM = 15


@dataclass(frozen=True)
class ExitStatus:
    """How a process ended: normal exit code, or death by signal."""

    code: int = 0
    signal: int | None = None

    @property
    def exited_normally(self) -> bool:
        return self.signal is None

    def __str__(self) -> str:
        if self.signal is not None:
            return f"killed by signal {self.signal}"
        return f"exit code {self.code}"


class ProcessExit(Exception):
    """Raised inside a process body to terminate it with an exit code.

    The process-model analogue of ``exit(2)``; bodies may raise it from
    any depth and the process table converts it into an :class:`ExitStatus`.
    """

    def __init__(self, code: int):
        super().__init__(f"exit({code})")
        self.code = code


class OsProcess:
    """One simulated OS process."""

    def __init__(self, table: "ProcessTable", pid: int, name: str, body) -> None:
        self.table = table
        self.pid = pid
        self.name = name
        self.status: ExitStatus | None = None
        self.result: Any = None
        self._sim_proc: SimProcess = table.sim.spawn(
            self._run(body), name=f"{table.machine_name}:{name}[{pid}]"
        )

    def _run(self, body):
        try:
            self.result = yield from body
        except ProcessExit as exc:
            self.status = ExitStatus(code=exc.code)
            return
        except Interrupted as intr:
            sig = intr.cause if isinstance(intr.cause, int) else Signal.SIGKILL
            self.status = ExitStatus(code=0, signal=sig)
            return
        except Exception:
            # A crash: the OS reports SIGSEGV-style death, not the Python
            # traceback -- detail is invisible to the parent, exactly the
            # information loss the paper's Figure 4 is about.
            self.status = ExitStatus(code=0, signal=Signal.SIGSEGV)
            return
        self.status = ExitStatus(code=0)

    @property
    def is_alive(self) -> bool:
        return self.status is None

    def wait(self):
        """Generator: block until the process ends; returns :class:`ExitStatus`."""
        if self.status is None:
            yield self._sim_proc
        assert self.status is not None
        return self.status

    def kill(self, signal: int = Signal.SIGKILL) -> None:
        """Deliver *signal*; the process dies at the current instant."""
        if self.is_alive:
            self._sim_proc.interrupt(signal)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OsProcess {self.name}[{self.pid}] status={self.status}>"


class ProcessTable:
    """Spawns and tracks the processes of one machine."""

    def __init__(self, sim: Simulator, machine_name: str = "host"):
        self.sim = sim
        self.machine_name = machine_name
        self._next_pid = 1
        self.processes: dict[int, OsProcess] = {}

    def spawn(self, name: str, body) -> OsProcess:
        """Fork a new process running generator *body*."""
        pid = self._next_pid
        self._next_pid += 1
        proc = OsProcess(self, pid, name, body)
        self.processes[pid] = proc
        return proc

    def living(self) -> list[OsProcess]:
        """All processes that have not yet exited."""
        return [p for p in self.processes.values() if p.is_alive]

    def kill_all(self, signal: int = Signal.SIGKILL) -> None:
        """Machine shutdown: kill every living process."""
        for proc in self.living():
            proc.kill(signal)
