"""Simulated machines.

A machine bundles the physical resources whose exhaustion or
misconfiguration produce the paper's error catalogue: memory (Figure 4's
``OutOfMemoryError``), a scratch disk for the starter's execution
directory, a CPU speed factor (so heterogeneous pools make interesting
schedules), and the owner's configuration -- including the Java
installation description that the startd may or may not self-test (§5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem
from repro.sim.process import ProcessTable

__all__ = ["JavaInstallation", "Machine", "MemoryError_", "OwnerPolicy"]


class MemoryError_(Exception):
    """Raised when an allocation exceeds the machine's physical memory."""

    def __init__(self, requested: int, available: int):
        super().__init__(f"requested {requested} bytes, {available} available")
        self.requested = requested
        self.available = available


@dataclass
class JavaInstallation:
    """The machine owner's description of the local JVM.

    ``classpath_ok``/``binary_ok`` model the §2.3 misconfiguration: "the
    machine owner might give an incorrect path to the standard libraries".
    The description is an *assertion by the owner*; whether it is true is
    only discovered by running (or probing) the JVM.
    """

    java_binary: str = "/usr/bin/java"
    classpath: str = "/usr/lib/java/classes"
    version: str = "1.3.1"
    binary_ok: bool = True
    classpath_ok: bool = True
    heap_limit: int = 64 * 2**20

    @property
    def healthy(self) -> bool:
        return self.binary_ok and self.classpath_ok


@dataclass
class OwnerPolicy:
    """When the owner lets foreign jobs run, and what they advertise."""

    start_expr: str = "TRUE"
    rank_expr: str = "0"
    advertised_attrs: dict = field(default_factory=dict)


class Machine:
    """A pool member: resources + process table + owner configuration."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        memory: int = 256 * 2**20,
        cpu_speed: float = 1.0,
        scratch_capacity: int = 10**9,
        java: JavaInstallation | None = None,
        policy: OwnerPolicy | None = None,
        slots: int = 1,
    ):
        if slots < 1:
            raise ValueError(f"a machine needs at least one slot, got {slots}")
        self.sim = sim
        self.name = name
        #: Number of independently-claimable execution slots (an SMP
        #: machine runs several visiting jobs at once; memory is shared).
        self.slots = slots
        self.memory_total = memory
        self.memory_used = 0
        self.cpu_speed = cpu_speed
        self.scratch = LocalFileSystem(name=f"{name}:scratch", capacity=scratch_capacity, sim=sim)
        self.scratch.mkdir("/scratch")
        self.processes = ProcessTable(sim, machine_name=name)
        self.java = java if java is not None else JavaInstallation()
        self.policy = policy if policy is not None else OwnerPolicy()
        self.online = True

    # -- memory ----------------------------------------------------------
    @property
    def memory_free(self) -> int:
        return self.memory_total - self.memory_used

    def alloc(self, nbytes: int) -> None:
        """Claim *nbytes* of physical memory or raise :class:`MemoryError_`."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {nbytes}")
        if self.memory_used + nbytes > self.memory_total:
            raise MemoryError_(nbytes, self.memory_free)
        self.memory_used += nbytes

    def free(self, nbytes: int) -> None:
        """Return *nbytes* of physical memory."""
        self.memory_used = max(0, self.memory_used - nbytes)

    # -- CPU ----------------------------------------------------------------
    def cpu_time(self, work: float) -> float:
        """Wall time this machine needs for *work* normalized CPU-seconds."""
        return work / self.cpu_speed

    # -- availability -----------------------------------------------------
    def crash(self) -> None:
        """Power-off: kill everything; the machine drops off the network."""
        self.online = False
        self.processes.kill_all()

    def boot(self) -> None:
        """Bring a crashed machine back (with empty memory)."""
        self.online = True
        self.memory_used = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Machine {self.name} mem={self.memory_used}/{self.memory_total} "
            f"speed={self.cpu_speed} online={self.online}>"
        )
