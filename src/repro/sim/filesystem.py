"""Simulated file systems.

Two layers:

- :class:`LocalFileSystem` -- a synchronous in-memory file system with the
  explicit errors the paper's I/O discussion enumerates: ``ENOENT``
  (FileNotFound), ``EACCES`` (AccessDenied), ``ENOSPC`` (DiskFull),
  ``EISDIR``/``ENOTDIR``, plus injected ``EIO`` (offline) and silent
  corruption (the raw material of *implicit* errors).

- :class:`NfsClient` -- an NFS-style mount of a remote file system with
  the **hard/soft mount** semantics of §5: a hard mount retries forever,
  hiding the outage inside elapsed time; a soft mount exposes ``ETIMEDOUT``
  after a retry window.  Both are "unsavory" per the paper; we also
  implement the per-operation deadline the paper wishes programs could
  choose (``deadline=`` argument), as the extension experiment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.sim.engine import Simulator

__all__ = [
    "FsError",
    "FileHandle",
    "LocalFileSystem",
    "NfsClient",
    "PathState",
]

_SEP = "/"


class FsError(Exception):
    """An explicit file-system error with an errno-style code."""

    def __init__(self, code: str, path: str = "", detail: str = ""):
        super().__init__(f"{code}: {path} {detail}".strip())
        self.code = code
        self.path = path
        self.detail = detail


def _norm(path: str) -> str:
    parts = [p for p in path.split(_SEP) if p]
    return _SEP + _SEP.join(parts)


def _parent(path: str) -> str:
    path = _norm(path)
    if path == _SEP:
        return _SEP
    return _norm(path.rsplit(_SEP, 1)[0] or _SEP)


@dataclass
class PathState:
    """Metadata + content for one file."""

    data: bytes = b""
    owner: str = "root"
    readable: bool = True
    writable: bool = True
    mtime: float = 0.0
    checksum: str = ""
    corrupted: bool = False

    def refresh_checksum(self) -> None:
        self.checksum = hashlib.sha256(self.data).hexdigest()


class FileHandle:
    """An open file: sequential read/write cursor over a :class:`PathState`.

    Mirrors the paper's point that *opened* files are traditionally immune
    to namespace errors: once open, reads/writes never raise ``ENOENT`` --
    only ``ENOSPC`` (writes) or ``EIO`` (if the file system goes offline).
    """

    def __init__(self, fs: "LocalFileSystem", path: str, state: PathState, mode: str):
        self.fs = fs
        self.path = path
        self._state = state
        self.mode = mode
        self.offset = len(state.data) if "a" in mode else 0
        self.closed = False

    def _check(self, want_write: bool) -> None:
        if self.closed:
            raise FsError("EBADF", self.path, "handle closed")
        if not self.fs.online:
            raise FsError("EIO", self.path, "file system offline")
        if want_write and "r" == self.mode:
            raise FsError("EBADF", self.path, "not open for writing")

    def read(self, size: int = -1) -> bytes:
        """Read up to *size* bytes from the cursor (all remaining if -1)."""
        self._check(want_write=False)
        data = self._state.data[self.offset :]
        if size >= 0:
            data = data[:size]
        self.offset += len(data)
        return data

    def write(self, data: bytes) -> int:
        """Write *data* at the cursor; raises ``ENOSPC`` when over quota."""
        self._check(want_write=True)
        new_len = max(len(self._state.data), self.offset + len(data))
        growth = new_len - len(self._state.data)
        if growth > 0 and not self.fs._reserve(growth):
            raise FsError("ENOSPC", self.path, "disk full")
        buf = bytearray(self._state.data)
        if new_len > len(buf):
            buf.extend(b"\0" * (new_len - len(buf)))
        buf[self.offset : self.offset + len(data)] = data
        self._state.data = bytes(buf)
        self._state.refresh_checksum()
        self._state.mtime = self.fs.clock()
        self.offset += len(data)
        return len(data)

    def seek(self, offset: int) -> None:
        if offset < 0:
            raise FsError("EINVAL", self.path, f"negative seek {offset}")
        self.offset = offset

    def close(self) -> None:
        self.closed = True


class LocalFileSystem:
    """A synchronous in-memory file system with quota and fault hooks."""

    def __init__(
        self,
        name: str = "local",
        capacity: int = 10**9,
        sim: Simulator | None = None,
    ):
        self.name = name
        self.capacity = capacity
        self.used = 0
        self.online = True
        self._files: dict[str, PathState] = {}
        self._dirs: set[str] = {_SEP}
        self._sim = sim

    def clock(self) -> float:
        return self._sim.now if self._sim is not None else 0.0

    # -- capacity ------------------------------------------------------
    def _reserve(self, nbytes: int) -> bool:
        if self.used + nbytes > self.capacity:
            return False
        self.used += nbytes
        return True

    @property
    def free(self) -> int:
        return self.capacity - self.used

    # -- namespace -----------------------------------------------------
    def _require_online(self, path: str) -> None:
        if not self.online:
            raise FsError("EIO", path, "file system offline")

    def mkdir(self, path: str, parents: bool = False) -> None:
        """Create directory *path* (with ancestors when *parents*)."""
        path = _norm(path)
        self._require_online(path)
        if path in self._files:
            raise FsError("EEXIST", path, "file exists")
        parent = _parent(path)
        if parent not in self._dirs:
            if not parents:
                raise FsError("ENOENT", parent, "no such directory")
            self.mkdir(parent, parents=True)
        self._dirs.add(path)

    def exists(self, path: str) -> bool:
        path = _norm(path)
        return path in self._files or path in self._dirs

    def isdir(self, path: str) -> bool:
        return _norm(path) in self._dirs

    def listdir(self, path: str) -> list[str]:
        """Names directly under directory *path*, sorted."""
        path = _norm(path)
        self._require_online(path)
        if path not in self._dirs:
            raise FsError("ENOENT" if path not in self._files else "ENOTDIR", path)
        prefix = path if path.endswith(_SEP) else path + _SEP
        names = set()
        for p in list(self._files) + list(self._dirs):
            if p != path and p.startswith(prefix):
                names.add(p[len(prefix) :].split(_SEP, 1)[0])
        return sorted(names)

    def stat(self, path: str) -> PathState:
        """Metadata for *path*; raises ``ENOENT`` if absent."""
        path = _norm(path)
        self._require_online(path)
        if path in self._files:
            return self._files[path]
        if path in self._dirs:
            raise FsError("EISDIR", path)
        raise FsError("ENOENT", path, "no such file")

    # -- file ops --------------------------------------------------------
    def open(self, path: str, mode: str = "r", owner: str = "root") -> FileHandle:
        """Open *path*.  Modes: ``r`` read, ``w`` create/truncate, ``a`` append.

        Namespace errors (``ENOENT``, ``EACCES``, ``EISDIR``) happen here,
        at open time -- per the I/O conventions the paper appeals to.
        """
        path = _norm(path)
        self._require_online(path)
        if path in self._dirs:
            raise FsError("EISDIR", path)
        state = self._files.get(path)
        if "r" == mode:
            if state is None:
                raise FsError("ENOENT", path, "no such file")
            if not state.readable:
                raise FsError("EACCES", path, "permission denied")
            return FileHandle(self, path, state, mode)
        # write / append
        if state is None:
            parent = _parent(path)
            if parent not in self._dirs:
                raise FsError("ENOENT", parent, "no such directory")
            state = PathState(owner=owner, mtime=self.clock())
            state.refresh_checksum()
            self._files[path] = state
        else:
            if not state.writable:
                raise FsError("EACCES", path, "permission denied")
            if mode == "w":
                self.used -= len(state.data)
                state.data = b""
                state.refresh_checksum()
        return FileHandle(self, path, state, mode)

    def write_file(self, path: str, data: bytes, owner: str = "root") -> None:
        """Create/replace *path* with *data* in one call."""
        handle = self.open(path, "w", owner=owner)
        try:
            handle.write(data)
        finally:
            handle.close()

    def read_file(self, path: str) -> bytes:
        """Read the whole of *path* in one call."""
        handle = self.open(path, "r")
        try:
            return handle.read()
        finally:
            handle.close()

    def unlink(self, path: str) -> None:
        """Remove file *path*."""
        path = _norm(path)
        self._require_online(path)
        state = self._files.pop(path, None)
        if state is None:
            raise FsError("ENOENT", path)
        self.used -= len(state.data)

    def chmod(self, path: str, readable: bool | None = None, writable: bool | None = None) -> None:
        """Adjust permission flags on *path*."""
        state = self.stat(path)
        if readable is not None:
            state.readable = readable
        if writable is not None:
            state.writable = writable

    # -- fault hooks --------------------------------------------------------
    def set_online(self, online: bool) -> None:
        """Take the whole file system offline (EIO on every op) or back."""
        self.online = online

    def corrupt(self, path: str, flip_byte: int = 0) -> None:
        """Silently flip a byte of *path* -- creates a latent implicit error.

        The stored checksum is *not* refreshed, so integrity-checking
        readers (:meth:`verify`) can detect the corruption while naive
        readers consume bad data silently.
        """
        path = _norm(path)
        state = self._files.get(path)
        if state is None:
            raise FsError("ENOENT", path)
        if not state.data:
            state.corrupted = True
            return
        idx = flip_byte % len(state.data)
        buf = bytearray(state.data)
        buf[idx] ^= 0xFF
        state.data = bytes(buf)
        state.corrupted = True

    def verify(self, path: str) -> bool:
        """True iff *path*'s content still matches its recorded checksum."""
        state = self.stat(path)
        return hashlib.sha256(state.data).hexdigest() == state.checksum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LocalFileSystem {self.name!r} files={len(self._files)} "
            f"used={self.used}/{self.capacity} online={self.online}>"
        )


@dataclass
class _MountStats:
    operations: int = 0
    retries: int = 0
    timeouts: int = 0
    blocked_time: float = 0.0


class NfsClient:
    """An NFS-style mount of a remote :class:`LocalFileSystem`.

    All operations are generators (use ``yield from``), because a mount of
    an offline server consumes simulated time:

    - ``mode="hard"`` -- retry forever; the caller simply blocks (§5: "hide
      all network errors").
    - ``mode="soft"`` -- raise ``FsError("ETIMEDOUT")`` once the retry
      window (``soft_timeout``) expires (§5: "expose them to callers after
      a certain retry period").

    Per-operation ``deadline=`` overrides the mount-wide policy -- the
    mechanism the paper notes NFS lacks ("no mechanism for a single
    program to choose its own failure criteria").
    """

    def __init__(
        self,
        sim: Simulator,
        server_fs: LocalFileSystem,
        mode: str = "hard",
        soft_timeout: float = 30.0,
        retry_interval: float = 1.0,
        rpc_latency: float = 0.002,
    ):
        if mode not in ("hard", "soft"):
            raise ValueError(f"mount mode must be 'hard' or 'soft', not {mode!r}")
        self.sim = sim
        self.server_fs = server_fs
        self.mode = mode
        self.soft_timeout = soft_timeout
        self.retry_interval = retry_interval
        self.rpc_latency = rpc_latency
        self.stats = _MountStats()

    def _call(self, op, *args, deadline: float | None = None):
        """Run one remote operation with mount retry semantics."""
        self.stats.operations += 1
        start = self.sim.now
        if deadline is None and self.mode == "soft":
            deadline = self.soft_timeout
        while True:
            yield self.sim.timeout(self.rpc_latency)
            if self.server_fs.online:
                result = op(*args)
                self.stats.blocked_time += self.sim.now - start
                return result
            waited = self.sim.now - start
            if deadline is not None and waited >= deadline:
                self.stats.timeouts += 1
                self.stats.blocked_time += waited
                raise FsError("ETIMEDOUT", args[0] if args else "", "soft mount timeout")
            self.stats.retries += 1
            yield self.sim.timeout(self.retry_interval)

    # Thin remote wrappers; each is a generator.
    def read_file(self, path: str, deadline: float | None = None):
        """Remote whole-file read (generator)."""
        return self._call(self.server_fs.read_file, path, deadline=deadline)

    def write_file(self, path: str, data: bytes, deadline: float | None = None):
        """Remote whole-file write (generator)."""
        return self._call(self.server_fs.write_file, path, data, deadline=deadline)

    def stat(self, path: str, deadline: float | None = None):
        """Remote stat (generator)."""
        return self._call(self.server_fs.stat, path, deadline=deadline)

    def listdir(self, path: str, deadline: float | None = None):
        """Remote directory listing (generator)."""
        return self._call(self.server_fs.listdir, path, deadline=deadline)

    def unlink(self, path: str, deadline: float | None = None):
        """Remote unlink (generator)."""
        return self._call(self.server_fs.unlink, path, deadline=deadline)
