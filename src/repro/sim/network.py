"""Simulated point-to-point network.

Models exactly the failure modes the paper reasons about:

- **refused connections** -- nothing listening, or the host is down
  ("a refused network connection may indicate that the target service is
  temporarily offline, or ... an invalid address", §5);
- **timeouts** -- partitions or message loss surface as elapsed time, the
  raw material for time-dependent scope resolution;
- **broken connections** -- "on a network connection, an escaping error is
  communicated by breaking the connection" (§3.2); :meth:`Connection.break_`
  implements precisely that.

All failures are delivered as :class:`NetworkError` subclasses with an
errno-style ``code`` so that higher layers can classify them without
string matching.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.sim.engine import Event, Simulator

__all__ = [
    "BrokenConnection",
    "Connection",
    "ConnectionRefused",
    "ConnectionTimedOut",
    "Endpoint",
    "HostUnreachable",
    "Listener",
    "Network",
    "NetworkError",
]


class NetworkError(Exception):
    """Base class for simulated network failures."""

    code = "ENET"

    def __init__(self, detail: str = ""):
        super().__init__(detail or self.code)
        self.detail = detail


class ConnectionRefused(NetworkError):
    """The destination exists but nothing is listening (or it refused)."""

    code = "ECONNREFUSED"


class ConnectionTimedOut(NetworkError):
    """No response within the caller's patience (partition or loss)."""

    code = "ETIMEDOUT"


class HostUnreachable(NetworkError):
    """The named host is not registered on the network."""

    code = "EHOSTUNREACH"


class BrokenConnection(NetworkError):
    """The peer broke the connection -- the wire form of an escaping error."""

    code = "ECONNRESET"


class Endpoint:
    """An address: ``(host, port)``."""

    __slots__ = ("host", "port")

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    def key(self) -> tuple[str, int]:
        return (self.host, self.port)

    def __repr__(self) -> str:
        return f"{self.host}:{self.port}"


class Connection:
    """One side of an established duplex message channel."""

    def __init__(self, sim: Simulator, network: "Network", local: Endpoint, remote: Endpoint):
        self.sim = sim
        self.network = network
        self.local = local
        self.remote = remote
        self.peer: "Connection | None" = None  # set by Network
        self._inbox: deque[Any] = deque()
        self._waiters: deque[Event] = deque()
        self._broken = False
        self.bytes_sent = 0

    # -- state ---------------------------------------------------------
    @property
    def broken(self) -> bool:
        """True once either side has broken/closed the connection."""
        return self._broken

    # -- sending ---------------------------------------------------------
    def send(self, message: Any, size: int = 64) -> None:
        """Send *message* to the peer; delivery after network latency.

        *size* is the nominal wire size in bytes, recorded for traffic
        accounting (the black-hole experiment measures wasted bytes).

        Raises :class:`BrokenConnection` if the channel is already broken.
        Messages sent into a partition are silently dropped -- the sender
        only discovers the problem via timeout, as on a real network.
        """
        if self._broken:
            raise BrokenConnection("send on broken connection")
        self.bytes_sent += size
        self.network._record_traffic(self.local.host, self.remote.host, size)
        peer = self.peer
        assert peer is not None
        if self.network.is_partitioned(self.local.host, self.remote.host):
            return  # dropped on the floor
        if self.network._drops(self.local.host, self.remote.host):
            return
        message = self.network._maybe_corrupt(message)
        latency = self.network.latency(self.local.host, self.remote.host)
        self.sim.call_in(latency, lambda: peer._deliver(message))

    def _deliver(self, message: Any) -> None:
        if self._broken:
            return
        self._inbox.append(message)
        self._wake()

    def _wake(self) -> None:
        while self._waiters and (self._inbox or self._broken):
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            if self._inbox:
                waiter.succeed(self._inbox.popleft())
            else:
                waiter.fail(BrokenConnection("peer broke connection"))

    # -- receiving -----------------------------------------------------
    def recv(self, timeout: float | None = None):
        """Generator: wait for the next message.

        ``msg = yield from conn.recv(timeout=5.0)``

        Raises :class:`ConnectionTimedOut` if *timeout* elapses first and
        :class:`BrokenConnection` if the peer breaks the channel while we
        wait (the escaping error arriving on the wire).
        """
        if self._inbox:
            return self._inbox.popleft()
        if self._broken:
            raise BrokenConnection("recv on broken connection")
        waiter = self.sim.event()
        self._waiters.append(waiter)
        if timeout is None:
            msg = yield waiter
            return msg
        expiry = self.sim.timeout(timeout)
        outcome = yield self.sim.any_of([waiter, expiry])
        if waiter in outcome:
            # The message won the race: the deadline is dead weight in
            # the event heap; cancel it so firing is a no-op.
            expiry.cancel()
            return outcome[waiter]
        # Timed out: detach so a late delivery is not lost to a dead waiter.
        try:
            self._waiters.remove(waiter)
        except ValueError:
            pass
        if not waiter.triggered:
            waiter.defuse()
            waiter.succeed(None)  # neutralize
            raise ConnectionTimedOut(f"no message within {timeout}s")
        return waiter.value

    # -- teardown ---------------------------------------------------------
    def break_(self) -> None:
        """Break the connection abruptly -- communicates an escaping error.

        The peer's pending and future ``recv`` calls raise
        :class:`BrokenConnection`; so do its ``send`` calls.
        """
        self._teardown()
        if self.peer is not None:
            peer = self.peer
            latency = self.network.latency(self.local.host, self.remote.host)
            self.sim.call_in(latency, peer._teardown)

    close = break_  # a close is observed identically by the remote peer

    def _teardown(self) -> None:
        if self._broken:
            return
        self._broken = True
        self._wake()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Connection {self.local}->{self.remote} broken={self._broken}>"


class Listener:
    """A passive endpoint accepting inbound connections."""

    def __init__(self, sim: Simulator, network: "Network", endpoint: Endpoint):
        self.sim = sim
        self.network = network
        self.endpoint = endpoint
        self._backlog: deque[Connection] = deque()
        self._accept_waiters: deque[Event] = deque()
        self.closed = False

    def _offer(self, conn: Connection) -> None:
        self._backlog.append(conn)
        while self._accept_waiters and self._backlog:
            waiter = self._accept_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(self._backlog.popleft())

    def accept(self):
        """Generator: wait for and return the next inbound :class:`Connection`."""
        if self._backlog:
            return self._backlog.popleft()
        waiter = self.sim.event()
        self._accept_waiters.append(waiter)
        conn = yield waiter
        return conn

    def close(self) -> None:
        """Stop accepting; future connect attempts are refused."""
        self.closed = True
        self.network._unlisten(self.endpoint)


class Network:
    """The fabric connecting simulated hosts."""

    def __init__(
        self,
        sim: Simulator,
        default_latency: float = 0.001,
        loss_probability: float = 0.0,
        rng=None,
    ):
        self.sim = sim
        self.default_latency = default_latency
        self.loss_probability = loss_probability
        #: Probability that an eligible message's payload is silently
        #: corrupted in flight -- the "CRC and TCP checksum disagree"
        #: fault, the raw material of *implicit* errors.
        self.corrupt_probability = 0.0
        #: Predicate selecting which messages are eligible for corruption
        #: (default: any message with a non-empty ``data: bytes`` field).
        self.corrupt_filter = None
        self.corruptions = 0
        self.rng = rng
        self._hosts: set[str] = set()
        self._listeners: dict[tuple[str, int], Listener] = {}
        self._partitions: set[frozenset[str]] = set()
        self._down_hosts: set[str] = set()
        self._latency_overrides: dict[frozenset[str], float] = {}
        self.traffic_bytes: dict[tuple[str, str], int] = {}

    # -- topology ----------------------------------------------------------
    def register_host(self, host: str) -> None:
        """Add *host* to the fabric (idempotent)."""
        self._hosts.add(host)

    def set_host_down(self, host: str, down: bool = True) -> None:
        """A down host refuses nothing and answers nothing: connects time out."""
        if down:
            self._down_hosts.add(host)
        else:
            self._down_hosts.discard(host)

    def partition(self, host_a: str, host_b: str) -> None:
        """Silently drop all traffic between *host_a* and *host_b*."""
        self._partitions.add(frozenset((host_a, host_b)))

    def heal(self, host_a: str, host_b: str) -> None:
        """Remove the partition between *host_a* and *host_b*."""
        self._partitions.discard(frozenset((host_a, host_b)))

    def is_partitioned(self, host_a: str, host_b: str) -> bool:
        return frozenset((host_a, host_b)) in self._partitions

    def set_latency(self, host_a: str, host_b: str, latency: float) -> None:
        """Override the one-way latency between a host pair."""
        self._latency_overrides[frozenset((host_a, host_b))] = latency

    def latency(self, host_a: str, host_b: str) -> float:
        if host_a == host_b:
            return 0.0
        return self._latency_overrides.get(
            frozenset((host_a, host_b)), self.default_latency
        )

    def _maybe_corrupt(self, message: Any) -> Any:
        """Silently flip one payload byte with ``corrupt_probability``.

        The corrupted message is still well-formed -- no layer below the
        application can notice, which is exactly what makes the resulting
        error *implicit* (paper §5's end-to-end discussion).
        """
        if self.corrupt_probability <= 0.0 or self.rng is None:
            return message
        data = getattr(message, "data", None)
        if not isinstance(data, bytes) or not data:
            return message
        if self.corrupt_filter is not None and not self.corrupt_filter(message):
            return message
        if self.rng.random() >= self.corrupt_probability:
            return message
        import dataclasses

        idx = self.rng.randrange(len(data))
        buf = bytearray(data)
        buf[idx] ^= 0xFF
        self.corruptions += 1
        return dataclasses.replace(message, data=bytes(buf))

    def _drops(self, host_a: str, host_b: str) -> bool:
        if self.loss_probability <= 0.0 or self.rng is None:
            return False
        if host_a == host_b:
            return False
        return self.rng.random() < self.loss_probability

    def _record_traffic(self, src: str, dst: str, size: int) -> None:
        key = (src, dst)
        self.traffic_bytes[key] = self.traffic_bytes.get(key, 0) + size

    def total_traffic(self) -> int:
        """Total bytes offered to the network since construction."""
        return sum(self.traffic_bytes.values())

    # -- listening -----------------------------------------------------------
    def listen(self, host: str, port: int) -> Listener:
        """Open a listener on ``host:port``."""
        self.register_host(host)
        key = (host, port)
        if key in self._listeners:
            raise ValueError(f"{host}:{port} already has a listener")
        listener = Listener(self.sim, self, Endpoint(host, port))
        self._listeners[key] = listener
        return listener

    def _unlisten(self, endpoint: Endpoint) -> None:
        self._listeners.pop(endpoint.key(), None)

    # -- connecting -----------------------------------------------------------
    def connect(self, src_host: str, dst_host: str, dst_port: int, timeout: float = 5.0):
        """Generator: open a connection from *src_host* to ``dst_host:dst_port``.

        Raises :class:`HostUnreachable`, :class:`ConnectionRefused`, or
        :class:`ConnectionTimedOut` exactly as a real stack would:

        - unknown host -> unreachable (invalid address, §5);
        - known host, nothing listening -> refused (service offline, §5);
        - partition or down host -> the SYN vanishes; timeout.
        """
        self.register_host(src_host)
        if dst_host not in self._hosts:
            raise HostUnreachable(f"no such host {dst_host!r}")
        rtt = 2 * self.latency(src_host, dst_host)
        if self.is_partitioned(src_host, dst_host) or dst_host in self._down_hosts:
            yield self.sim.timeout(timeout)
            raise ConnectionTimedOut(
                f"connect {src_host}->{dst_host}:{dst_port} timed out"
            )
        yield self.sim.timeout(rtt)
        listener = self._listeners.get((dst_host, dst_port))
        if listener is None or listener.closed:
            raise ConnectionRefused(f"{dst_host}:{dst_port} refused connection")
        local = Endpoint(src_host, -1)
        remote = Endpoint(dst_host, dst_port)
        a = Connection(self.sim, self, local, remote)
        b = Connection(self.sim, self, remote, local)
        a.peer, b.peer = b, a
        listener._offer(b)
        return a
