"""Named, seeded random streams.

Every source of randomness in the reproduction draws from a stream
obtained here, keyed by a stable name (e.g. ``"faults.blackhole"`` or
``"workload.arrivals"``).  Streams are derived from a single experiment
seed with SHA-256, so:

- the same (seed, name) pair always yields the same stream, regardless of
  the order in which streams are created or used; and
- adding a new consumer of randomness does not perturb existing streams,
  which keeps experiments comparable across code revisions.
"""

from __future__ import annotations

import hashlib
import random

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache for named random streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("arrivals")
    >>> b = rngs.stream("arrivals")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}
        self._np_streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> random.Random:
        """A :class:`random.Random` dedicated to *name*."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.seed, name))
        return self._streams[name]

    def numpy_stream(self, name: str) -> np.random.Generator:
        """A :class:`numpy.random.Generator` dedicated to *name*.

        Kept separate from :meth:`stream` so mixing APIs on one name does
        not entangle their state.
        """
        if name not in self._np_streams:
            self._np_streams[name] = np.random.default_rng(
                derive_seed(self.seed, "np:" + name)
            )
        return self._np_streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's.

        Useful for giving each repetition of an experiment its own
        namespace: ``rngs.fork(f"rep{i}")``.
        """
        return RngRegistry(derive_seed(self.seed, "fork:" + name))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"
