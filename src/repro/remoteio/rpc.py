"""RPC messages, credentials, and the client call helper.

The RPC layer is where §3.3's canonical example lives: "a failure in
remote procedure call has process scope -- it indicates that the
mechanism of function call is no longer valid within the process."
:meth:`RpcClient.call` therefore distinguishes *results* (including
explicit file-system error codes, which belong to the caller) from
*transport failures* (timeout, broken connection), which it surfaces as
the simulated network's exceptions for the proxy to rescope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.protocols import WireSize
from repro.sim.network import Connection

__all__ = ["Credential", "RpcClient", "RpcReply", "RpcRequest"]


@dataclass(frozen=True)
class Credential:
    """A GSI/Kerberos-style credential with an expiry time."""

    owner: str
    expires_at: float = float("inf")

    def valid_at(self, now: float) -> bool:
        return now < self.expires_at


@dataclass(frozen=True)
class RpcRequest:
    """One UNIX-like file operation."""

    op: str  # "read_file" | "write_file" | "stat" | "listdir"
    path: str
    data: bytes = b""
    credential: Credential | None = None


@dataclass(frozen=True)
class RpcReply:
    """Result or explicit error for one request."""

    ok: bool
    data: bytes = b""
    listing: tuple[str, ...] = ()
    error: str = ""  # errno-style code, or CREDENTIAL_EXPIRED / BAD_CREDENTIAL


class RpcClient:
    """Caller side: one request/reply exchange over an open connection."""

    def __init__(self, connection: Connection, timeout: float = 10.0):
        self.connection = connection
        self.timeout = timeout

    def call(self, request: RpcRequest):
        """Generator: send *request*, wait for the reply.

        Returns the :class:`RpcReply`.  Transport failures
        (:class:`~repro.sim.network.ConnectionTimedOut`,
        :class:`~repro.sim.network.BrokenConnection`) propagate to the
        caller, which must rescope them (they are process-scope events,
        not file results).
        """
        size = WireSize.CONTROL + len(request.data)
        self.connection.send(request, size=size)
        reply = yield from self.connection.recv(timeout=self.timeout)
        return reply
