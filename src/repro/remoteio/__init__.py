"""The shadow's remote I/O channel (paper §2.2).

    "We demonstrate a typical application of the proxy by making use of
    the standard Condor remote I/O channel to the shadow.  This facility
    provides UNIX-like file access in the form of remote procedure calls
    secured by GSI or Kerberos."

- :mod:`repro.remoteio.rpc` -- request/reply messages, credentials, and
  the client call helper;
- :mod:`repro.remoteio.server` -- the shadow-side file server over the
  submit machine's (possibly NFS-mounted) home file system.
"""

from repro.remoteio.rpc import Credential, RpcClient, RpcReply, RpcRequest
from repro.remoteio.server import RemoteIoServer, SyncFsAdapter

__all__ = [
    "Credential",
    "RemoteIoServer",
    "RpcClient",
    "RpcReply",
    "RpcRequest",
    "SyncFsAdapter",
]
