"""The shadow-side remote I/O file server.

Serves the submit machine's home file system to the starter's proxy.
The home file system may itself be an NFS mount
(:class:`repro.sim.filesystem.NfsClient`), in which case the server
inherits the mount's hard/soft semantics: a hard-mounted outage makes the
server *block* (the proxy's RPC times out -- indistinguishable from a
network problem, which is precisely the paper's §5 indeterminate-scope
observation), while a soft-mounted outage returns an explicit
``ETIMEDOUT``.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.condor.protocols import WireSize
from repro.remoteio.rpc import RpcReply, RpcRequest
from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError, LocalFileSystem
from repro.sim.network import BrokenConnection, Network

__all__ = ["RemoteIoServer", "SyncFsAdapter"]

#: Wall-time hook set by ``repro.obs.profile.install_wall``.  The
#: adapter's leaf file operations are the remote-I/O channel's
#: synchronous hot path; NFS-mounted operations wait in simulated time
#: and are deliberately not wall-timed.
WALL_PROFILE = None


def _timed_fs_op(fn, *args):
    wall = WALL_PROFILE
    if wall is None:
        return fn(*args)
    t0 = perf_counter_ns()
    try:
        return fn(*args)
    finally:
        wall.add("remoteio.fs_op", perf_counter_ns() - t0)


class SyncFsAdapter:
    """Adapts a :class:`LocalFileSystem` to the generator API of
    :class:`~repro.sim.filesystem.NfsClient`, so the server can treat
    local and NFS-mounted home directories uniformly."""

    def __init__(self, fs: LocalFileSystem):
        self.fs = fs

    def read_file(self, path: str, deadline=None):
        return _timed_fs_op(self.fs.read_file, path)
        yield  # pragma: no cover - makes this a generator function

    def write_file(self, path: str, data: bytes, deadline=None):
        return _timed_fs_op(self.fs.write_file, path, data)
        yield  # pragma: no cover

    def stat(self, path: str, deadline=None):
        return _timed_fs_op(self.fs.stat, path)
        yield  # pragma: no cover

    def listdir(self, path: str, deadline=None):
        return _timed_fs_op(self.fs.listdir, path)
        yield  # pragma: no cover


class RemoteIoServer:
    """The shadow's file server: accepts connections, serves RPCs."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        host: str,
        port: int,
        home_fs,  # NfsClient or SyncFsAdapter
        credential_required: bool = True,
    ):
        self.sim = sim
        self.net = net
        self.host = host
        self.port = port
        self.home_fs = home_fs
        self.credential_required = credential_required
        self.requests_served = 0
        self.listener = net.listen(host, port)
        self._proc = sim.spawn(self._accept_loop(), name=f"ioserver:{host}:{port}")
        self._proc.defuse()

    def close(self) -> None:
        self.listener.close()
        self._proc.interrupt("server shutdown")

    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._serve(conn), name=f"ioserve:{self.host}")
            handler.defuse()

    def _serve(self, conn):
        try:
            while True:
                request = yield from conn.recv()
                if not isinstance(request, RpcRequest):
                    conn.send(RpcReply(ok=False, error="BAD_REQUEST"), size=WireSize.CONTROL)
                    continue
                reply = yield from self._dispatch(request)
                conn.send(reply, size=WireSize.CONTROL + len(reply.data))
        except BrokenConnection:
            return  # client went away; nothing to clean up

    def _dispatch(self, request: RpcRequest):
        """Generator: perform one operation against the home file system."""
        self.requests_served += 1
        reply = yield from self._perform(request)
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "io", "rpc_op",
                channel="rpc", op=request.op, path=request.path,
                ok=reply.ok, error=reply.error, bytes=len(reply.data),
            )
        return reply

    def _perform(self, request: RpcRequest):
        """Generator: the operation body (credential check + fs call)."""
        if self.credential_required:
            if request.credential is None:
                return RpcReply(ok=False, error="BAD_CREDENTIAL")
            if not request.credential.valid_at(self.sim.now):
                # GSI/Kerberos tickets expire: an error the naive library
                # smuggles to the program as an IOException (§4).
                return RpcReply(ok=False, error="CREDENTIAL_EXPIRED")
        try:
            if request.op == "read_file":
                data = yield from self.home_fs.read_file(request.path)
                return RpcReply(ok=True, data=data)
            if request.op == "write_file":
                yield from self.home_fs.write_file(request.path, request.data)
                return RpcReply(ok=True)
            if request.op == "stat":
                yield from self.home_fs.stat(request.path)
                return RpcReply(ok=True)
            if request.op == "listdir":
                listing = yield from self.home_fs.listdir(request.path)
                return RpcReply(ok=True, listing=tuple(listing))
            return RpcReply(ok=False, error="BAD_OP")
        except FsError as exc:
            return RpcReply(ok=False, error=exc.code)
