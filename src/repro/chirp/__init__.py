"""The Chirp I/O proxy path (paper §2.2, Figure 2).

    "This library does not communicate directly with any storage
    resource, but instead calls a proxy in the starter via a simple
    protocol called Chirp.  ...  The library authenticates itself to the
    starter by presenting a shared secret revealed to it through the
    local file system."

- :mod:`repro.chirp.protocol` -- the wire protocol and its finite result
  codes;
- :mod:`repro.chirp.auth` -- shared-secret establishment via the scratch
  file system;
- :mod:`repro.chirp.proxy` -- the starter-side proxy forwarding to the
  shadow's RPC server;
- :mod:`repro.chirp.client` -- the job-side Java I/O library, in naive
  (generic-interface) and scoped (finite-interface, escaping-error)
  modes.
"""

from repro.chirp.auth import generate_secret, place_secret, read_secret
from repro.chirp.client import CondorIoLibrary, LocalIoLibrary
from repro.chirp.protocol import ChirpCode, ChirpReply, ChirpRequest
from repro.chirp.proxy import ChirpProxy

__all__ = [
    "ChirpCode",
    "ChirpProxy",
    "ChirpReply",
    "ChirpRequest",
    "CondorIoLibrary",
    "LocalIoLibrary",
    "generate_secret",
    "place_secret",
    "read_secret",
]
