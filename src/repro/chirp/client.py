"""The job-side I/O library (paper §2.2 and §4).

    "This library presents files using standard Java abstractions..."

Two operating modes reproduce the paper's before/after:

- ``mode="naive"`` -- the §2.3 design: *every* Chirp failure, including
  machinery errors like ``CREDENTIAL_EXPIRED``, is "blindly converted"
  into a ``JIOException`` subtype through a *generic* error interface.
  The program (which does not handle such exceptions) dies with them, and
  the environmental error becomes a program result.
- ``mode="scoped"`` -- the §4 fix: the interface is finite
  (read throws FileNotFound/AccessDenied, write throws
  DiskFull/AccessDenied); out-of-contract failures are "communicated with
  an escaping error (a Java Error)" that the wrapper catches and scopes.

Both modes record every error crossing in their
:class:`~repro.core.interfaces.ErrorInterface`, feeding the principle
auditor.
"""

from __future__ import annotations

from repro.chirp.protocol import ChirpCode, ChirpReply, ChirpRequest
from repro.condor.protocols import WireSize
from repro.core.classify import DEFAULT_CLASSIFIER
from repro.core.errors import EscapingError, explicit
from repro.core.interfaces import ErrorInterface
from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError, LocalFileSystem
from repro.sim.network import (
    BrokenConnection,
    ConnectionRefused,
    ConnectionTimedOut,
    NetworkError,
)
from repro.jvm import throwables as jt

__all__ = ["CondorIoLibrary", "LocalIoLibrary"]


#: Chirp code -> the Java exception the naive library raises explicitly.
_NAIVE_EXCEPTIONS: dict[ChirpCode, type[jt.Throwable]] = {
    ChirpCode.NOT_FOUND: jt.JFileNotFoundException,
    ChirpCode.NOT_AUTHORIZED: jt.JAccessDeniedException,
    ChirpCode.NO_SPACE: jt.JDiskFullException,
    # The generic-interface sins: machinery errors as IOException subtypes.
    ChirpCode.TIMED_OUT: jt.JConnectionTimedOutException,
    ChirpCode.SERVER_DOWN: jt.JConnectionTimedOutException,
}


class _JCredentialExpiredException(jt.JIOException):
    """The naive library's invented IOException subtype for an expired
    credential -- 'we simply extended the basic IOException to a new
    type.  Although this was easy, it was incorrect.' (§4)"""

    java_name = "CredentialExpiredIOException"


class _JChirpIOException(jt.JIOException):
    """Catch-all IOException for remaining machinery codes (naive mode)."""

    java_name = "ChirpIOException"


_NAIVE_EXCEPTIONS[ChirpCode.CREDENTIAL_EXPIRED] = _JCredentialExpiredException
_NAIVE_EXCEPTIONS[ChirpCode.AUTH_FAILED] = _JChirpIOException
_NAIVE_EXCEPTIONS[ChirpCode.INVALID_REQUEST] = _JChirpIOException
_NAIVE_EXCEPTIONS[ChirpCode.BAD_FD] = _JChirpIOException

#: Chirp machinery code -> the escaping Java Error the scoped library raises.
_SCOPED_ERRORS: dict[ChirpCode, type[jt.JError]] = {
    ChirpCode.TIMED_OUT: jt.JRemoteIoUnavailableError,
    ChirpCode.SERVER_DOWN: jt.JRemoteIoUnavailableError,
    ChirpCode.CREDENTIAL_EXPIRED: jt.JCredentialExpiredError,
    ChirpCode.AUTH_FAILED: jt.JChirpConnectionLostError,
    ChirpCode.INVALID_REQUEST: jt.JChirpConnectionLostError,
    ChirpCode.BAD_FD: jt.JChirpConnectionLostError,
}

#: Chirp in-contract code -> Java exception (both modes).
_CONTRACT_EXCEPTIONS: dict[ChirpCode, type[jt.Throwable]] = {
    ChirpCode.NOT_FOUND: jt.JFileNotFoundException,
    ChirpCode.NOT_AUTHORIZED: jt.JAccessDeniedException,
    ChirpCode.NO_SPACE: jt.JDiskFullException,
}


def _build_interface(mode: str) -> ErrorInterface:
    if mode == "naive":
        iface = ErrorInterface("JavaIO(naive)")
        documented = {"FileNotFound", "EndOfFile"}
        iface.operation("read", documented, generic=True)
        iface.operation("write", documented, generic=True)
        return iface
    iface = ErrorInterface("CondorJavaIO")
    iface.operation("read", {"FileNotFound", "AccessDenied"})
    iface.operation("write", {"DiskFull", "AccessDenied"})
    return iface


class CondorIoLibrary:
    """The I/O library linked into the (simulated) user program."""

    def __init__(
        self,
        sim: Simulator,
        net,
        proxy_host: str,
        proxy_port: int,
        secret: str,
        mode: str = "scoped",
        request_timeout: float = 15.0,
    ):
        if mode not in ("naive", "scoped"):
            raise ValueError(f"mode must be 'naive' or 'scoped', not {mode!r}")
        self.sim = sim
        self.net = net
        self.proxy_host = proxy_host
        self.proxy_port = proxy_port
        self.secret = secret
        self.mode = mode
        self.request_timeout = request_timeout
        self.interface = _build_interface(mode)
        # Publish every crossing on the pool's telemetry bus (the kernel
        # carries it as ``sim.telemetry``) so live auditors see P2/P4
        # material as it happens, not only post-hoc.
        self.interface.bus = getattr(sim, "telemetry", None)
        self._conn = None

    # -- plumbing ----------------------------------------------------------
    def _connection(self):
        if self._conn is None or self._conn.broken:
            self._conn = yield from self.net.connect(
                self.proxy_host, self.proxy_host, self.proxy_port, timeout=5.0
            )
        return self._conn

    def _exchange(self, request: ChirpRequest):
        conn = yield from self._connection()
        conn.send(request, size=WireSize.CONTROL + len(request.data))
        reply = yield from conn.recv(timeout=self.request_timeout)
        return reply

    # -- error presentation --------------------------------------------------
    def _raise_for(self, op: str, code: ChirpCode, path: str):
        """Present Chirp failure *code* to the program, per the mode."""
        classification = DEFAULT_CLASSIFIER.classify("chirp", code.value)
        err = explicit(
            classification.canonical,
            classification.scope,
            detail=path,
            origin="chirp-client",
            time=self.sim.now,
        )
        if self.mode == "naive":
            # The generic interface admits anything; raise the matching
            # IOException subtype as an explicit result.
            self.interface.vet(op, err, time=self.sim.now)
            exc_type = _NAIVE_EXCEPTIONS.get(code, _JChirpIOException)
            raise exc_type(f"{code.value}: {path}")
        # Scoped mode: vet against the finite interface.  In-contract codes
        # come back as explicit results; everything else escapes.
        try:
            self.interface.vet(op, err, time=self.sim.now)
        except EscapingError:
            error_type = _SCOPED_ERRORS.get(code, jt.JChirpConnectionLostError)
            raise error_type(f"{code.value}: {path}") from None
        raise _CONTRACT_EXCEPTIONS[code](f"{code.value}: {path}")

    def _transport_failure(self, op: str, path: str, detail: str):
        """The proxy itself is unreachable (loopback!): machinery failure."""
        err = explicit(
            "ChirpConnectionLost",
            DEFAULT_CLASSIFIER.classify("chirp", "SERVER_DOWN").scope,
            detail=detail,
            origin="chirp-client",
            time=self.sim.now,
        )
        if self.mode == "naive":
            self.interface.vet(op, err, time=self.sim.now)
            raise jt.JConnectionTimedOutException(detail)
        try:
            self.interface.vet(op, err, time=self.sim.now)
        except EscapingError:
            raise jt.JChirpConnectionLostError(detail) from None
        raise AssertionError("transport failures are never in contract")

    # -- the Java-visible API ---------------------------------------------------
    def read_file(self, path: str):
        """Generator: read the whole of *path* via the proxy."""
        try:
            reply = yield from self._exchange(
                ChirpRequest(op="read", path=path, secret=self.secret)
            )
        except (ConnectionTimedOut, BrokenConnection, ConnectionRefused, NetworkError) as exc:
            self._transport_failure("read", path, str(exc))
        if reply.code is ChirpCode.OK:
            return reply.data
        self._raise_for("read", reply.code, path)

    def write_file(self, path: str, data: bytes):
        """Generator: write *data* to *path* via the proxy."""
        try:
            reply = yield from self._exchange(
                ChirpRequest(op="write", path=path, data=data, secret=self.secret)
            )
        except (ConnectionTimedOut, BrokenConnection, ConnectionRefused, NetworkError) as exc:
            self._transport_failure("write", path, str(exc))
        if reply.code is ChirpCode.OK:
            return None
        self._raise_for("write", reply.code, path)

    def close(self) -> None:
        if self._conn is not None and not self._conn.broken:
            self._conn.close()


class LocalIoLibrary:
    """Direct scratch-space I/O (vanilla universe, or tests).

    Presents the same generator API as :class:`CondorIoLibrary`, mapping
    the local file system's explicit errors to the in-contract Java
    exceptions.
    """

    def __init__(self, fs: LocalFileSystem, base_dir: str = "/scratch"):
        self.fs = fs
        self.base_dir = base_dir

    def _full(self, path: str) -> str:
        return path if path.startswith("/") else f"{self.base_dir}/{path}"

    def read_file(self, path: str):
        try:
            return self.fs.read_file(self._full(path))
        except FsError as exc:
            if exc.code == "ENOENT":
                raise jt.JFileNotFoundException(path) from None
            if exc.code == "EACCES":
                raise jt.JAccessDeniedException(path) from None
            raise jt.JIOException(f"{exc.code}: {path}") from None
        yield  # pragma: no cover - generator protocol

    def write_file(self, path: str, data: bytes):
        try:
            return self.fs.write_file(self._full(path), data)
        except FsError as exc:
            if exc.code == "ENOSPC":
                raise jt.JDiskFullException(path) from None
            if exc.code == "EACCES":
                raise jt.JAccessDeniedException(path) from None
            raise jt.JIOException(f"{exc.code}: {path}") from None
        yield  # pragma: no cover

    def close(self) -> None:
        return None
