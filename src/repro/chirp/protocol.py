"""The Chirp wire protocol.

Chirp is deliberately simple: whole-file reads and writes plus stat, each
carrying the shared secret, each answered with one reply whose ``code``
comes from a *finite* set -- the protocol itself honours Principle 4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ChirpCode", "ChirpReply", "ChirpRequest"]


class ChirpCode(enum.Enum):
    """The complete set of Chirp result codes."""

    OK = "OK"
    # Errors within the I/O contract -- the program's own business:
    NOT_FOUND = "NOT_FOUND"
    NOT_AUTHORIZED = "NOT_AUTHORIZED"
    NO_SPACE = "NO_SPACE"
    # Errors of the surrounding machinery:
    AUTH_FAILED = "AUTH_FAILED"  # bad shared secret (proxy-level)
    INVALID_REQUEST = "INVALID_REQUEST"
    SERVER_DOWN = "SERVER_DOWN"  # shadow unreachable / channel broken
    TIMED_OUT = "TIMED_OUT"  # shadow silent (partition, hard-mount hang)
    CREDENTIAL_EXPIRED = "CREDENTIAL_EXPIRED"  # shadow's GSI/Kerberos ticket
    BAD_FD = "BAD_FD"

    @property
    def in_io_contract(self) -> bool:
        """True for codes a program's I/O interface legitimately exposes."""
        return self in (
            ChirpCode.OK,
            ChirpCode.NOT_FOUND,
            ChirpCode.NOT_AUTHORIZED,
            ChirpCode.NO_SPACE,
        )


@dataclass(frozen=True)
class ChirpRequest:
    op: str  # "read" | "write" | "stat"
    path: str
    data: bytes = b""
    secret: str = ""


@dataclass(frozen=True)
class ChirpReply:
    code: ChirpCode
    data: bytes = b""
