"""The starter-side Chirp proxy.

    "The proxy allows the starter to transparently add additional I/O
    functionality to the job without placing any burden on the user."

The proxy accepts Chirp requests on the loopback interface, checks the
shared secret, and forwards each operation to the shadow over the remote
I/O RPC channel.  Its error translation embodies the theory:

- file-system error codes from the shadow pass through as the Chirp codes
  within the I/O contract (``NOT_FOUND``, ``NOT_AUTHORIZED``,
  ``NO_SPACE``);
- transport failures of the RPC channel itself -- which have *process*
  scope at this layer (§3.3) -- are re-presented as the machinery codes
  (``SERVER_DOWN``, ``TIMED_OUT``), gaining significance as they travel.
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.chirp.auth import secrets_equal
from repro.chirp.protocol import ChirpCode, ChirpReply, ChirpRequest
from repro.condor.protocols import WireSize
from repro.remoteio.rpc import Credential, RpcClient, RpcRequest
from repro.sim.engine import Simulator
from repro.sim.network import (
    BrokenConnection,
    ConnectionRefused,
    ConnectionTimedOut,
    HostUnreachable,
    Network,
)

__all__ = ["ChirpProxy"]

#: Wall-time hook set by ``repro.obs.profile.install_wall``.
WALL_PROFILE = None

_FS_TO_CHIRP = {
    "ENOENT": ChirpCode.NOT_FOUND,
    "EACCES": ChirpCode.NOT_AUTHORIZED,
    "EISDIR": ChirpCode.NOT_FOUND,
    "ENOSPC": ChirpCode.NO_SPACE,
    "EIO": ChirpCode.SERVER_DOWN,  # home file system offline
    "ETIMEDOUT": ChirpCode.TIMED_OUT,  # soft-mounted home fs timed out
    "CREDENTIAL_EXPIRED": ChirpCode.CREDENTIAL_EXPIRED,
    "BAD_CREDENTIAL": ChirpCode.CREDENTIAL_EXPIRED,
}


class ChirpProxy:
    """One proxy instance per running job, hosted by the starter."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        host: str,
        port: int,
        secret: str,
        shadow_host: str,
        shadow_port: int,
        credential: Credential | None = None,
        rpc_timeout: float = 10.0,
    ):
        self.sim = sim
        self.net = net
        self.host = host
        self.port = port
        self.secret = secret
        self.shadow_host = shadow_host
        self.shadow_port = shadow_port
        self.credential = credential
        self.rpc_timeout = rpc_timeout
        self.requests_handled = 0
        self._rpc: RpcClient | None = None
        self.listener = net.listen(host, port)
        self._proc = sim.spawn(self._accept_loop(), name=f"chirp-proxy:{host}:{port}")
        self._proc.defuse()

    def close(self) -> None:
        self.listener.close()
        if self._rpc is not None and not self._rpc.connection.broken:
            self._rpc.connection.close()
        self._proc.interrupt("proxy shutdown")

    # -- serving the job-side library ------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._serve(conn), name="chirp-serve")
            handler.defuse()

    def _serve(self, conn):
        try:
            while True:
                request = yield from conn.recv()
                if not isinstance(request, ChirpRequest):
                    conn.send(ChirpReply(ChirpCode.INVALID_REQUEST), size=WireSize.CONTROL)
                    continue
                reply = yield from self._handle(request)
                conn.send(reply, size=WireSize.CONTROL + len(reply.data))
        except BrokenConnection:
            return

    def _handle(self, request: ChirpRequest):
        """Generator: authenticate, forward, translate."""
        self.requests_handled += 1
        reply = yield from self._forward(request)
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "io", "chirp_op",
                channel="chirp", op=request.op, path=request.path,
                code=reply.code.name, bytes=len(reply.data),
            )
        return reply

    def _forward(self, request: ChirpRequest):
        """Generator: the authenticate/forward/translate body.

        The synchronous ends (:meth:`_prepare`, :meth:`_translate`) are
        the channel's real Python cost and carry the wall-time counters;
        the middle is simulated waiting and must never be wall-timed.
        """
        prepared = self._prepare(request)
        if isinstance(prepared, ChirpReply):
            return prepared
        try:
            rpc = yield from self._shadow_rpc()
            reply = yield from rpc.call(prepared)
        except (ConnectionTimedOut,) :
            return ChirpReply(ChirpCode.TIMED_OUT)
        except (BrokenConnection, ConnectionRefused, HostUnreachable):
            self._rpc = None  # force a reconnect attempt next time
            return ChirpReply(ChirpCode.SERVER_DOWN)
        return self._translate(reply)

    def _prepare(self, request: ChirpRequest):
        """Authenticate and translate Chirp -> RPC (an early
        :class:`ChirpReply` rejects the request before any forwarding)."""
        wall = WALL_PROFILE
        t0 = perf_counter_ns() if wall is not None else 0
        try:
            if not secrets_equal(request.secret, self.secret):
                return ChirpReply(ChirpCode.AUTH_FAILED)
            if request.op not in ("read", "write", "stat"):
                return ChirpReply(ChirpCode.INVALID_REQUEST)
            op = {"read": "read_file", "write": "write_file", "stat": "stat"}[request.op]
            return RpcRequest(
                op=op, path=request.path, data=request.data, credential=self.credential
            )
        finally:
            if wall is not None:
                wall.add("chirp.prepare", perf_counter_ns() - t0)

    def _translate(self, reply) -> ChirpReply:
        """Translate the shadow's RPC reply into the job's Chirp code."""
        wall = WALL_PROFILE
        t0 = perf_counter_ns() if wall is not None else 0
        try:
            if reply.ok:
                return ChirpReply(ChirpCode.OK, data=reply.data)
            return ChirpReply(_FS_TO_CHIRP.get(reply.error, ChirpCode.SERVER_DOWN))
        finally:
            if wall is not None:
                wall.add("chirp.translate", perf_counter_ns() - t0)

    def _shadow_rpc(self):
        """Generator: the (re)connected RPC client to the shadow."""
        if self._rpc is None or self._rpc.connection.broken:
            conn = yield from self.net.connect(
                self.host, self.shadow_host, self.shadow_port, timeout=self.rpc_timeout
            )
            self._rpc = RpcClient(conn, timeout=self.rpc_timeout)
        return self._rpc
