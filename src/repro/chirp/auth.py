"""Shared-secret authentication through the local file system.

    "The library authenticates itself to the starter by presenting a
    shared secret revealed to it through the local file system.  Thus,
    the connection is secure to the same degree as the local system."
"""

from __future__ import annotations

import hashlib
import hmac

from repro.sim.filesystem import FsError, LocalFileSystem

__all__ = [
    "SECRET_FILENAME",
    "generate_secret",
    "place_secret",
    "read_secret",
    "secrets_equal",
]

SECRET_FILENAME = "chirp.secret"


def generate_secret(seed_material: str) -> str:
    """Derive a per-execution secret from stable *seed_material*.

    Deterministic on purpose: two runs of the same experiment produce the
    same secrets, keeping traces comparable.
    """
    return hashlib.sha256(("chirp:" + seed_material).encode()).hexdigest()[:32]


def secrets_equal(presented: str, expected: str) -> bool:
    """Constant-time equality for shared secrets and token signatures.

    Wraps :func:`hmac.compare_digest` so comparison time leaks nothing
    about how much of a guessed secret matched.  Used by the Chirp
    proxy's AUTH check and by :mod:`repro.service.auth`'s bearer-token
    verification; both sides must route secret comparison through here
    rather than ``==``.
    """
    return hmac.compare_digest(presented.encode(), expected.encode())


def place_secret(scratch: LocalFileSystem, scratch_dir: str, secret: str) -> str:
    """The starter writes the secret into the job's scratch directory."""
    path = f"{scratch_dir}/{SECRET_FILENAME}"
    scratch.write_file(path, secret.encode())
    return path


def read_secret(scratch: LocalFileSystem, scratch_dir: str) -> str:
    """The I/O library reads the secret back; empty string if missing.

    A missing secret is not fatal here -- the proxy will refuse the
    library with ``AUTH_FAILED``, which is the error path under test.
    """
    try:
        return scratch.read_file(f"{scratch_dir}/{SECRET_FILENAME}").decode()
    except FsError:
        return ""
