"""Output validation: what a correct run should have left behind.

Condor itself "has little recourse for discovering such errors in
applications unless it knows a priori the structure of a job or its valid
inputs and outputs" (§5) -- this module is that a-priori knowledge,
supplied by the user to the layer above Condor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.filesystem import FsError, LocalFileSystem

__all__ = ["JobValidation", "OutputExpectation"]


@dataclass(frozen=True)
class OutputExpectation:
    """One output file and the bytes a correct run produces there."""

    path: str
    expected_data: bytes

    def check(self, home_fs: LocalFileSystem) -> str | None:
        """None if satisfied; otherwise a human-readable discrepancy."""
        try:
            actual = home_fs.read_file(self.path)
        except FsError as exc:
            return f"{self.path}: missing ({exc.code})"
        if actual != self.expected_data:
            return f"{self.path}: content mismatch ({len(actual)} bytes)"
        return None


@dataclass
class JobValidation:
    """Everything the end-to-end layer checks for one job."""

    expectations: list[OutputExpectation] = field(default_factory=list)
    #: Expected delivered result (a ResultFile compared with
    #: ``same_outcome``); None = any program result is acceptable.
    expected_result: object = None

    def validate(self, job, home_fs: LocalFileSystem) -> list[str]:
        """All discrepancies for *job*'s outcome; empty means valid."""
        problems: list[str] = []
        from repro.condor.job import JobState

        if job.state is not JobState.COMPLETED:
            problems.append(f"job not completed: {job.state.value} ({job.hold_reason})")
            return problems
        if self.expected_result is not None:
            if job.final_result is None or not job.final_result.same_outcome(
                self.expected_result
            ):
                problems.append(
                    f"result mismatch: delivered {job.final_result}, "
                    f"expected {self.expected_result}"
                )
        for expectation in self.expectations:
            problem = expectation.check(home_fs)
            if problem is not None:
                problems.append(problem)
        return problems
