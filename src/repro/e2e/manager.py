"""The submit-validate-resubmit loop above Condor (paper §5).

The manager submits jobs with validations attached, waits for the pool
to finish, analyzes the outputs at home, and resubmits any job whose
outputs betray an implicit error -- the only defense against failures
that arrive disguised as success.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.job import Job, JobState, ProgramImage
from repro.e2e.validator import JobValidation

__all__ = ["EndToEndManager", "JobLineage"]


@dataclass
class JobLineage:
    """One logical job and all its physical submissions."""

    validation: JobValidation
    submissions: list[Job] = field(default_factory=list)
    problems_seen: list[str] = field(default_factory=list)
    accepted: Job | None = None

    @property
    def base(self) -> Job:
        return self.submissions[0]

    @property
    def resubmits(self) -> int:
        return len(self.submissions) - 1

    @property
    def valid(self) -> bool:
        return self.accepted is not None


class EndToEndManager:
    """A user agent running above one pool."""

    def __init__(self, pool, max_resubmits: int = 3):
        self.pool = pool
        self.max_resubmits = max_resubmits
        self.lineages: list[JobLineage] = []
        self.validations_run = 0

    # -- intake --------------------------------------------------------
    def submit(self, job: Job, validation: JobValidation) -> JobLineage:
        """Submit *job* with its validation attached."""
        lineage = JobLineage(validation=validation, submissions=[job])
        self.lineages.append(lineage)
        self.pool.submit(job)
        return lineage

    # -- the loop ---------------------------------------------------------
    def run(self, max_time_per_round: float = 100_000.0) -> None:
        """Drive the pool, validating and resubmitting until every lineage
        is accepted or out of resubmit budget."""
        for _round in range(self.max_resubmits + 1):
            self.pool.run_until_done(
                max_time=self.pool.sim.now + max_time_per_round,
                expected_jobs=len(self.pool.schedd.jobs) or None,
            )
            if not self._validate_round():
                break

    def _validate_round(self) -> bool:
        """Validate unaccepted lineages; resubmit invalid ones.

        Returns True if anything was resubmitted (another round needed).
        """
        resubmitted = False
        for lineage in self.lineages:
            if lineage.valid:
                continue
            current = lineage.submissions[-1]
            if not current.is_terminal:
                continue
            self.validations_run += 1
            problems = lineage.validation.validate(current, self.pool.home_fs)
            if not problems:
                lineage.accepted = current
                continue
            lineage.problems_seen.extend(problems)
            if lineage.resubmits >= self.max_resubmits:
                continue  # budget exhausted; lineage stays invalid
            clone = self._clone(current, attempt=lineage.resubmits + 1)
            lineage.submissions.append(clone)
            self.pool.submit(clone)
            resubmitted = True
        return resubmitted

    @staticmethod
    def _clone(job: Job, attempt: int) -> Job:
        """A fresh submission of the same work (new id, clean history)."""
        clone = Job(
            job_id=f"{job.job_id}r{attempt}",
            owner=job.owner,
            universe=job.universe,
            image=ProgramImage(
                name=job.image.name,
                content=job.image.content,
                program=job.image.program,
                corrupt=job.image.corrupt,
            ),
            input_files=dict(job.input_files),
            requirements=job.requirements,
            rank=job.rank,
            image_size=job.image_size,
            heap_request=job.heap_request,
        )
        clone.expected_result = job.expected_result
        return clone

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict[str, int]:
        """Counts for the EXP-E2E table."""
        return {
            "lineages": len(self.lineages),
            "valid": sum(1 for lin in self.lineages if lin.valid),
            "invalid": sum(1 for lin in self.lineages if not lin.valid),
            "resubmits": sum(lin.resubmits for lin in self.lineages),
            "implicit_errors_caught": sum(
                1 for lin in self.lineages if lin.problems_seen
            ),
        }
