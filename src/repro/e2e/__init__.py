"""The end-to-end layer: a process above Condor (paper §5).

    "The end-to-end principle tells us that the ultimate responsibility
    for detecting such errors lies with a higher level of software.  A
    process above Condor may work on behalf of the user to analyze
    outputs and replicate or resubmit jobs that fail due to implicit
    errors or failures in Condor itself."

- :mod:`repro.e2e.validator` -- per-job output expectations;
- :mod:`repro.e2e.manager` -- the submit-validate-resubmit loop.
"""

from repro.e2e.manager import EndToEndManager, JobLineage
from repro.e2e.validator import JobValidation, OutputExpectation

__all__ = ["EndToEndManager", "JobLineage", "JobValidation", "OutputExpectation"]
