"""Delta-debugging shrinker and replayable reproducer specs.

When a cell violates a principle, the interesting question is *which*
injections matter.  :func:`ddmin` (Zeller & Hildebrandt's minimizing
delta debugging) reduces the cell's injection set to a 1-minimal subset
that still violates -- removing any single remaining injection makes the
violation disappear.  Every re-execution is a fresh deterministic cell
run, so the minimization itself is reproducible.

The minimal cell is emitted as a **reproducer spec**: a small JSON
document carrying everything a replay needs (mode, seed, pool shape,
injections) plus the violations it is expected to reproduce.
:func:`replay` rebuilds the cell from the spec, runs it, and compares
the violation set against the expectation -- the acceptance check that
"every reported violation ships with a reproducer that reproduces it".
"""

from __future__ import annotations

import json
from collections.abc import Callable, Sequence

from repro.campaign.spec import CampaignConfig, CellSpec, FaultSpec

__all__ = ["ddmin", "minimize_cell", "replay"]

#: Format tag for reproducer specs (bump on incompatible change).
FORMAT = "repro-campaign-reproducer/1"


def _split(items: tuple, n: int) -> list[tuple]:
    """*items* in *n* contiguous, non-empty, exhaustive chunks."""
    size, rem = divmod(len(items), n)
    chunks, start = [], 0
    for i in range(n):
        width = size + (1 if i < rem else 0)
        if width:
            chunks.append(items[start : start + width])
        start += width
    return chunks


def ddmin(
    items: tuple,
    fails: Callable[[tuple], bool],
) -> tuple:
    """Minimize *items* to a 1-minimal subset for which *fails* holds.

    Classic ddmin: try chunks at increasing granularity, then their
    complements; restart whenever a smaller failing set is found.
    Precondition: ``fails(items)`` is true.
    """
    if not fails(items):
        raise ValueError("ddmin precondition: the full set must fail")
    n = 2
    while len(items) >= 2:
        chunks = _split(items, n)
        reduced = False
        for chunk in chunks:
            if fails(chunk):
                items, n, reduced = chunk, 2, True
                break
        if not reduced:
            for chunk in chunks:
                complement = tuple(x for x in items if x not in chunk)
                if complement and fails(complement):
                    items, n, reduced = complement, max(n - 1, 2), True
                    break
        if not reduced:
            if n >= len(items):
                break
            n = min(n * 2, len(items))
    return items


def minimize_cell(
    cell: CellSpec,
    config: CampaignConfig,
    keep: Callable[[dict], bool] | None = None,
) -> dict:
    """Shrink *cell*'s injections; return the confirmed reproducer spec.

    The default predicate is "this injection subset still produces at
    least one violation"; the final spec records the minimal cell's own
    violation set (which the replay check compares against), not the
    original cell's -- subjects can shift as injections drop out.

    *keep* overrides the predicate with any judgement over the probe
    cell's full record.  The fuzzer passes "still produces *this*
    violation signature", which is what makes an order-3-only violation
    shrink to a 1-minimal *order-3* reproducer instead of collapsing
    onto whichever single fault violates something else first.
    """
    from repro.campaign.engine import run_cell_record

    def record_of(injections: Sequence[FaultSpec]) -> dict:
        probe = cell.with_injections(tuple(injections))
        return run_cell_record(probe, config)

    def fails(injections: Sequence[FaultSpec]) -> bool:
        record = record_of(injections)
        return keep(record) if keep is not None else bool(record["violations"])

    minimal = ddmin(cell.injections, fails)
    confirmed = record_of(minimal)["violations"]  # the confirmation run
    return {
        "format": FORMAT,
        "cell": cell.with_injections(minimal).cell_id,
        "mode": cell.mode,
        "seed": cell.seed,
        "n_jobs": config.n_jobs,
        "n_machines": config.n_machines,
        "max_retries": config.max_retries,
        "max_time": config.max_time,
        "federation": config.federation,
        "defenses": config.defenses,
        "injections": [spec.as_dict() for spec in minimal],
        "expect": confirmed,
    }


def replay(spec: dict | str) -> dict:
    """Re-run a reproducer spec (dict, or path to its JSON file).

    Returns ``{"reproduced": bool, "cell", "expect", "violations"}``
    where *reproduced* means the replayed violation set equals the
    spec's expectation exactly (the runs are deterministic, so anything
    short of equality is a real divergence).
    """
    from repro.campaign.engine import run_cell_record

    if isinstance(spec, str):
        with open(spec, encoding="utf-8") as fh:
            spec = json.load(fh)
    if spec.get("format") != FORMAT:
        raise ValueError(f"not a campaign reproducer spec: format={spec.get('format')!r}")
    config = CampaignConfig(
        mode=spec["mode"],
        seed=int(spec["seed"]),
        n_jobs=int(spec["n_jobs"]),
        n_machines=int(spec["n_machines"]),
        max_retries=int(spec["max_retries"]),
        max_time=float(spec["max_time"]),
        federation=bool(spec.get("federation", False)),
        defenses=bool(spec.get("defenses", False)),
    )
    injections = tuple(FaultSpec.from_dict(d) for d in spec["injections"])
    cell = CellSpec(
        cell_id=str(spec.get("cell", "replay")),
        mode=config.mode,
        seed=config.seed,
        injections=injections,
    )
    record = run_cell_record(cell, config)

    def key(violation: dict) -> tuple:
        return (violation["principle"], violation["subject"], violation["description"])

    expect = sorted(map(key, spec.get("expect", [])))
    got = sorted(map(key, record["violations"]))
    return {
        "reproduced": expect == got and bool(got),
        "cell": cell.cell_id,
        "expect": spec.get("expect", []),
        "violations": record["violations"],
    }
