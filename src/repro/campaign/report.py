"""Console rendering for campaign reports.

The JSON report (:func:`repro.campaign.engine.run_campaign`'s return
value) is the artifact; this module is only its human-readable face --
one row per cell, violation counts per principle, the live/post-hoc
cross-check, and whether a reproducer was minimized.  When the campaign
ran with ``--profile``, each cell record carries a sim-time attribution
section and :func:`render_cell_profiles` turns it into per-cell
"where time went" tables.
"""

from __future__ import annotations

from repro.harness.report import Table

__all__ = ["render_cell_profiles", "render_summary"]


def _principle_counts(violations: list[dict]) -> dict[int, int]:
    counts = {1: 0, 2: 0, 3: 0, 4: 0}
    for violation in violations:
        counts[violation["principle"]] += 1
    return counts


def render_summary(report: dict) -> str:
    """The campaign summary table for the console."""
    campaign = report["campaign"]
    table = Table(
        ["cell", "jobs c/h/u", "P1", "P2", "P3", "P4", "live==posthoc", "reproducer"],
        title=(
            f"fault campaign: mode={campaign['mode']} seed={campaign['seed']} "
            f"({report['totals']['cells']} cells)"
        ),
    )
    for record in report["cells"]:
        counts = _principle_counts(record["violations"])
        jobs = record["jobs"]
        # Strip the common mode/seed prefix; the title already carries it.
        label = record["cell"].split("/", 2)[-1]
        table.add_row([
            label,
            f"{jobs['completed']}/{jobs['held']}/{jobs['unfinished']}",
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            "ok" if record["live_matches_posthoc"] else "MISMATCH",
            "minimal" if record["reproducer"] is not None else "-",
        ])
    totals = report["totals"]
    by_principle = totals["by_principle"]
    table.add_footer(
        f"{totals['violations']} violations in "
        f"{totals['cells_with_violations']}/{totals['cells']} cells  "
        + "  ".join(f"{p}={by_principle[p]}" for p in ("P1", "P2", "P3", "P4"))
    )
    if totals["live_mismatches"]:
        table.add_footer(
            f"WARNING: {totals['live_mismatches']} cell(s) where live and "
            f"post-hoc verdicts disagree"
        )
    return table.render()


def render_cell_profiles(report: dict, top: int = 5) -> str:
    """Per-cell "where time went" tables for a ``--profile`` campaign.

    Cells without a profile section (campaign ran unprofiled) render
    nothing; the empty string keeps callers composable.
    """
    blocks: list[str] = []
    for record in report["cells"]:
        profile = record.get("profile")
        if not profile:
            continue
        table = Table(
            ["daemon", "phase", "scope", "sim time (s)", "events"],
            title=f"where time went: {record['cell']}",
        )
        for triple in profile["top"][:top]:
            table.add_row([
                triple["daemon"],
                triple["phase"],
                triple["scope"],
                f"{triple['sim_time']:.3f}",
                triple["events"],
            ])
        table.add_footer(
            f"total {profile['sim_time']:.3f}s over {profile['events']} events"
        )
        blocks.append(table.render())
    return "\n\n".join(blocks)
