"""Console rendering for campaign reports.

The JSON report (:func:`repro.campaign.engine.run_campaign`'s return
value) is the artifact; this module is only its human-readable face --
one row per cell, violation counts per principle, the live/post-hoc
cross-check, and whether a reproducer was minimized.  When the campaign
ran with ``--profile``, each cell record carries a sim-time attribution
section and :func:`render_cell_profiles` turns it into per-cell
"where time went" tables.
"""

from __future__ import annotations

from repro.harness.report import Table

__all__ = ["makespan_footer", "render_cell_profiles", "render_fuzz_summary", "render_summary"]


def makespan_footer(cells: list[dict]) -> str | None:
    """The GridConsole jobs-panel footer, over a whole campaign's cells.

    Pools every cell's job makespans into one histogram and quotes the
    same ``p50/p95/p99`` triple via
    :meth:`~repro.obs.metrics.MetricsRegistry.histogram_percentile`.
    None when no cell finished a job (empty histogram), so callers emit
    no footer rather than a degenerate one.
    """
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    for record in cells:
        for value in record.get("job_makespans") or ():
            registry.histogram("job_makespan_seconds", value)
    p50 = registry.histogram_percentile("job_makespan_seconds", 50)
    if p50 is None:
        return None
    p95 = registry.histogram_percentile("job_makespan_seconds", 95)
    p99 = registry.histogram_percentile("job_makespan_seconds", 99)
    return f"makespan p50={p50:.1f}s p95={p95:.1f}s p99={p99:.1f}s"


def _principle_counts(violations: list[dict]) -> dict[int, int]:
    counts = {1: 0, 2: 0, 3: 0, 4: 0}
    for violation in violations:
        counts[violation["principle"]] += 1
    return counts


def render_summary(report: dict) -> str:
    """The campaign summary table for the console."""
    campaign = report["campaign"]
    table = Table(
        ["cell", "jobs c/h/u", "P1", "P2", "P3", "P4", "live==posthoc", "reproducer"],
        title=(
            f"fault campaign: mode={campaign['mode']} seed={campaign['seed']} "
            f"({report['totals']['cells']} cells)"
        ),
    )
    for record in report["cells"]:
        counts = _principle_counts(record["violations"])
        jobs = record["jobs"]
        # Strip the common mode/seed prefix; the title already carries it.
        label = record["cell"].split("/", 2)[-1]
        table.add_row([
            label,
            f"{jobs['completed']}/{jobs['held']}/{jobs['unfinished']}",
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            "ok" if record["live_matches_posthoc"] else "MISMATCH",
            "minimal" if record["reproducer"] is not None else "-",
        ])
    totals = report["totals"]
    by_principle = totals["by_principle"]
    table.add_footer(
        f"{totals['violations']} violations in "
        f"{totals['cells_with_violations']}/{totals['cells']} cells  "
        + "  ".join(f"{p}={by_principle[p]}" for p in ("P1", "P2", "P3", "P4"))
    )
    footer = makespan_footer(report["cells"])
    if footer is not None:
        table.add_footer(footer)
    if totals["live_mismatches"]:
        table.add_footer(
            f"WARNING: {totals['live_mismatches']} cell(s) where live and "
            f"post-hoc verdicts disagree"
        )
    return table.render()


def render_fuzz_summary(report: dict) -> str:
    """The fuzzing-campaign summary for the console.

    A fuzz report carries hundreds of cells, most of them boring by
    construction (no novel coverage), so the table shows the campaign's
    *discoveries* -- one row per distinct violation signature with the
    cell budget spent reaching it and the 1-minimal reproducer order --
    instead of one row per cell.
    """
    campaign = report["campaign"]
    totals = report["totals"]
    table = Table(
        ["violation signature", "found at cell", "order", "minimal orders"],
        title=(
            f"fuzz campaign: mode={campaign['mode']} seed={campaign['seed']} "
            f"({totals['cells']} cells, {totals['batches']} batches)"
        ),
    )
    minimal_orders: dict[str, list[int]] = {}
    for repro in report["reproducers"]:
        minimal_orders.setdefault(repro["signature"], []).append(repro["order"])
    signatures = sorted(
        report["violations"]["signatures"].items(),
        key=lambda item: (item[1]["cells_executed"], item[0]),
    )
    for feature, found in signatures:
        # "viol:P3:subject:description" -> "P3 subject: description"
        _, principle, rest = feature.split(":", 2)
        orders = sorted(set(minimal_orders.get(feature, [])))
        table.add_row([
            f"{principle} {rest.replace(':', ': ', 1)}",
            found["cells_executed"],
            found["order"],
            ",".join(map(str, orders)) if orders else "-",
        ])
    by_principle = totals["by_principle"]
    table.add_footer(
        f"{totals['distinct_violations']} distinct violations "
        f"({totals['violations']} raw) in "
        f"{totals['cells_with_violations']}/{totals['cells']} cells  "
        + "  ".join(f"{p}={by_principle[p]}" for p in ("P1", "P2", "P3", "P4"))
    )
    table.add_footer(
        f"coverage: {totals['features']} features, corpus {totals['corpus']} "
        f"cells, {len(report['reproducers'])} reproducers "
        f"(deepest 1-minimal: order {totals['max_minimal_order']})"
    )
    first = report["violations"]["first_violation_at"]
    everything = report["violations"]["all_principles_at"]
    table.add_footer(
        "first violation at cell "
        + ("-" if first is None else str(first))
        + ", all principles at cell "
        + ("-" if everything is None else str(everything))
    )
    footer = makespan_footer(report["cells"])
    if footer is not None:
        table.add_footer(footer)
    if totals["live_mismatches"]:
        table.add_footer(
            f"WARNING: {totals['live_mismatches']} cell(s) where live and "
            f"post-hoc verdicts disagree"
        )
    if totals["errors"]:
        table.add_footer(
            f"note: {totals['errors']} cell(s) errored and were recorded "
            f"as cell-error signatures"
        )
    return table.render()


def render_cell_profiles(report: dict, top: int = 5) -> str:
    """Per-cell "where time went" tables for a ``--profile`` campaign.

    Cells without a profile section (campaign ran unprofiled) render
    nothing; the empty string keeps callers composable.
    """
    blocks: list[str] = []
    for record in report["cells"]:
        profile = record.get("profile")
        if not profile:
            continue
        table = Table(
            ["daemon", "phase", "scope", "sim time (s)", "events"],
            title=f"where time went: {record['cell']}",
        )
        for triple in profile["top"][:top]:
            table.add_row([
                triple["daemon"],
                triple["phase"],
                triple["scope"],
                f"{triple['sim_time']:.3f}",
                triple["events"],
            ])
        table.add_footer(
            f"total {profile['sim_time']:.3f}s over {profile['events']} events"
        )
        blocks.append(table.render())
    return "\n\n".join(blocks)
