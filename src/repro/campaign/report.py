"""Console rendering for campaign reports.

The JSON report (:func:`repro.campaign.engine.run_campaign`'s return
value) is the artifact; this module is only its human-readable face --
one row per cell, violation counts per principle, the live/post-hoc
cross-check, and whether a reproducer was minimized.
"""

from __future__ import annotations

from repro.harness.report import Table

__all__ = ["render_summary"]


def _principle_counts(violations: list[dict]) -> dict[int, int]:
    counts = {1: 0, 2: 0, 3: 0, 4: 0}
    for violation in violations:
        counts[violation["principle"]] += 1
    return counts


def render_summary(report: dict) -> str:
    """The campaign summary table for the console."""
    campaign = report["campaign"]
    table = Table(
        ["cell", "jobs c/h/u", "P1", "P2", "P3", "P4", "live==posthoc", "reproducer"],
        title=(
            f"fault campaign: mode={campaign['mode']} seed={campaign['seed']} "
            f"({report['totals']['cells']} cells)"
        ),
    )
    for record in report["cells"]:
        counts = _principle_counts(record["violations"])
        jobs = record["jobs"]
        # Strip the common mode/seed prefix; the title already carries it.
        label = record["cell"].split("/", 2)[-1]
        table.add_row([
            label,
            f"{jobs['completed']}/{jobs['held']}/{jobs['unfinished']}",
            counts[1],
            counts[2],
            counts[3],
            counts[4],
            "ok" if record["live_matches_posthoc"] else "MISMATCH",
            "minimal" if record["reproducer"] is not None else "-",
        ])
    totals = report["totals"]
    by_principle = totals["by_principle"]
    table.add_footer(
        f"{totals['violations']} violations in "
        f"{totals['cells_with_violations']}/{totals['cells']} cells  "
        + "  ".join(f"{p}={by_principle[p]}" for p in ("P1", "P2", "P3", "P4"))
    )
    if totals["live_mismatches"]:
        table.add_footer(
            f"WARNING: {totals['live_mismatches']} cell(s) where live and "
            f"post-hoc verdicts disagree"
        )
    return table.render()
