"""The ``campaign`` CLI subcommand: ``python -m repro.harness campaign``.

Examples::

    python -m repro.harness campaign
    python -m repro.harness campaign --mode classic --seed 3
    python -m repro.harness campaign --jobs 4 --json report.json
    python -m repro.harness campaign --kinds MisconfiguredJvm,CredentialExpiry
    python -m repro.harness campaign --order 2 --mode classic
    python -m repro.harness campaign --fail-fast --mode scoped
    python -m repro.harness campaign --profile --kinds MachineCrash
    python -m repro.harness campaign --replay reproducer.json
    python -m repro.harness campaign fuzz --mode classic --seed 7 \\
        --budget-cells 200
    python -m repro.harness campaign fuzz --resume checkpoint.json

``--json`` writes the canonical campaign report (wall clock never enters
it, so same-seed runs are byte-identical regardless of ``--jobs``).
``--replay`` re-runs a shrunken reproducer spec and exits 0 only if the
expected violations reproduce exactly.  The ``fuzz`` subcommand swaps
exhaustive enumeration for the coverage-guided explorer
(:mod:`repro.campaign.fuzz`): same determinism contract, a budget
instead of a matrix, and ``--checkpoint``/``--resume`` for campaigns
long enough to interrupt.
"""

from __future__ import annotations

import argparse
import time

from repro.campaign.engine import run_campaign
from repro.campaign.report import render_cell_profiles, render_fuzz_summary, render_summary
from repro.campaign.shrink import replay
from repro.campaign.spec import CATALOGUE, CampaignConfig
from repro.harness.parallel import WorkerFailure, positive_worker_count
from repro.obs.export import dump_json
from repro.obs.sanitize import PrincipleViolationError

__all__ = ["fuzz_main", "main"]


def _ingest_report(db_path: str, report: dict, source: str) -> None:
    """Record a campaign/fuzz report in the longitudinal results store."""
    from repro.obs.store import ResultsStore, default_commit

    store = ResultsStore(db_path)
    try:
        commit = default_commit()
        run_id = store.ingest_obj(report, source=source, commit=commit)
        print(f"ingested {source} -> run {run_id} ({db_path} @ {commit})")
    finally:
        store.close()


def fuzz_main(argv: list[str] | None = None) -> int:
    from repro.campaign.fuzz import FuzzConfig, load_checkpoint, run_fuzz

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness campaign fuzz",
        description="Explore the fault space coverage-guided instead of "
                    "exhaustively; audit every cell for P1-P4.",
    )
    parser.add_argument("--mode", default="scoped",
                        choices=("scoped", "naive", "classic"),
                        help="error handling under test (classic = naive)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=positive_worker_count, default=1, metavar="N",
                        help="run each batch over N worker processes")
    parser.add_argument("--budget-cells", type=int, default=200, metavar="B",
                        help="total cells the campaign may execute")
    parser.add_argument("--batch-size", type=int, default=16, metavar="K",
                        help="cells proposed per generation")
    parser.add_argument("--order-max", type=int, default=3, metavar="K",
                        help="maximum simultaneous faults per mutated cell")
    parser.add_argument("--kinds", default=None, metavar="A,B,...",
                        help="restrict the catalogue to these fault kinds")
    parser.add_argument("--federation", action="store_true",
                        help="run every cell against a two-pool flocking grid "
                             "(enables federation-only fault kinds)")
    parser.add_argument("--defenses", action="store_true",
                        help="turn on the §5 defenses in every cell")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the fuzz report as canonical JSON")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="write the full campaign state there after "
                             "every batch (for --resume)")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="pick a campaign up from a checkpoint file "
                             "(its config wins; other flags are rejected "
                             "if they disagree)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing a reproducer per violation")
    parser.add_argument("--results-db", metavar="PATH", default=None,
                        help="ingest the fuzz report into this results store")
    args = parser.parse_args(argv)

    resume_state = None
    if args.resume is not None:
        config, resume_state = load_checkpoint(args.resume)
    else:
        if args.budget_cells < 1:
            parser.error("--budget-cells must be >= 1")
        if args.batch_size < 1:
            parser.error("--batch-size must be >= 1")
        if args.order_max < 1:
            parser.error("--order-max must be >= 1")
        kinds = None if args.kinds is None else tuple(
            k for k in args.kinds.split(",") if k
        )
        config = FuzzConfig(
            campaign=CampaignConfig(
                mode=args.mode,
                seed=args.seed,
                kinds=kinds,
                federation=args.federation,
                defenses=args.defenses,
            ),
            budget_cells=args.budget_cells,
            batch_size=args.batch_size,
            order_max=args.order_max,
        )
    started = time.perf_counter()
    try:
        report = run_fuzz(
            config,
            jobs=args.jobs,
            shrink=not args.no_shrink,
            checkpoint=args.checkpoint,
            resume=resume_state,
        )
    except WorkerFailure as exc:
        raise SystemExit(f"fuzz worker failed: {exc}") from exc
    print(render_fuzz_summary(report))
    print(f"wall clock {time.perf_counter() - started:.3f}s")
    if args.json:
        dump_json(args.json, report)
    if args.results_db:
        _ingest_report(args.results_db, report,
                       source=f"campaign-fuzz:{config.campaign.mode}"
                              f"@{config.campaign.seed}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness campaign",
        description="Sweep the fault catalogue and audit every cell for P1-P4.",
    )
    parser.add_argument("--mode", default="scoped",
                        choices=("scoped", "naive", "classic"),
                        help="error handling under test (classic = naive)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=positive_worker_count, default=1, metavar="N",
                        help="run cells over N worker processes")
    parser.add_argument("--order", type=int, default=1, metavar="K",
                        help="also sweep multi-fault combinations up to size K")
    parser.add_argument("--kinds", default=None, metavar="A,B,...",
                        help="restrict the catalogue to these fault kinds")
    parser.add_argument("--federation", action="store_true",
                        help="run every cell against a two-pool flocking grid "
                             "(enables federation-only fault kinds)")
    parser.add_argument("--defenses", action="store_true",
                        help="turn on the §5 defenses (startd self-test "
                             "re-probe, schedd backoff avoidance) in every cell")
    parser.add_argument("--list-kinds", action="store_true",
                        help="list the fault catalogue and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the campaign report as canonical JSON")
    parser.add_argument("--profile", action="store_true",
                        help="attach the sim-time profiler to every cell and "
                             "render per-cell 'where time went' summaries")
    parser.add_argument("--fail-fast", action="store_true",
                        help="raise on the first live violation (debugging)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta-debugging violating cells")
    parser.add_argument("--replay", metavar="SPEC", default=None,
                        help="re-run a reproducer spec instead of a campaign")
    parser.add_argument("--results-db", metavar="PATH", default=None,
                        help="ingest the campaign report into this results store")
    args = parser.parse_args(argv)

    if args.list_kinds:
        print("fault catalogue:")
        for info in CATALOGUE:
            window = "windows: all" if info.disarmable else "windows: open-ended only"
            fed = "; needs --federation" if info.needs_federation else ""
            print(f"  {info.kind}  (target: {info.target}; {window}{fed})")
        return 0

    if args.replay is not None:
        outcome = replay(args.replay)
        status = "reproduced" if outcome["reproduced"] else "NOT reproduced"
        print(f"{outcome['cell']}: {status}")
        for violation in outcome["violations"]:
            print(f"  P{violation['principle']} [{violation['subject']}]: "
                  f"{violation['description']}")
        return 0 if outcome["reproduced"] else 1

    if args.order < 1:
        parser.error("--order must be >= 1")
    kinds = None if args.kinds is None else tuple(
        k for k in args.kinds.split(",") if k
    )
    config = CampaignConfig(
        mode=args.mode,
        seed=args.seed,
        max_order=args.order,
        kinds=kinds,
        fail_fast=args.fail_fast,
        federation=args.federation,
        defenses=args.defenses,
    )
    started = time.perf_counter()
    try:
        report = run_campaign(
            config,
            jobs=args.jobs,
            shrink=not args.no_shrink,
            profile=args.profile,
        )
    except WorkerFailure as exc:
        if args.fail_fast and "PrincipleViolationError" in str(exc):
            # The runner wraps the cell's fail-fast raise; the message
            # already names the cell and the violation.
            print(f"fail-fast: {exc}")
            return 1
        raise SystemExit(f"campaign worker failed: {exc}") from exc
    except PrincipleViolationError as exc:
        # --fail-fast froze a cell at its first live violation (shrink
        # replays in-process, outside the runner).
        print(f"fail-fast: {exc}")
        return 1
    summary = render_summary(report)
    print(summary)
    if args.profile:
        profiles = render_cell_profiles(report)
        if profiles:
            print()
            print(profiles)
    print(f"wall clock {time.perf_counter() - started:.3f}s")
    if args.json:
        dump_json(args.json, report)
    if args.results_db:
        _ingest_report(args.results_db, report,
                       source=f"campaign:{config.mode}@{config.seed}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via repro.harness
    raise SystemExit(main())
