"""The fuzzer's corpus: cells that taught us something, with energies.

A cell joins the corpus the moment it discovers at least one coverage
feature no earlier cell produced (:class:`~repro.campaign.coverage.CoverageMap`).
Corpus entries are the *parents* of the next generation: the mutation
engine draws one (or two, for crossover) per proposed child.

Selection follows a **power schedule** in the AFL tradition, adapted to
the fault space: an entry's energy is the summed rarity of its features
(``1 / global hit count``), with a flat bonus per violation feature it
*discovered* -- so parents sitting on rarely-exercised propagation paths
or fresh principle violations breed more, and parents whose behaviour
the campaign has seen a thousand times fade without ever being evicted.
Everything is driven by a caller-supplied seeded PRNG; the corpus itself
holds no randomness, which keeps checkpoint/resume byte-exact.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.campaign.spec import CellSpec

__all__ = ["Corpus", "CorpusEntry"]

#: Flat energy bonus per *discovered* violation feature: violations are
#: the campaign's goal, so their neighbourhoods deserve extra children.
VIOLATION_BONUS = 2.0

#: Energy floor so no corpus entry is ever completely sterile.
MIN_ENERGY = 0.05


@dataclass(frozen=True)
class CorpusEntry:
    """One coverage-earning cell and what it contributed."""

    cell: CellSpec
    #: the cell's full signature (sorted feature strings)
    signature: tuple[str, ...]
    #: the subset of ``signature`` this cell was first to produce
    novel: tuple[str, ...]
    #: batch in which the cell executed
    batch: int
    #: violation count of the cell's record (raw, not deduplicated)
    violations: int

    def as_dict(self) -> dict:
        return {
            "cell": self.cell.as_dict(),
            "signature": list(self.signature),
            "novel": list(self.novel),
            "batch": self.batch,
            "violations": self.violations,
        }

    @classmethod
    def from_dict(cls, data: dict) -> CorpusEntry:
        return cls(
            cell=CellSpec.from_dict(data["cell"]),
            signature=tuple(data["signature"]),
            novel=tuple(data["novel"]),
            batch=int(data["batch"]),
            violations=int(data["violations"]),
        )


class Corpus:
    """Ordered collection of :class:`CorpusEntry` with energy selection."""

    def __init__(self, entries: list[CorpusEntry] | None = None):
        self.entries: list[CorpusEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def add(self, entry: CorpusEntry) -> None:
        self.entries.append(entry)

    # -- the power schedule ---------------------------------------------
    def energies(self, hits: Mapping[str, int]) -> list[float]:
        """One energy per entry: summed feature rarity + violation bonus.

        *hits* maps feature -> how many executed cells produced it
        (maintained by the campaign, not the corpus, because hit counts
        are additive across cells while coverage merge must stay
        idempotent).
        """
        energies = []
        for entry in self.entries:
            energy = sum(1.0 / max(1, hits.get(f, 1)) for f in entry.signature)
            energy += VIOLATION_BONUS * sum(
                1 for f in entry.novel if f.startswith("viol:")
            )
            energies.append(max(energy, MIN_ENERGY))
        return energies

    def select(self, rng: random.Random, hits: Mapping[str, int]) -> CorpusEntry:
        """Draw one parent, energy-weighted, via the caller's PRNG."""
        if not self.entries:
            raise IndexError("cannot select from an empty corpus")
        if len(self.entries) == 1:
            return self.entries[0]
        return rng.choices(self.entries, weights=self.energies(hits), k=1)[0]

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> list[dict]:
        return [entry.as_dict() for entry in self.entries]

    @classmethod
    def from_dict(cls, data: list[dict]) -> Corpus:
        return cls([CorpusEntry.from_dict(d) for d in data])
