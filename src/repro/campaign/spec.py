"""Campaign cell specifications: the enumerable, replayable fault matrix.

Everything here is built from frozen dataclasses over primitives, for
three load-bearing reasons:

- **hashable** -- the :class:`~repro.harness.parallel.ParallelRunner`
  keys its merge on the work item, so a cell spec must hash;
- **picklable** -- cells cross process boundaries under ``--jobs N``;
- **JSON-round-trippable** -- a shrunken reproducer spec is just a cell
  spec written to disk, and replaying it rebuilds the identical cell.

A :class:`FaultSpec` names a catalogue fault by kind plus its target
(site or job index) and injection window; :func:`build_fault` is the
single place that turns one into a live :class:`~repro.faults.Fault`
against a pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.faults import (
    BlackHoleChurn,
    CorruptProgramImage,
    CredentialExpiry,
    Fault,
    FlockLinkDown,
    HomeDiskFull,
    HomeFilesystemOffline,
    JvmBinaryMissing,
    MachineChurn,
    MachineCrash,
    MemoryPressure,
    MisconfiguredJvm,
    MissingInputFile,
    NetworkPartition,
    ScratchDiskFull,
)

__all__ = [
    "CATALOGUE",
    "CampaignConfig",
    "CellSpec",
    "FaultSpec",
    "build_fault",
    "enumerate_cells",
]

MB = 2**20


@dataclass(frozen=True)
class KindInfo:
    """Catalogue metadata for one fault kind."""

    kind: str
    #: "site" (per-machine), "job" (per-job), or "pool" (global)
    target: str
    #: False for faults whose arm() is irreversible -- such kinds only
    #: get the open-ended window (a bounded window would call disarm()).
    disarmable: bool = True
    #: True for faults that only make sense against a federation (a
    #: flock link cannot go down on a solitary pool).
    needs_federation: bool = False


#: The explicit-fault catalogue the campaign sweeps (faults.py table).
#: SilentDataCorruption is deliberately absent: it produces *implicit*
#: errors the P1 audit excludes by design (only the end-to-end layer can
#: catch those), so a campaign cell could never judge it.
CATALOGUE: tuple[KindInfo, ...] = (
    KindInfo("MisconfiguredJvm", "site"),
    KindInfo("JvmBinaryMissing", "site"),
    KindInfo("ScratchDiskFull", "site"),
    KindInfo("MachineCrash", "site"),
    KindInfo("NetworkPartition", "site"),
    KindInfo("MemoryPressure", "site"),
    KindInfo("HomeFilesystemOffline", "pool"),
    KindInfo("CredentialExpiry", "pool"),
    KindInfo("CorruptProgramImage", "job"),
    KindInfo("MissingInputFile", "job", disarmable=False),
    KindInfo("HomeDiskFull", "pool"),
    # Federation-era kinds (PR 8): machine churn works against any pool;
    # a flock link can only fail where flock links exist.
    KindInfo("MachineChurn", "site"),
    KindInfo("BlackHoleChurn", "site"),
    KindInfo("FlockLinkDown", "pool", needs_federation=True),
)

_KIND_INFO: dict[str, KindInfo] = {info.kind: info for info in CATALOGUE}


@dataclass(frozen=True)
class FaultSpec:
    """One catalogue fault with its target and injection window."""

    kind: str
    site: str | None = None
    job_index: int | None = None
    at: float = 0.0
    until: float | None = None

    def describe(self) -> str:
        target = self.site or (
            f"job{self.job_index}" if self.job_index is not None else "pool"
        )
        window = f"t{self.at:g}-" + (f"{self.until:g}" if self.until is not None else "end")
        return f"{self.kind}@{target}[{window}]"

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "job_index": self.job_index,
            "at": self.at,
            "until": self.until,
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultSpec:
        return cls(
            kind=data["kind"],
            site=data.get("site"),
            job_index=data.get("job_index"),
            at=float(data.get("at", 0.0)),
            until=None if data.get("until") is None else float(data["until"]),
        )


@dataclass(frozen=True)
class CellSpec:
    """One campaign cell: a mode, a seed, and an injection set."""

    cell_id: str
    mode: str
    seed: int
    injections: tuple[FaultSpec, ...]

    def with_injections(self, injections: tuple[FaultSpec, ...]) -> CellSpec:
        """The same cell restricted to *injections* (for shrinking)."""
        label = "+".join(spec.describe() for spec in injections) or "clean"
        return CellSpec(
            cell_id=f"{self.mode}/s{self.seed}/{label}",
            mode=self.mode,
            seed=self.seed,
            injections=injections,
        )

    @property
    def order(self) -> int:
        """The cell's fault order (number of simultaneous injections)."""
        return len(self.injections)

    def as_dict(self) -> dict:
        return {
            "cell_id": self.cell_id,
            "mode": self.mode,
            "seed": self.seed,
            "injections": [spec.as_dict() for spec in self.injections],
        }

    @classmethod
    def from_dict(cls, data: dict) -> CellSpec:
        return cls(
            cell_id=str(data["cell_id"]),
            mode=str(data["mode"]),
            seed=int(data["seed"]),
            injections=tuple(FaultSpec.from_dict(d) for d in data["injections"]),
        )


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that shapes a campaign, frozen so cells pickle with it."""

    mode: str = "scoped"
    seed: int = 0
    n_jobs: int = 4
    n_machines: int = 3
    #: maximum number of simultaneous faults per cell (1 = singles only)
    max_order: int = 1
    #: injection windows swept per fault: (at, until); None = open-ended
    windows: tuple[tuple[float, float | None], ...] = ((0.0, None), (90.0, 420.0))
    #: restrict to these kinds (None = the full catalogue)
    kinds: tuple[str, ...] | None = None
    #: machines targeted by site faults
    sites: tuple[str, ...] = ("exec000",)
    #: workload indices targeted by job faults
    job_indices: tuple[int, ...] = (0,)
    max_retries: int = 6
    max_time: float = 100_000.0
    fail_fast: bool = False
    #: run every cell against a two-pool Grid (flocking on) instead of a
    #: solitary Pool; required by federation-only fault kinds
    federation: bool = False
    #: machines in the remote pool when ``federation`` is on
    remote_machines: int = 3
    #: turn on the §5 defenses (startd self-test with periodic re-probe,
    #: schedd backoff avoidance) in every cell
    defenses: bool = False

    def catalogue(self) -> tuple[KindInfo, ...]:
        if self.kinds is None:
            return tuple(
                info for info in CATALOGUE
                if self.federation or not info.needs_federation
            )
        unknown = set(self.kinds) - set(_KIND_INFO)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"catalogue: {sorted(_KIND_INFO)}"
            )
        needy = [
            k for k in self.kinds
            if _KIND_INFO[k].needs_federation and not self.federation
        ]
        if needy:
            raise ValueError(
                f"fault kind(s) {sorted(needy)} need --federation "
                "(a solitary pool has no flock links)"
            )
        return tuple(info for info in CATALOGUE if info.kind in self.kinds)


def _targets(info: KindInfo, config: CampaignConfig) -> tuple[dict, ...]:
    """The (site/job_index) bindings this kind sweeps."""
    if info.target == "site":
        return tuple({"site": site} for site in config.sites)
    if info.target == "job":
        return tuple({"job_index": index} for index in config.job_indices)
    return ({},)


def _single_specs(config: CampaignConfig) -> list[FaultSpec]:
    """Every single-fault spec in the matrix, catalogue order."""
    specs = []
    for info in config.catalogue():
        for target in _targets(info, config):
            for at, until in config.windows:
                if until is not None and not info.disarmable:
                    continue
                specs.append(FaultSpec(kind=info.kind, at=at, until=until, **target))
    return specs


def enumerate_cells(config: CampaignConfig) -> tuple[CellSpec, ...]:
    """The full cell matrix: singles, then combos up to ``max_order``.

    Combinations pair *distinct kinds*, each at its first target with the
    open-ended window -- pairing every window x target x kind squares the
    matrix for little extra coverage (the shrinker reduces any violating
    combo back to its essential subset anyway).
    """

    def cell(injections: tuple[FaultSpec, ...]) -> CellSpec:
        label = "+".join(spec.describe() for spec in injections)
        return CellSpec(
            cell_id=f"{config.mode}/s{config.seed}/{label}",
            mode=config.mode,
            seed=config.seed,
            injections=injections,
        )

    cells = [cell((spec,)) for spec in _single_specs(config)]
    if config.max_order >= 2:
        combo_pool = []
        seen_kinds: set[str] = set()
        for spec in _single_specs(config):
            if spec.kind not in seen_kinds and spec.until is None:
                seen_kinds.add(spec.kind)
                combo_pool.append(spec)
        for order in range(2, config.max_order + 1):
            for combo in itertools.combinations(combo_pool, order):
                cells.append(cell(combo))
    return tuple(cells)


def _resolve_site(site: str | None, pool) -> str | None:
    """Map a spec's site name onto *pool*'s machine namespace.

    Cell specs name sites in solitary-pool terms ("exec000"); a
    federation prefixes machine names with the member pool ("a-exec000").
    Matching by suffix keeps one spec replayable against either, and the
    sorted scan keeps the choice deterministic.
    """
    if site is None or site in pool.machines:
        return site
    for name in sorted(pool.machines):
        if name.endswith(site):
            return name
    return site


def build_fault(spec: FaultSpec, pool, jobs) -> Fault:
    """Instantiate *spec* against *pool* and the workload *jobs*."""
    kind = spec.kind
    site = _resolve_site(spec.site, pool)
    if kind == "MisconfiguredJvm":
        return MisconfiguredJvm(site)
    if kind == "JvmBinaryMissing":
        return JvmBinaryMissing(site)
    if kind == "ScratchDiskFull":
        return ScratchDiskFull(site)
    if kind == "MachineCrash":
        return MachineCrash(site)
    if kind == "NetworkPartition":
        # Exec-side partition: the submit machine cannot reach the site.
        return NetworkPartition(pool.schedd.submit_host, site)
    if kind == "MemoryPressure":
        machine = pool.machines[site]
        return MemoryPressure(site, machine.memory_total - 10 * MB)
    if kind == "MachineChurn":
        return MachineChurn(site, graceful=False)
    if kind == "BlackHoleChurn":
        return BlackHoleChurn(site)
    if kind == "FlockLinkDown":
        return FlockLinkDown()
    if kind == "HomeFilesystemOffline":
        return HomeFilesystemOffline()
    if kind == "CredentialExpiry":
        return CredentialExpiry()
    if kind == "CorruptProgramImage":
        return CorruptProgramImage(jobs[spec.job_index])
    if kind == "MissingInputFile":
        return MissingInputFile(jobs[spec.job_index])
    if kind == "HomeDiskFull":
        return HomeDiskFull()
    raise ValueError(f"unknown fault kind {kind!r}")
