"""Coverage-guided fault-space fuzzing: the campaign engine, steered.

The exhaustive matrix (:func:`repro.campaign.spec.enumerate_cells`)
stops scaling around order 2-3: every added fault kind multiplies the
sweep.  This module replaces enumeration with an evolutionary loop in
the AFL tradition, driven by the observability layer's own feedback:

1. every executed cell yields a **coverage signature**
   (:func:`repro.obs.signature.signature`): normalized principle
   violations, error-journey hop sequences by scope, job-span shapes,
   terminal outcome states;
2. a cell that produces a feature no earlier cell produced joins the
   :class:`~repro.campaign.corpus.Corpus`;
3. each batch, a rarity-weighted **power schedule** picks corpus
   parents and a seeded :class:`MutationEngine` proposes children
   (add/drop/swap a fault kind, shift or resize an injection window,
   retarget, cross over two parents, escalate the order);
4. the batch fans out over the
   :class:`~repro.harness.parallel.ParallelRunner` (one persistent
   worker pool for the whole campaign), and the merge is serial and
   in batch order -- so ``--jobs N`` output is byte-identical to serial.

Determinism contract: the whole campaign is a function of
(:class:`FuzzConfig`, seed).  Batch randomness derives from
``sha256(seed, batch index)``, never from global state or wall clock;
the report carries no timing; and every piece of campaign state
(coverage, corpus, hit counts, records) round-trips exactly through the
JSON checkpoint, so a ``--resume`` from mid-flight finishes with the
byte-identical report of an uninterrupted run.

Violations are shrunk **per signature**: the ddmin predicate is "this
subset still produces *this* normalized violation", so a violation that
only exists at order 3 yields a 1-minimal *order-3* reproducer instead
of collapsing onto an unrelated single-fault violation.
"""

from __future__ import annotations

import functools
import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.campaign.corpus import Corpus, CorpusEntry
from repro.campaign.coverage import CoverageMap, FirstSeen
from repro.campaign.engine import campaign_section, run_cell_record
from repro.campaign.spec import CampaignConfig, CellSpec, FaultSpec, KindInfo
from repro.harness.parallel import ParallelRunner
from repro.obs.signature import violation_features

__all__ = [
    "FORMAT",
    "FuzzConfig",
    "MutationEngine",
    "MutationSpace",
    "load_checkpoint",
    "run_fuzz",
    "validate_injections",
]

#: Format tag of the fuzz report (bump on incompatible change).
FORMAT = "repro-campaign-fuzz/1"
#: Format tag of the mid-campaign checkpoint.
CHECKPOINT_FORMAT = "repro-campaign-fuzz-checkpoint/1"

#: Injection-start instants the mutators sample (simulated seconds).
AT_GRID = (0.0, 30.0, 60.0, 90.0, 150.0, 200.0, 300.0, 420.0)
#: Window durations the mutators sample.
DURATION_GRID = (30.0, 60.0, 120.0, 240.0, 330.0, 480.0)
#: Window-shift deltas.
SHIFT_GRID = (-120.0, -60.0, -30.0, 30.0, 60.0, 120.0)

#: (mutator name, selection weight).  Structural mutators dominate:
#: combining faults is where the un-enumerable part of the space lives.
MUTATORS = (
    ("add", 3),
    ("crossover", 3),
    ("escalate", 2),
    ("swap", 2),
    ("shift-window", 1),
    ("resize-window", 1),
    ("retarget", 1),
    ("drop", 1),
)

#: Proposal attempts per wanted child before a batch gives up (the
#: space around the corpus can be locally exhausted near small budgets).
PROPOSAL_PATIENCE = 40

#: Window starts/durations of the deterministic window probes enqueued
#: for violating cells (a deliberately coarse sub-grid of AT_GRID /
#: DURATION_GRID: the probes ask *whether* the window matters, the havoc
#: mutators then explore how).
PROBE_AT = (30.0, 60.0)
PROBE_DURATION = (120.0, 330.0)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything that shapes a fuzzing campaign."""

    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    #: total cells the campaign may execute (bootstrap included)
    budget_cells: int = 200
    #: cells proposed (and fanned out) per generation
    batch_size: int = 16
    #: maximum simultaneous faults per mutated cell
    order_max: int = 3

    def __post_init__(self):
        if self.budget_cells < 1:
            raise ValueError(f"budget_cells must be >= 1, got {self.budget_cells}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.order_max < 1:
            raise ValueError(f"order_max must be >= 1, got {self.order_max}")

    def section(self) -> dict:
        return {
            "budget_cells": self.budget_cells,
            "batch_size": self.batch_size,
            "order_max": self.order_max,
            "mutators": [name for name, _ in MUTATORS],
        }


@dataclass(frozen=True)
class MutationSpace:
    """The valid fault space mutants must stay inside."""

    kinds: tuple[KindInfo, ...]
    sites: tuple[str, ...]
    job_indices: tuple[int, ...]
    order_max: int
    federation: bool

    @classmethod
    def from_config(cls, config: FuzzConfig) -> MutationSpace:
        campaign = config.campaign
        return cls(
            kinds=campaign.catalogue(),
            sites=tuple(f"exec{i:03d}" for i in range(campaign.n_machines)),
            job_indices=tuple(range(campaign.n_jobs)),
            order_max=config.order_max,
            federation=campaign.federation,
        )

    @functools.cached_property
    def kind_info(self) -> dict[str, KindInfo]:
        return {info.kind: info for info in self.kinds}


def validate_injections(
    injections: tuple[FaultSpec, ...], space: MutationSpace
) -> list[str]:
    """Every way *injections* leaves the valid space (empty = valid).

    This is the mutator contract the hypothesis property tests pin:
    kinds from the catalogue only, federation-gated kinds only when the
    campaign runs federated, non-negative windows with ``until > at``,
    open-ended windows on non-disarmable kinds, targets matching the
    kind's target type, distinct kinds, order within bounds.
    """
    problems = []
    if len(injections) > space.order_max:
        problems.append(f"order {len(injections)} exceeds max {space.order_max}")
    kinds = [spec.kind for spec in injections]
    if len(set(kinds)) != len(kinds):
        problems.append(f"duplicate kinds in {kinds}")
    for spec in injections:
        info = space.kind_info.get(spec.kind)
        if info is None:
            problems.append(f"unknown kind {spec.kind!r}")
            continue
        if info.needs_federation and not space.federation:
            problems.append(f"{spec.kind} requires federation")
        if spec.at < 0:
            problems.append(f"{spec.kind}: negative at {spec.at}")
        if spec.until is not None:
            if spec.until <= spec.at:
                problems.append(f"{spec.kind}: empty window {spec.at}..{spec.until}")
            if not info.disarmable:
                problems.append(f"{spec.kind}: bounded window on non-disarmable kind")
        if info.target == "site":
            if spec.site not in space.sites or spec.job_index is not None:
                problems.append(f"{spec.kind}: bad site target {spec.site!r}")
        elif info.target == "job":
            if spec.job_index not in space.job_indices or spec.site is not None:
                problems.append(f"{spec.kind}: bad job target {spec.job_index!r}")
        elif spec.site is not None or spec.job_index is not None:
            problems.append(f"{spec.kind}: pool kind must be untargeted")
    return problems


def _canonical(injections: tuple[FaultSpec, ...]) -> tuple[FaultSpec, ...]:
    """Injections in canonical order, so equal sets dedup as equal cells."""
    return tuple(sorted(
        injections,
        key=lambda s: (
            s.kind,
            s.site or "",
            -1 if s.job_index is None else s.job_index,
            s.at,
            float("inf") if s.until is None else s.until,
        ),
    ))


class MutationEngine:
    """The seeded mutator pool over a :class:`MutationSpace`.

    Every method takes the caller's PRNG and returns a new injection
    tuple or ``None`` when the mutation does not apply (parent at max
    order, nothing to drop, no alternative target...).  Returned tuples
    are canonicalized and always valid (:func:`validate_injections`).
    """

    def __init__(self, space: MutationSpace):
        self.space = space
        self._names = [name for name, _ in MUTATORS]
        self._weights = [weight for _, weight in MUTATORS]

    # -- building blocks -------------------------------------------------
    def _random_spec(self, rng: random.Random, info: KindInfo) -> FaultSpec:
        site = rng.choice(self.space.sites) if info.target == "site" else None
        job_index = (
            rng.choice(self.space.job_indices) if info.target == "job" else None
        )
        at = rng.choice(AT_GRID)
        until = None
        if info.disarmable and rng.random() < 0.5:
            until = at + rng.choice(DURATION_GRID)
        return FaultSpec(kind=info.kind, site=site, job_index=job_index,
                         at=at, until=until)

    def _unused_kinds(self, injections: tuple[FaultSpec, ...]) -> list[KindInfo]:
        used = {spec.kind for spec in injections}
        return [info for info in self.space.kinds if info.kind not in used]

    def fresh(self, rng: random.Random) -> tuple[FaultSpec, ...]:
        """A random single-fault injection set (empty-corpus fallback)."""
        return (self._random_spec(rng, rng.choice(list(self.space.kinds))),)

    # -- the mutators ----------------------------------------------------
    def _add(self, rng, injections):
        unused = self._unused_kinds(injections)
        if not unused or len(injections) >= self.space.order_max:
            return None
        return injections + (self._random_spec(rng, rng.choice(unused)),)

    def _drop(self, rng, injections):
        if not injections:
            return None
        index = rng.randrange(len(injections))
        return injections[:index] + injections[index + 1:]

    def _swap(self, rng, injections):
        unused = self._unused_kinds(injections)
        if not injections or not unused:
            return None
        index = rng.randrange(len(injections))
        old, info = injections[index], rng.choice(unused)
        site = rng.choice(self.space.sites) if info.target == "site" else None
        job_index = (
            rng.choice(self.space.job_indices) if info.target == "job" else None
        )
        until = old.until if info.disarmable else None
        if until is not None and until <= old.at:
            until = None
        new = FaultSpec(kind=info.kind, site=site, job_index=job_index,
                        at=old.at, until=until)
        return injections[:index] + (new,) + injections[index + 1:]

    def _shift_window(self, rng, injections):
        if not injections:
            return None
        index = rng.randrange(len(injections))
        old = injections[index]
        at = max(0.0, old.at + rng.choice(SHIFT_GRID))
        until = None if old.until is None else at + (old.until - old.at)
        new = FaultSpec(kind=old.kind, site=old.site, job_index=old.job_index,
                        at=at, until=until)
        return injections[:index] + (new,) + injections[index + 1:]

    def _resize_window(self, rng, injections):
        candidates = [
            i for i, spec in enumerate(injections)
            if self.space.kind_info[spec.kind].disarmable
        ]
        if not candidates:
            return None
        index = rng.choice(candidates)
        old = injections[index]
        if old.until is not None and rng.random() < 1 / 3:
            until = None  # widen all the way to open-ended
        else:
            until = old.at + rng.choice(DURATION_GRID)
        new = FaultSpec(kind=old.kind, site=old.site, job_index=old.job_index,
                        at=old.at, until=until)
        return injections[:index] + (new,) + injections[index + 1:]

    def _retarget(self, rng, injections):
        candidates = []
        for i, spec in enumerate(injections):
            info = self.space.kind_info[spec.kind]
            if info.target == "site" and len(self.space.sites) > 1:
                candidates.append(i)
            elif info.target == "job" and len(self.space.job_indices) > 1:
                candidates.append(i)
        if not candidates:
            return None
        index = rng.choice(candidates)
        old = injections[index]
        info = self.space.kind_info[old.kind]
        if info.target == "site":
            site = rng.choice([s for s in self.space.sites if s != old.site])
            new = FaultSpec(kind=old.kind, site=site, at=old.at, until=old.until)
        else:
            job_index = rng.choice(
                [j for j in self.space.job_indices if j != old.job_index]
            )
            new = FaultSpec(kind=old.kind, job_index=job_index,
                            at=old.at, until=old.until)
        return injections[:index] + (new,) + injections[index + 1:]

    def _crossover(self, rng, injections, partner):
        merged = list(injections)
        used = {spec.kind for spec in merged}
        for spec in partner:
            if spec.kind not in used:
                merged.append(spec)
                used.add(spec.kind)
        if len(merged) <= len(injections):
            return None  # the partner brought nothing new
        if len(merged) > self.space.order_max:
            merged = rng.sample(merged, self.space.order_max)
        return tuple(merged)

    def _escalate(self, rng, injections):
        """Jump straight to a higher order: add 1..k faults in one step.

        Reaching order 3 from a single-fault parent in one mutation is
        what lets the fuzzer probe deep combinations whose intermediate
        pairs never earn corpus membership.
        """
        room = self.space.order_max - len(injections)
        unused = self._unused_kinds(injections)
        if room < 1 or not unused:
            return None
        count = min(rng.randint(1, room), len(unused))
        added = tuple(
            self._random_spec(rng, info) for info in rng.sample(unused, count)
        )
        return injections + added

    # -- dispatch --------------------------------------------------------
    def propose(
        self,
        rng: random.Random,
        parent: tuple[FaultSpec, ...],
        partner: tuple[FaultSpec, ...],
    ) -> tuple[str, tuple[FaultSpec, ...]] | None:
        """One mutation attempt; ``(mutator name, canonical child)`` or None."""
        name = rng.choices(self._names, weights=self._weights, k=1)[0]
        if name == "add":
            child = self._add(rng, parent)
        elif name == "crossover":
            child = self._crossover(rng, parent, partner)
        elif name == "escalate":
            child = self._escalate(rng, parent)
        elif name == "swap":
            child = self._swap(rng, parent)
        elif name == "shift-window":
            child = self._shift_window(rng, parent)
        elif name == "resize-window":
            child = self._resize_window(rng, parent)
        elif name == "retarget":
            child = self._retarget(rng, parent)
        else:
            child = self._drop(rng, parent)
        if child is None:
            return None
        return name, _canonical(child)


# -- campaign state -----------------------------------------------------
@dataclass
class _FuzzState:
    """Everything the loop carries between batches (checkpointable)."""

    batch: int = 0
    records: list = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    corpus: Corpus = field(default_factory=Corpus)
    #: feature -> number of executed cells that produced it (additive,
    #: hence kept out of the idempotent CoverageMap)
    hits: dict = field(default_factory=dict)
    #: normalized violation feature -> discovery provenance
    violation_signatures: dict = field(default_factory=dict)
    first_violation_at: int | None = None
    all_principles_at: int | None = None
    executed: set = field(default_factory=set)
    #: deterministic probe queue (FIFO): ``{"cell": CellSpec, "stage",
    #: "features"}`` entries drained ahead of havoc proposals
    probes: list = field(default_factory=list)
    #: cell key -> pending probe entry, so a window probe's outcome can
    #: trigger escalation probes when it *loses* the violation
    probe_meta: dict = field(default_factory=dict)

    def principles(self) -> list[int]:
        return sorted({
            int(feature.split(":", 2)[1][1:])
            for feature in self.violation_signatures
        })


def _cell_key(cell: CellSpec) -> str:
    return json.dumps(
        [spec.as_dict() for spec in cell.injections], sort_keys=True
    )


def _batch_rng(seed: int, batch: int) -> random.Random:
    digest = hashlib.sha256(f"repro-fuzz:{seed}:{batch}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def _bootstrap_cells(config: FuzzConfig, base: CellSpec) -> list[CellSpec]:
    """Generation zero: the clean cell plus one open-window single per
    catalogue kind -- the corpus seed every later mutation descends from.
    """
    cells = [base.with_injections(())]
    for info in config.campaign.catalogue():
        site = "exec000" if info.target == "site" else None
        job_index = 0 if info.target == "job" else None
        spec = FaultSpec(kind=info.kind, site=site, job_index=job_index,
                         at=0.0, until=None)
        cells.append(base.with_injections((spec,)))
    return cells


# -- the deterministic probe stage --------------------------------------
#
# Random havoc finds violations; it is weak at answering the follow-up
# question "does this violation *depend* on the rest of the fault space"
# because that answer lives several correlated mutations away.  In the
# AFL tradition of a deterministic stage on interesting inputs, a cell
# that discovers a new violation signature enqueues structured probes:
#
# - **add** probes (parent + each unused kind): does a third party
#   change the finding?  These double as a systematic sweep of the
#   order-(k+1) neighbourhood of every violating cell.
# - **window** probes (each disarmable injection re-bounded over a
#   coarse grid): is the violation window-sensitive?
# - **escalate** probes, enqueued only when a window probe *loses* the
#   signature: losing-variant + each unused kind -- literally asking
#   "which extra fault brings the violation back under the bounded
#   window", i.e. hunting violations that are order-(k+1)-minimal.
#
# The queue is FIFO, deduplicated against executed cells, drained ahead
# of havoc proposals, and checkpointed -- all deterministic.


def _enqueue_probe(state: _FuzzState, cell: CellSpec, stage: str,
                   features: list[str]) -> None:
    key = _cell_key(cell)
    if key in state.executed or key in state.probe_meta:
        return
    entry = {"cell": cell, "stage": stage, "features": features}
    state.probes.append(entry)
    state.probe_meta[key] = entry


def _first_target_spec(info: KindInfo, space: MutationSpace) -> FaultSpec:
    site = space.sites[0] if info.target == "site" else None
    job_index = space.job_indices[0] if info.target == "job" else None
    return FaultSpec(kind=info.kind, site=site, job_index=job_index,
                     at=0.0, until=None)


def _enqueue_add_probes(state: _FuzzState, space: MutationSpace,
                        base: CellSpec, injections: tuple[FaultSpec, ...],
                        features: list[str]) -> None:
    if len(injections) >= space.order_max:
        return
    used = {spec.kind for spec in injections}
    for info in space.kinds:
        if info.kind in used:
            continue
        extra = _first_target_spec(info, space)
        cell = base.with_injections(_canonical(injections + (extra,)))
        _enqueue_probe(state, cell, "add", features)


def _enqueue_window_probes(state: _FuzzState, space: MutationSpace,
                           base: CellSpec, injections: tuple[FaultSpec, ...],
                           features: list[str]) -> None:
    for index, spec in enumerate(injections):
        if not space.kind_info[spec.kind].disarmable:
            continue
        for at in PROBE_AT:
            for duration in PROBE_DURATION:
                bounded = FaultSpec(kind=spec.kind, site=spec.site,
                                    job_index=spec.job_index,
                                    at=at, until=at + duration)
                variant = injections[:index] + (bounded,) + injections[index + 1:]
                cell = base.with_injections(_canonical(variant))
                _enqueue_probe(state, cell, "window", features)


def _enqueue_escalate_probes(state: _FuzzState, space: MutationSpace,
                             base: CellSpec, injections: tuple[FaultSpec, ...],
                             features: list[str]) -> None:
    if len(injections) >= space.order_max:
        return
    used = {spec.kind for spec in injections}
    for info in space.kinds:
        if info.kind in used:
            continue
        extra = _first_target_spec(info, space)
        cell = base.with_injections(_canonical(injections + (extra,)))
        _enqueue_probe(state, cell, "escalate", features)


def _propose_batch(
    rng: random.Random,
    state: _FuzzState,
    engine: MutationEngine,
    base: CellSpec,
    want: int,
) -> list[CellSpec]:
    batch: list[CellSpec] = []
    pending: set[str] = set()
    # Deterministic probes first: they answer a specific open question
    # about an existing find, which beats undirected exploration.
    while state.probes and len(batch) < want:
        entry = state.probes.pop(0)
        cell = entry["cell"]
        key = _cell_key(cell)
        if key in state.executed or key in pending:
            state.probe_meta.pop(key, None)
            continue
        pending.add(key)
        batch.append(cell)
    attempts = 0
    while len(batch) < want and attempts < want * PROPOSAL_PATIENCE:
        attempts += 1
        if len(state.corpus):
            parent = state.corpus.select(rng, state.hits).cell.injections
            partner = state.corpus.select(rng, state.hits).cell.injections
            proposal = engine.propose(rng, parent, partner)
        else:
            proposal = ("fresh", _canonical(engine.fresh(rng)))
        if proposal is None:
            continue
        _, injections = proposal
        cell = base.with_injections(injections)
        key = _cell_key(cell)
        if key in state.executed or key in pending or key in state.probe_meta:
            continue
        pending.add(key)
        batch.append(cell)
    return batch


def _absorb(state: _FuzzState, space: MutationSpace, base: CellSpec,
            cells: list[CellSpec], records: list[dict]) -> None:
    """Serially merge one executed batch into the campaign state.

    This is the deterministic half of the fan-out: records arrive in
    batch order regardless of ``--jobs``, and every coverage/corpus/hit/
    probe-queue update happens here, in that order.
    """
    for cell, record in zip(cells, records):
        index = len(state.records)
        key = _cell_key(cell)
        probe = state.probe_meta.pop(key, None)
        signature = tuple(record["signature"])
        seen = FirstSeen(batch=state.batch, index=index, cell=cell.cell_id)
        novel = state.coverage.observe_all(signature, seen)
        for feature in signature:
            state.hits[feature] = state.hits.get(feature, 0) + 1
        record["batch"] = state.batch
        record["novel"] = list(novel)
        record["probe"] = None if probe is None else probe["stage"]
        state.records.append(record)
        state.executed.add(key)
        executed_now = len(state.records)
        if record["violations"] and state.first_violation_at is None:
            state.first_violation_at = executed_now
        new_violations = [f for f in novel if f.startswith("viol:")]
        for feature in new_violations:
            state.violation_signatures[feature] = {
                "batch": state.batch,
                "index": index,
                "cell": cell.cell_id,
                "cells_executed": executed_now,
                "order": cell.order,
            }
        if len(state.principles()) == 4 and state.all_principles_at is None:
            state.all_principles_at = executed_now
        if novel:
            state.corpus.add(CorpusEntry(
                cell=cell,
                signature=signature,
                novel=novel,
                batch=state.batch,
                violations=len(record["violations"]),
            ))
        # The deterministic stage: a fresh violation signature earns a
        # structured sweep of its neighbourhood...
        if new_violations:
            _enqueue_add_probes(state, space, base, cell.injections,
                                new_violations)
            if cell.order >= 2:
                _enqueue_window_probes(state, space, base, cell.injections,
                                       new_violations)
        # ...and a window probe that *lost* its violation triggers the
        # escalation sweep: which extra fault re-arms the violation under
        # the bounded window (an order-(k+1)-minimal candidate)?
        if probe is not None and probe["stage"] == "window":
            lost = [f for f in probe["features"] if f not in signature]
            if lost:
                _enqueue_escalate_probes(state, space, base, cell.injections,
                                         lost)


# -- checkpointing ------------------------------------------------------
def _checkpoint_dict(state: _FuzzState, config: FuzzConfig) -> dict:
    return {
        "format": CHECKPOINT_FORMAT,
        "campaign": campaign_section(config.campaign),
        "fuzz": config.section(),
        "batch": state.batch,
        "records": state.records,
        "coverage": state.coverage.as_dict(),
        "corpus": state.corpus.as_dict(),
        "hits": state.hits,
        "violation_signatures": state.violation_signatures,
        "first_violation_at": state.first_violation_at,
        "all_principles_at": state.all_principles_at,
        "probes": [
            {
                "cell": entry["cell"].as_dict(),
                "stage": entry["stage"],
                "features": entry["features"],
            }
            for entry in state.probes
        ],
    }


def _state_from_checkpoint(data: dict, config: FuzzConfig) -> _FuzzState:
    if data.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"not a fuzz checkpoint: format={data.get('format')!r}"
        )
    for section, expected in (
        ("campaign", campaign_section(config.campaign)),
        ("fuzz", config.section()),
    ):
        if data.get(section) != expected:
            raise ValueError(
                f"checkpoint {section} config does not match this campaign; "
                f"resume with the configuration the checkpoint was written "
                f"under (checkpoint: {data.get(section)!r})"
            )
    state = _FuzzState(
        batch=int(data["batch"]),
        records=list(data["records"]),
        coverage=CoverageMap.from_dict(data["coverage"]),
        corpus=Corpus.from_dict(data["corpus"]),
        hits={str(k): int(v) for k, v in data["hits"].items()},
        violation_signatures=dict(data["violation_signatures"]),
        first_violation_at=data["first_violation_at"],
        all_principles_at=data["all_principles_at"],
    )
    base = CellSpec(cell_id="", mode=config.campaign.mode,
                    seed=config.campaign.seed, injections=())
    for record in state.records:
        injections = tuple(FaultSpec.from_dict(d) for d in record["injections"])
        state.executed.add(_cell_key(base.with_injections(injections)))
    for raw in data.get("probes", []):
        entry = {
            "cell": CellSpec.from_dict(raw["cell"]),
            "stage": str(raw["stage"]),
            "features": list(raw["features"]),
        }
        state.probes.append(entry)
        state.probe_meta[_cell_key(entry["cell"])] = entry
    return state


def load_checkpoint(path: str) -> tuple[FuzzConfig, dict]:
    """Read a checkpoint file; return its (config, raw state dict)."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if data.get("format") != CHECKPOINT_FORMAT:
        raise ValueError(
            f"not a fuzz checkpoint: format={data.get('format')!r}"
        )
    campaign = data["campaign"]
    config = FuzzConfig(
        campaign=CampaignConfig(
            mode=campaign["mode"],
            seed=int(campaign["seed"]),
            n_jobs=int(campaign["n_jobs"]),
            n_machines=int(campaign["n_machines"]),
            max_order=int(campaign["max_order"]),
            max_retries=int(campaign["max_retries"]),
            max_time=float(campaign["max_time"]),
            windows=tuple(
                (float(at), None if until is None else float(until))
                for at, until in campaign["windows"]
            ),
            kinds=None if campaign["kinds"] is None else tuple(campaign["kinds"]),
            sites=tuple(campaign["sites"]),
            job_indices=tuple(campaign["job_indices"]),
            federation=bool(campaign["federation"]),
            defenses=bool(campaign["defenses"]),
        ),
        budget_cells=int(data["fuzz"]["budget_cells"]),
        batch_size=int(data["fuzz"]["batch_size"]),
        order_max=int(data["fuzz"]["order_max"]),
    )
    return config, data


# -- shrinking ----------------------------------------------------------
#: ddmin invocations allowed per violation signature.  Every *incident*
#: of a signature that no confirmed minimal injection set explains is a
#: shrink candidate; the cap bounds total shrink cost on saturated
#: campaigns (classic mode violates in most cells) while leaving room
#: for the interesting case -- the same signature reachable through a
#: deeper minimal combination (an order-3-only window interplay) than
#: the one that discovered it.
SHRINK_ATTEMPTS_PER_SIGNATURE = 6


def _shrink_findings(state: _FuzzState, config: FuzzConfig) -> list[dict]:
    """Signature-preserving 1-minimal reproducers for the campaign's finds.

    Walks the executed cells in order.  A violating cell is *explained*
    if, for every violation feature it produced, some already-confirmed
    minimal injection set for that feature is a subset of the cell's
    injections (same specs, windows included).  Unexplained incidents
    are ddmin'd with the "still produces this signature" predicate --
    so a violation that is order-1-minimal under an open window *and*
    order-3-minimal under a bounded window yields both reproducers, each
    1-minimal for its own injection set.
    """
    from repro.campaign.shrink import minimize_cell

    base = CellSpec(cell_id="", mode=config.campaign.mode,
                    seed=config.campaign.seed, injections=())
    #: feature -> list of confirmed minimal injection sets (spec tuples)
    confirmed: dict[str, list[frozenset]] = {}
    attempts: dict[str, int] = {}
    reproducers = []
    for index, record in enumerate(state.records):
        features = [
            f for f in record.get("signature", ()) if f.startswith("viol:")
        ]
        if not features:
            continue
        injections = tuple(FaultSpec.from_dict(d) for d in record["injections"])
        have = frozenset(injections)
        for feature in features:
            if any(minimal <= have for minimal in confirmed.get(feature, [])):
                continue
            if attempts.get(feature, 0) >= SHRINK_ATTEMPTS_PER_SIGNATURE:
                continue
            attempts[feature] = attempts.get(feature, 0) + 1
            cell = base.with_injections(injections)

            def keeps_signature(probe_record: dict, feature=feature) -> bool:
                return feature in violation_features(probe_record["violations"])

            spec = minimize_cell(cell, config.campaign, keep=keeps_signature)
            minimal = frozenset(
                FaultSpec.from_dict(d) for d in spec["injections"]
            )
            if minimal in confirmed.get(feature, []):
                continue  # a different incident, the same minimal cell
            confirmed.setdefault(feature, []).append(minimal)
            reproducers.append({
                "signature": feature,
                "found_in": record["cell"],
                "cells_executed": index + 1,
                "order": len(spec["injections"]),
                "spec": spec,
            })
    return reproducers


# -- the campaign -------------------------------------------------------
def _report(state: _FuzzState, config: FuzzConfig, reproducers: list[dict]) -> dict:
    by_principle = {f"P{p}": 0 for p in (1, 2, 3, 4)}
    for record in state.records:
        for violation in record["violations"]:
            by_principle[f"P{violation['principle']}"] += 1
    return {
        "format": FORMAT,
        "campaign": campaign_section(config.campaign),
        "fuzz": config.section(),
        "cells": state.records,
        "coverage": {
            "features": len(state.coverage),
            "first_seen": state.coverage.as_dict(),
        },
        "corpus": state.corpus.as_dict(),
        "violations": {
            "signatures": state.violation_signatures,
            "first_violation_at": state.first_violation_at,
            "all_principles_at": state.all_principles_at,
            "principles": state.principles(),
        },
        "reproducers": reproducers,
        "totals": {
            "cells": len(state.records),
            "batches": state.batch,
            "features": len(state.coverage),
            "corpus": len(state.corpus),
            "cells_with_violations": sum(
                1 for r in state.records if r["violations"]
            ),
            "violations": sum(len(r["violations"]) for r in state.records),
            "distinct_violations": len(state.violation_signatures),
            "by_principle": by_principle,
            "live_mismatches": sum(
                1 for r in state.records if not r["live_matches_posthoc"]
            ),
            "errors": sum(1 for r in state.records if r["error"] is not None),
            "probe_cells": sum(
                1 for r in state.records if r.get("probe") is not None
            ),
            "max_order_violation": max(
                (f["order"] for f in state.violation_signatures.values()),
                default=0,
            ),
            "max_minimal_order": max(
                (repro["order"] for repro in reproducers), default=0
            ),
        },
    }


def run_fuzz(
    config: FuzzConfig,
    jobs: int = 1,
    shrink: bool = True,
    checkpoint: str | None = None,
    resume: dict | str | None = None,
    stop_after_batch: int | None = None,
) -> dict:
    """Run a coverage-guided campaign; return the JSON-ready report.

    With *checkpoint*, the full campaign state is written there after
    every batch; *resume* (a checkpoint path or its loaded dict) picks
    a campaign up mid-flight and -- because every state component
    round-trips exactly -- finishes with the byte-identical report of an
    uninterrupted run.  *stop_after_batch* ends the loop early after the
    given batch index completes (the test hook for interrupting a
    campaign at a known point).
    """
    from repro.obs.export import dump_json

    campaign = config.campaign
    if resume is not None:
        if isinstance(resume, str):
            with open(resume, encoding="utf-8") as fh:
                resume = json.load(fh)
        state = _state_from_checkpoint(resume, config)
    else:
        state = _FuzzState()
    space = MutationSpace.from_config(config)
    engine = MutationEngine(space)
    base = CellSpec(cell_id="", mode=campaign.mode, seed=campaign.seed,
                    injections=())
    runner = ParallelRunner(
        functools.partial(
            run_cell_record, config=campaign, features=True, on_error="record"
        ),
        workers=jobs,
    )
    with runner:
        while len(state.records) < config.budget_cells:
            if stop_after_batch is not None and state.batch > stop_after_batch:
                break
            want = min(config.batch_size, config.budget_cells - len(state.records))
            if state.batch == 0 and not state.records:
                cells = _bootstrap_cells(config, base)[:want]
            else:
                rng = _batch_rng(campaign.seed, state.batch)
                cells = _propose_batch(rng, state, engine, base, want)
            if not cells:
                break  # the reachable space is exhausted
            results = runner.map(cells)
            _absorb(state, space, base, cells,
                    [outcome.value for outcome in results])
            state.batch += 1
            if checkpoint is not None:
                dump_json(checkpoint, _checkpoint_dict(state, config))
    reproducers = _shrink_findings(state, config) if shrink else []
    return _report(state, config, reproducers)
