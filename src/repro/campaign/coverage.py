"""The fuzzer's coverage map: which features exist, and who found them.

A :class:`CoverageMap` is a dictionary from feature string
(:func:`repro.obs.signature.signature` coordinates) to the
:class:`FirstSeen` provenance of its discovery.  The map is the fuzzer's
whole notion of progress: a cell that contributes no new key taught us
nothing and is discarded; a cell that does joins the corpus.

``merge`` is deliberately a *semilattice* operation -- elementwise
minimum of ``(batch, index, cell)`` provenance triples -- so it is
associative, commutative and idempotent.  That algebra is what lets a
``--jobs N`` campaign merge per-cell coverage in any grouping and still
produce the byte-identical map a serial campaign produces (pinned by
hypothesis in ``tests/campaign/test_fuzz_properties.py``).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["CoverageMap", "FirstSeen"]


@dataclass(frozen=True, order=True)
class FirstSeen:
    """Provenance of a feature's discovery, ordered by execution time.

    Tuple ordering (batch, then index-within-campaign, then cell id)
    makes "earliest discovery wins" a total order, so merging two maps
    never depends on merge order.
    """

    batch: int
    index: int
    cell: str

    def as_dict(self) -> dict:
        return {"batch": self.batch, "index": self.index, "cell": self.cell}

    @classmethod
    def from_dict(cls, data: dict) -> FirstSeen:
        return cls(batch=int(data["batch"]), index=int(data["index"]), cell=str(data["cell"]))


class CoverageMap:
    """Feature -> earliest :class:`FirstSeen`, with semilattice merge."""

    def __init__(self, features: dict[str, FirstSeen] | None = None):
        self.features: dict[str, FirstSeen] = dict(features or {})

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return len(self.features)

    def __contains__(self, feature: str) -> bool:
        return feature in self.features

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CoverageMap) and self.features == other.features

    def novel(self, signature: Iterable[str]) -> tuple[str, ...]:
        """The features of *signature* this map has never seen."""
        return tuple(f for f in signature if f not in self.features)

    # -- growth ----------------------------------------------------------
    def observe(self, feature: str, seen: FirstSeen) -> bool:
        """Record *feature*; keep the earliest provenance.  True if new."""
        current = self.features.get(feature)
        if current is None:
            self.features[feature] = seen
            return True
        if seen < current:
            self.features[feature] = seen
        return False

    def observe_all(self, signature: Iterable[str], seen: FirstSeen) -> tuple[str, ...]:
        """Observe every feature of *signature*; return the new ones."""
        return tuple(f for f in signature if self.observe(f, seen))

    def merge(self, other: CoverageMap) -> CoverageMap:
        """The elementwise-minimum union of two maps (pure; no mutation)."""
        merged = dict(self.features)
        for feature, seen in other.features.items():
            current = merged.get(feature)
            if current is None or seen < current:
                merged[feature] = seen
        return CoverageMap(merged)

    # -- serialization ---------------------------------------------------
    def as_dict(self) -> dict:
        return {
            feature: seen.as_dict()
            for feature, seen in sorted(self.features.items())
        }

    @classmethod
    def from_dict(cls, data: dict) -> CoverageMap:
        return cls({
            feature: FirstSeen.from_dict(seen) for feature, seen in data.items()
        })
