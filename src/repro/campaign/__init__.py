"""``repro.campaign``: systematic fault-space sweeps over the catalogue.

    "How many scenarios can you imagine?"  Enumerate them instead.

The figure kernels exercise hand-picked faults; the campaign engine
enumerates the cross product of the fault catalogue x injection windows
x sites x job targets (and multi-fault combinations up to a configurable
order), runs every cell deterministically, and audits each run twice:

- *live*, via a :class:`~repro.obs.sanitize.PrincipleSanitizer` on the
  telemetry bus, judging every error hop, interface crossing and job
  outcome the instant it happens;
- *post hoc*, via the classic :class:`~repro.core.principles.PrincipleAuditor`
  over the run artifacts.

The two verdicts must agree event-for-event on every cell -- the engine
records the cross-check in each record.  Any violating cell is shrunk by
delta debugging to a minimal injection set and emitted as a replayable
JSON reproducer spec.

Exhaustive enumeration stops paying past order 2; the coverage-guided
fuzzer (:mod:`repro.campaign.fuzz`) explores the same space under a cell
budget instead, steered by the observability layer's own feedback
(:mod:`repro.obs.signature`), with the identical determinism and
byte-identity contract plus checkpoint/resume.

Entry points: ``python -m repro.harness campaign`` (CLI; ``campaign
fuzz`` for the explorer), :func:`~repro.campaign.engine.run_campaign`
and :func:`~repro.campaign.fuzz.run_fuzz` (library).
"""

from repro.campaign.corpus import Corpus, CorpusEntry
from repro.campaign.coverage import CoverageMap, FirstSeen
from repro.campaign.engine import CellError, run_campaign, run_cell_record
from repro.campaign.fuzz import (
    FuzzConfig,
    MutationEngine,
    MutationSpace,
    run_fuzz,
    validate_injections,
)
from repro.campaign.report import render_fuzz_summary, render_summary
from repro.campaign.shrink import ddmin, minimize_cell, replay
from repro.campaign.spec import (
    CATALOGUE,
    CampaignConfig,
    CellSpec,
    FaultSpec,
    build_fault,
    enumerate_cells,
)

__all__ = [
    "CATALOGUE",
    "CampaignConfig",
    "CellError",
    "CellSpec",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FaultSpec",
    "FirstSeen",
    "FuzzConfig",
    "MutationEngine",
    "MutationSpace",
    "build_fault",
    "ddmin",
    "enumerate_cells",
    "minimize_cell",
    "render_fuzz_summary",
    "render_summary",
    "replay",
    "run_campaign",
    "run_cell_record",
    "validate_injections",
]
