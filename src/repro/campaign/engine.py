"""The campaign engine: run every cell, audit twice, shrink violations.

One *cell* is one deterministic simulation: a fresh pool and workload
(derived from the cell's seed), the cell's injection set scheduled on a
fault injector, and **two independent audits** of the same run:

- a :class:`~repro.obs.sanitize.PrincipleSanitizer` subscribed to the
  pool's telemetry bus before the simulation starts, judging P1-P4 live;
- the classic :class:`~repro.core.principles.PrincipleAuditor` over the
  artifacts (ground truth, interface registry, propagation trace) after
  it ends.

Each cell record carries both verdict lists and the cross-check bit
``live_matches_posthoc``; a disagreement means the instrumentation lost
an event, which is itself a reportable defect of the observability
layer.  Cells fan out over the
:class:`~repro.harness.parallel.ParallelRunner` (seed-order merge), so a
``--jobs 4`` campaign produces the byte-identical report to a serial
one.  Violating cells are then shrunk in the parent process to minimal
replayable reproducer specs.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.campaign.spec import CampaignConfig, CellSpec, build_fault, enumerate_cells
from repro.condor import JobState, Pool, PoolConfig
from repro.condor.daemons.config import CondorConfig
from repro.core.principles import PrincipleAuditor, Violation
from repro.faults import FaultInjector
from repro.harness.parallel import ParallelRunner
from repro.harness.workloads import WorkloadSpec, make_workload
from repro.jvm.program import Step
from repro.obs.bus import TelemetryBus, TelemetryEvent, Topic
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SimTimeProfiler
from repro.obs.sanitize import PrincipleSanitizer
from repro.obs.span import SpanBuilder
from repro.sim.rng import RngRegistry

__all__ = ["CellError", "campaign_section", "run_campaign", "run_cell_record"]


def campaign_section(config: CampaignConfig) -> dict:
    """The JSON-ready header shared by campaign and fuzz reports."""
    return {
        "mode": config.mode,
        "seed": config.seed,
        "n_jobs": config.n_jobs,
        "n_machines": config.n_machines,
        "max_order": config.max_order,
        "max_retries": config.max_retries,
        "max_time": config.max_time,
        "windows": [list(window) for window in config.windows],
        "kinds": None if config.kinds is None else list(config.kinds),
        "sites": list(config.sites),
        "job_indices": list(config.job_indices),
        "federation": config.federation,
        "defenses": config.defenses,
    }

MB = 2**20

#: Attribution triples kept per cell record when profiling is on.
PROFILE_TOP_N = 8


@dataclass(frozen=True)
class CellError:
    """A cell that raised instead of completing, as structured data.

    ``stage`` distinguishes a cell that could not even be *built*
    (unknown site, out-of-range job index -- "setup") from one whose
    simulation or audit raised ("simulate").  The distinction matters to
    the fuzzer: a setup error marks an invalid corner of the mutation
    space, a simulation error is a defect worth a bug report either way.
    """

    stage: str  # "setup" | "simulate"
    type: str
    message: str

    def as_dict(self) -> dict:
        return {"stage": self.stage, "type": self.type, "message": self.message}


def _cell_error_record(cell: CellSpec, error: CellError, features: bool) -> dict:
    """The normalized record of a cell that raised.

    Carries every field a successful record carries -- in particular the
    full ``injections`` list, so a report row for a broken cell still
    names the faults that broke it -- plus the structured ``error``.
    """
    record = {
        "cell": cell.cell_id,
        "mode": cell.mode,
        "seed": cell.seed,
        "injections": [spec.as_dict() for spec in cell.injections],
        "jobs": {"total": 0, "completed": 0, "held": 0, "unfinished": 0},
        "makespan": 0.0,
        "violations": [],
        "live_violations": [],
        "live_matches_posthoc": True,
        "profile": None,
        "error": error.as_dict(),
    }
    if features:
        record["signature"] = [f"cell-error:{error.stage}:{error.type}"]
    return record


def _violation_dict(violation: Violation) -> dict:
    return {
        "principle": violation.principle,
        "subject": violation.subject,
        "description": violation.description,
    }


def _violation_key(record: dict) -> tuple:
    return (record["principle"], record["subject"], record["description"])


def run_cell_record(
    cell: CellSpec,
    config: CampaignConfig,
    profile: bool = False,
    features: bool = False,
    on_error: str = "raise",
) -> dict:
    """Run one cell; return its JSON-ready record.

    Deterministic in (cell, config) alone: the pool, workload and
    arrival process all derive from the cell's seed, so the record is
    identical whether the cell runs in this process or in a worker.
    With *profile*, a :class:`~repro.obs.profile.SimTimeProfiler` rides
    the pool's bus and the record gains a ``profile`` section -- pure
    sim-time attribution, so it stays inside the determinism contract.
    With *features*, a :class:`~repro.obs.span.SpanBuilder` rides the
    bus too and the record gains the cell's coverage ``signature``
    (:func:`repro.obs.signature.signature`), the fuzzer's feedback.

    ``on_error`` decides what a raising cell becomes.  The default
    re-raises (the exhaustive campaign's contract: a broken cell aborts
    the sweep as an explicit :class:`~repro.harness.parallel.WorkerFailure`).
    ``on_error="record"`` instead returns a normalized :class:`CellError`
    record -- same fields as a successful record, ``error`` filled in --
    so one wild mutant cannot kill a fuzzing campaign.
    """
    stage = ["setup"]
    try:
        return _run_cell(cell, config, profile, features, stage)
    except Exception as exc:  # noqa: BLE001 - normalized or re-raised below
        if on_error != "record":
            raise
        return _cell_error_record(
            cell, CellError(stage[0], type(exc).__name__, str(exc)), features
        )


class MakespanRecorder:
    """Per-cell job-makespan distribution, via the same submit->result
    pairing the GridConsole uses -- so campaign summaries can quote the
    identical p50/p95/p99 footer."""

    def __init__(self, bus: TelemetryBus):
        self.registry = MetricsRegistry()
        self.values: list[float] = []
        self._submit: dict[str, float] = {}
        self._unsubscribe = bus.subscribe(self.on_event)

    def detach(self) -> None:
        self._unsubscribe()

    def on_event(self, event: TelemetryEvent) -> None:
        if event.topic is not Topic.JOB:
            return
        job = event.attr("job")
        if job is None:
            return
        if event.name == "submit":
            self._submit.setdefault(job, event.time)
        elif event.name in ("result", "hold"):
            submitted = self._submit.pop(job, None)
            if submitted is not None:
                makespan = event.time - submitted
                self.registry.histogram("job_makespan_seconds", makespan)
                self.values.append(makespan)

    def percentiles(self) -> dict[str, float] | None:
        """GridConsole's footer triple; None when no job finished."""
        p50 = self.registry.histogram_percentile("job_makespan_seconds", 50)
        if p50 is None:
            return None
        return {
            "p50": p50,
            "p95": self.registry.histogram_percentile("job_makespan_seconds", 95),
            "p99": self.registry.histogram_percentile("job_makespan_seconds", 99),
        }


def _run_cell(
    cell: CellSpec,
    config: CampaignConfig,
    profile: bool,
    features: bool,
    stage: list,
) -> dict:
    registry: list = []
    defense_knobs = (
        dict(
            startd_self_test=True,
            self_test_interval=60.0,
            schedd_avoidance=True,
        )
        if config.defenses
        else {}
    )
    condor = CondorConfig(
        error_mode=cell.mode,
        interface_registry=registry,
        max_retries=config.max_retries,
        **defense_knobs,
    )
    if config.federation:
        from repro.condor.grid import Grid, GridConfig, GridPoolSpec

        pool = Grid(
            GridConfig(
                pools=(
                    GridPoolSpec("a", n_machines=config.n_machines),
                    GridPoolSpec("b", n_machines=config.remote_machines),
                ),
                seed=cell.seed,
                condor=condor,
            )
        )
    else:
        pool = Pool(PoolConfig(n_machines=config.n_machines, seed=cell.seed, condor=condor))
    rngs = RngRegistry(cell.seed)
    workload = WorkloadSpec(
        n_jobs=config.n_jobs,
        io_fraction=0.5,
        exception_fraction=0.1,
        exit_code_fraction=0.1,
        mean_work=8.0,
    )
    jobs = make_workload(workload, rngs.stream("campaign"), home_fs=pool.home_fs)
    # Jobs that allocate exercise memory-pressure cells (cf. _run_mode).
    for i, job in enumerate(jobs):
        if i % 3 == 0:
            job.image.program.steps.insert(0, Step.allocate(16 * MB))

    injector = FaultInjector(pool)
    makespans = MakespanRecorder(pool.bus)
    profiler = SimTimeProfiler(pool.bus) if profile else None
    spans = SpanBuilder(pool.bus) if features else None
    sanitizer = PrincipleSanitizer(
        pool.bus, injector=injector, jobs=jobs, fail_fast=config.fail_fast
    )
    # Stagger arrivals so the stream overlaps bounded injection windows.
    arrivals = rngs.stream("arrivals")
    when = 0.0
    for job in jobs:
        pool.submit_at(job, when)
        when += arrivals.expovariate(1.0 / 40.0)
    for spec in cell.injections:
        injector.schedule(build_fault(spec, pool, jobs), at=spec.at, until=spec.until)

    stage[0] = "simulate"
    pool.run_until_done(max_time=config.max_time, expected_jobs=len(jobs))
    makespans.detach()
    sanitizer.detach()
    if spans is not None:
        spans.detach()
    if profiler is not None:
        profiler.detach()
    if sanitizer.failure is not None:
        # A fail-fast raise inside a daemon process is absorbed as that
        # process's death; surface it here so --fail-fast always stops
        # the campaign at the first violating cell.
        raise sanitizer.failure

    auditor = PrincipleAuditor()
    auditor.audit_outcomes(injector.audit_outcomes(jobs))
    auditor.audit_interfaces(registry)
    auditor.audit_trace(pool.trace)

    posthoc = [_violation_dict(v) for v in auditor.violations]
    live = [_violation_dict(v) for v in sanitizer.violations]
    completed = sum(1 for j in jobs if j.state is JobState.COMPLETED)
    held = sum(1 for j in jobs if j.state is JobState.HELD)
    cell_profile = None
    if profiler is not None:
        snapshot = profiler.snapshot()
        cell_profile = {
            "events": snapshot["events"],
            "sim_time": snapshot["sim_time"],
            "top": snapshot["triples"][:PROFILE_TOP_N],
        }
    record = {
        "cell": cell.cell_id,
        "mode": cell.mode,
        "seed": cell.seed,
        "injections": [spec.as_dict() for spec in cell.injections],
        "jobs": {
            "total": len(jobs),
            "completed": completed,
            "held": held,
            "unfinished": len(jobs) - completed - held,
        },
        "makespan": pool.sim.now,
        "job_makespans": sorted(makespans.values),
        "makespan_percentiles": makespans.percentiles(),
        "violations": posthoc,
        "live_violations": live,
        "live_matches_posthoc": (
            sorted(map(_violation_key, posthoc)) == sorted(map(_violation_key, live))
        ),
        "profile": cell_profile,
        "error": None,
    }
    if spans is not None:
        from repro.obs.signature import signature

        record["signature"] = list(
            signature(posthoc, spans.spans, [job.state.name for job in jobs])
        )
    return record


def run_campaign(
    config: CampaignConfig,
    cells: tuple[CellSpec, ...] | None = None,
    jobs: int = 1,
    shrink: bool = True,
    profile: bool = False,
) -> dict:
    """Run the whole matrix; return the JSON-ready campaign report.

    With ``jobs > 1`` cells fan out over worker processes; the merge
    preserves matrix order, and every cell is self-seeding, so the
    report is byte-identical to a serial run.  With *shrink*, each
    violating cell gains a ``reproducer`` spec minimized by delta
    debugging (in the parent, after the fan-out).  With *profile*,
    every cell record carries a sim-time attribution section
    (deterministic, so it survives the byte-identity guarantee even
    across ``--jobs`` fan-out).
    """
    from repro.campaign.shrink import minimize_cell

    if cells is None:
        cells = enumerate_cells(config)
    runner = ParallelRunner(
        functools.partial(run_cell_record, config=config, profile=profile),
        workers=jobs,
    )
    records = [outcome.value for outcome in runner.map(list(cells))]
    for cell, record in zip(cells, records):
        record["reproducer"] = (
            minimize_cell(cell, config) if shrink and record["violations"] else None
        )
    by_principle = {f"P{p}": 0 for p in (1, 2, 3, 4)}
    for record in records:
        for violation in record["violations"]:
            by_principle[f"P{violation['principle']}"] += 1
    return {
        "campaign": campaign_section(config),
        "cells": records,
        "totals": {
            "cells": len(records),
            "cells_with_violations": sum(1 for r in records if r["violations"]),
            "violations": sum(len(r["violations"]) for r in records),
            "by_principle": by_principle,
            "live_mismatches": sum(
                1 for r in records if not r["live_matches_posthoc"]
            ),
            "reproducers": sum(1 for r in records if r["reproducer"] is not None),
        },
    }
