"""Per-error journey reconstruction and aggregate statistics."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.core.propagation import EventType, PropagationTrace, TraceEvent
from repro.core.scope import ErrorScope
from repro.harness.report import Table

__all__ = ["Journey", "JourneyStats", "analyze_trace", "journeys", "observed_scope_map"]


@dataclass
class Journey:
    """One error's path through the management chain."""

    error_id: int
    name: str
    scope: ErrorScope
    events: list[TraceEvent] = field(default_factory=list)

    @property
    def discovered_at(self) -> float:
        return self.events[0].time

    @property
    def discovered_by(self) -> str:
        return self.events[0].manager

    @property
    def terminal_event(self) -> TraceEvent | None:
        for event in reversed(self.events):
            if event.event in (
                EventType.MASKED,
                EventType.REPORTED,
                EventType.MISHANDLED,
                EventType.UNMANAGED,
            ):
                return event
        return None

    @property
    def handler(self) -> str | None:
        terminal = self.terminal_event
        if terminal is None or terminal.event is EventType.UNMANAGED:
            return None
        return terminal.manager

    @property
    def hops(self) -> int:
        return sum(1 for e in self.events if e.event is EventType.ESCALATED)

    @property
    def latency(self) -> float:
        terminal = self.terminal_event
        if terminal is None:
            return float("nan")
        return terminal.time - self.discovered_at

    @property
    def correctly_delivered(self) -> bool:
        """Did the error reach a manager of its scope (Principle 3)?"""
        terminal = self.terminal_event
        return terminal is not None and terminal.event in (
            EventType.MASKED,
            EventType.REPORTED,
        )


def journeys(trace: PropagationTrace) -> list[Journey]:
    """Group a trace into per-error journeys, in discovery order."""
    by_id: dict[int, Journey] = {}
    for event in trace:
        journey = by_id.get(event.error.error_id)
        if journey is None:
            journey = Journey(
                error_id=event.error.error_id,
                name=event.error.name,
                scope=event.error.scope,
                events=[],
            )
            by_id[event.error.error_id] = journey
        journey.events.append(event)
    return list(by_id.values())


@dataclass
class JourneyStats:
    """Aggregate statistics over a trace's journeys."""

    total: int
    correctly_delivered: int
    mishandled: int
    unmanaged: int
    mean_hops: float
    max_hops: int
    by_scope: dict[ErrorScope, int]
    by_handler: dict[str, int]

    def table(self) -> Table:
        table = Table(["quantity", "value"], title="journey statistics")
        table.add_row(["errors traced", self.total])
        table.add_row(["correctly delivered (P3)", self.correctly_delivered])
        table.add_row(["mishandled", self.mishandled])
        table.add_row(["unmanaged", self.unmanaged])
        table.add_row(["mean hops to handler", round(self.mean_hops, 3)])
        table.add_row(["max hops", self.max_hops])
        for scope in sorted(self.by_scope):
            table.add_row([f"errors of {scope} scope", self.by_scope[scope]])
        for handler in sorted(self.by_handler):
            table.add_row([f"handled by {handler}", self.by_handler[handler]])
        return table


def analyze_trace(trace: PropagationTrace) -> JourneyStats:
    """Compute :class:`JourneyStats` for *trace*."""
    all_journeys = journeys(trace)
    hops = np.array([j.hops for j in all_journeys], dtype=float) if all_journeys else np.array([0.0])
    by_scope: dict[ErrorScope, int] = defaultdict(int)
    by_handler: dict[str, int] = defaultdict(int)
    mishandled = 0
    unmanaged = 0
    delivered = 0
    for journey in all_journeys:
        by_scope[journey.scope] += 1
        terminal = journey.terminal_event
        if terminal is None:
            continue
        if terminal.event is EventType.MISHANDLED:
            mishandled += 1
        elif terminal.event is EventType.UNMANAGED:
            unmanaged += 1
        else:
            delivered += 1
        if journey.handler is not None:
            by_handler[journey.handler] += 1
    return JourneyStats(
        total=len(all_journeys),
        correctly_delivered=delivered,
        mishandled=mishandled,
        unmanaged=unmanaged,
        mean_hops=float(hops.mean()) if all_journeys else 0.0,
        max_hops=int(hops.max()) if all_journeys else 0,
        by_scope=dict(by_scope),
        by_handler=dict(by_handler),
    )


def observed_scope_map(trace: PropagationTrace) -> Table:
    """Figure 3 as measured: scope -> set of handlers actually observed."""
    handlers: dict[ErrorScope, set[str]] = defaultdict(set)
    for journey in journeys(trace):
        if journey.handler is not None:
            handlers[journey.scope].add(journey.handler)
    table = Table(["scope", "observed handler(s)", "expected handler"],
                  title="observed scope -> handler map (cf. Figure 3)")
    for scope in sorted(handlers):
        table.add_row([
            str(scope),
            ", ".join(sorted(handlers[scope])),
            scope.managing_program,
        ])
    return table
