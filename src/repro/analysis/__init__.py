"""Trace analytics: quantitative views over propagation traces.

The :class:`~repro.core.propagation.PropagationTrace` records every
error's journey; this package turns those journeys into the numbers and
tables the experiments report:

- :mod:`repro.analysis.journeys` -- per-error journey reconstruction,
  hop counts, discovery-to-handling latency, handler histograms, and an
  observed scope -> handler map (Figure 3, as measured).
"""

from repro.analysis.journeys import (
    Journey,
    JourneyStats,
    analyze_trace,
    journeys,
    observed_scope_map,
)

__all__ = [
    "Journey",
    "JourneyStats",
    "analyze_trace",
    "journeys",
    "observed_scope_map",
]
