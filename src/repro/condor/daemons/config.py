"""Pool-wide configuration knobs.

``error_mode`` selects the paper's before/after:

- ``"naive"`` -- §2.3: bare JVM (exit codes only), generic I/O interface,
  every component failure returned to the user;
- ``"scoped"`` -- §4: wrapper + result file, finite I/O interface with
  escaping errors, schedd scope policy (retry in-between scopes).

``startd_self_test`` and ``schedd_avoidance`` are the two §5 defenses
against black-hole machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CondorConfig"]


@dataclass
class CondorConfig:
    error_mode: str = "scoped"  # "naive" | "scoped" ("classic" = alias for "naive")
    #: Matchmaker fair share: negotiate for the user with the least
    #: recent usage first (usage halves each cycle, like Condor's
    #: effective user priority).  Off = pure submission order.
    fair_share: bool = True
    usage_decay: float = 0.5
    #: Rank-based preemption: a claimed slot may be handed to a job the
    #: machine's Rank expression prefers; the incumbent is evicted
    #: (checkpointing softens the blow, §2.1).
    preemption: bool = False
    startd_self_test: bool = False
    #: re-run the self-test this often (0 = startup only), so machines
    #: that break *after* boot also stop advertising
    self_test_interval: float = 0.0
    schedd_avoidance: bool = False
    #: consecutive environmental failures at one site before the schedd
    #: avoids it (only with schedd_avoidance)
    avoidance_threshold: int = 2
    #: "backoff" -- avoidance windows grow exponentially per strike and a
    #: site is re-admitted on probation when its window expires (a
    #: probation success clears the record); "permanent" -- the original
    #: blacklist that never forgives (kept for EXP-CHURN's baseline).
    avoidance_mode: str = "backoff"
    #: first avoidance window, doubled per strike past the threshold
    avoidance_base: float = 120.0
    avoidance_cap: float = 3840.0
    #: Flocking (pool-of-pools): remote matchmakers the schedd may
    #: overflow idle jobs to.  A job idle longer than ``flock_after`` is
    #: advertised to flock targets as well as the home matchmaker.
    flock_after: float = 60.0
    #: consecutive unreachable advertise attempts before a flock link is
    #: declared down (a POOL-scope error, masked by the grid-aware schedd)
    flock_retry_budget: int = 3
    #: backoff between attempts on an unreachable flock link
    flock_backoff_base: float = 15.0
    flock_backoff_cap: float = 480.0
    #: give up and hold a job after this many environmental retries
    max_retries: int = 20
    # daemon cadences (simulated seconds)
    advertise_interval: float = 30.0
    negotiation_interval: float = 15.0
    ad_lifetime: float = 90.0
    # timeouts
    claim_timeout: float = 10.0
    control_timeout: float = 60.0
    rpc_timeout: float = 10.0
    io_request_timeout: float = 20.0
    # file transfer
    transfer_chunk: int = 4096
    # Standard Universe checkpointing (§2.1: "transparent checkpointing")
    checkpointing: bool = True
    checkpoint_every_steps: int = 1
    #: When not None, every starter appends its I/O library's
    #: ErrorInterface here, so the principle auditor can inspect the
    #: crossings after a run (P2/P4).
    interface_registry: list | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # "classic" is the campaign literature's name for the pre-fix
        # behaviour; normalise it so every downstream mode check stays a
        # two-way branch.
        if self.error_mode == "classic":
            self.error_mode = "naive"
        if self.error_mode not in ("naive", "scoped"):
            raise ValueError(
                f"error_mode must be 'naive', 'scoped' or 'classic', not {self.error_mode!r}"
            )
        if self.avoidance_mode not in ("backoff", "permanent"):
            raise ValueError(
                f"avoidance_mode must be 'backoff' or 'permanent', not {self.avoidance_mode!r}"
            )
