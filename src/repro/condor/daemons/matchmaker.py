"""The matchmaker (central manager).

    "This process collects information about all participants, and
    notifies schedds and startds of compatible partners.  Matched
    processes are individually responsible for communicating with each
    other and verifying that their needs are met." (§2.1)

The matchmaker never sees job data or error detail -- it deals only in
ClassAds, which is why matchmaking survives every failure mode in this
reproduction: a broken execution site simply stops advertising (or keeps
advertising and becomes a black hole, §5).

Negotiation is the pool's scalability bottleneck: the reference
algorithm evaluates ``symmetric_match`` against every machine ad for
every idle job, O(jobs x machines) ClassAd evaluations per cycle.  This
implementation keeps that scan (:meth:`Matchmaker._best_machine_scan`)
as the executable specification -- it still runs under preemption, and
the test suite cross-checks against it -- but serves the common case
from three incrementally-maintained structures:

- a **fresh set** of machines that are unclaimed and have advertised
  since they were last matched (most ads are eliminated by these two
  cheap checks, so the set replaces two per-candidate tests with set
  membership and makes an empty pool a O(1) early exit);
- a **requirement-bucket index** (:class:`MachineIndex`) that narrows a
  job's candidates to machines satisfying one statically-extracted
  conjunct of its Requirements -- a provable superset of the true
  matches, so every survivor is still verified with ``symmetric_match``;
- **cached rank orders**: for jobs whose Rank provably depends only on
  machine literals, all machines are kept sorted by the exact selection
  key ``(-rank, last_matched, name)``; the first live entry that passes
  the bucket test and ``symmetric_match`` *is* the scan's winner, so a
  match costs O(1) evaluations instead of O(machines).

Winner equivalence holds because the scan's sort key ends with the
unique machine name: the winner is the unique key-minimum over passing
candidates, which no enumeration order can change.  Entries in a cached
order are stamped with a per-machine sequence number; any event that
could change an entry's key (a new ad) bumps the sequence, and any event
that silently stales the recorded ``last_matched`` component (a match)
also removes the machine from the fresh set until its next ad -- so a
walk never compares a stale key.  Dead entries are lazily skipped and
the dead *prefix* is compacted, keeping a full negotiation cycle over a
homogeneous pool linear rather than quadratic in the number of matches.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.condor.classads import ClassAd, rank, symmetric_match
from repro.condor.classads.expr import Literal
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.match_index import (
    MachineIndex,
    machine_rank_literal,
    rank_cacheable,
)
from repro.condor.protocols import (
    Advertise,
    AdvertiseBatch,
    InvalidateAd,
    MatchNotify,
    WireSize,
)
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkError

__all__ = ["Matchmaker"]

#: Decayed owner-usage entries below this are dropped entirely; without a
#: floor the fair-share table retains every owner ever seen, forever.
USAGE_EPSILON = 1e-9

#: Rebuild threshold: a cached rank order whose dead entries outnumber
#: the live pool by this factor is filtered down to its live entries.
_ORDER_SLACK = 2

_MISSING = object()


@dataclass
class _StoredAd:
    name: str
    ad: ClassAd
    received: float
    reply_host: str = ""
    reply_port: int = 0
    #: Precomputed state check (ads are immutable once stored).
    unclaimed: bool = True


class _RankOrder:
    """All machines sorted by one job-side Rank's exact selection key.

    *probe* is a minimal ad carrying just the Rank expression, so the
    (machine-only) rank of a new ad can be evaluated without any job in
    hand.  *order* holds ``(-rank, last_matched, name, seq)`` tuples;
    an entry is live while its *seq* matches the machine's current
    advertisement sequence.
    """

    __slots__ = ("probe", "refs", "order", "cursors")

    def __init__(self, probe: ClassAd, refs: frozenset[str]):
        self.probe = probe
        self.refs = refs
        self.order: list[tuple[float, float, str, int]] = []
        #: match-key -> index where that key's last walk stopped.  Valid
        #: while the pool only shrinks (cleared on any machine ad):
        #: entries before the stop point were dead, bucket-rejected, or
        #: failed symmetric_match for an identically-keyed job, and none
        #: of those verdicts can flip while no ad changes, so the next
        #: same-key walk resumes there instead of rescanning the head.
        self.cursors: dict[tuple, int] = {}


class Matchmaker:
    """Collects ads and runs periodic negotiation cycles."""

    PORT = 9618

    def __init__(self, sim: Simulator, net: Network, host: str, config: CondorConfig):
        self.sim = sim
        self.net = net
        self.host = host
        self.config = config
        self.machine_ads: dict[str, _StoredAd] = {}
        self.job_ads: dict[str, _StoredAd] = {}
        self.matches_made = 0
        self.cycles_run = 0
        self._recently_matched: dict[str, float] = {}  # startd name -> time
        #: Decayed per-owner usage: the fair-share "effective user
        #: priority" (larger = worse priority, negotiated later).
        self.owner_usage: dict[str, float] = {}
        #: Machines that are unclaimed and have advertised since they
        #: were last matched -- the only possible candidates when
        #: preemption is off.
        self._fresh: set[str] = set()
        self._index = MachineIndex()
        #: Per-machine advertisement sequence; bumped on every stored ad
        #: so cached rank-order entries can detect staleness in O(1).
        self._ad_seq: dict[str, int] = {}
        #: Rank expression (or None) -> _RankOrder, or None when the
        #: expression was found job-dependent / machine-expression-bound.
        self._rank_orders: dict[object, _RankOrder | None] = {}
        #: Lazy-deletion expiry heap of (received, kind, name); kind 0 is
        #: a machine ad, 1 a job ad.  Stale entries (the ad was refreshed
        #: or the job matched) are detected by comparing timestamps.
        self._expiry_heap: list[tuple[float, int, str]] = []
        #: Match-relevant summaries of jobs proven unmatchable against
        #: the current pool (see :meth:`_match_key`).  While the
        #: candidate pool only shrinks -- matches and expiries remove
        #: machines, nothing edits one in place -- a no-match verdict
        #: stays correct, so the memo is cleared only when a machine ad
        #: arrives.  A saturated cycle (far more idle jobs than free
        #: machines) costs one full search per distinct summary instead
        #: of one per job.
        self._no_match_memo: set[tuple] = set()
        self.listener = net.listen(host, self.PORT)
        self._accept_proc = sim.spawn(self._accept_loop(), name="matchmaker-accept")
        self._accept_proc.defuse()
        self._cycle_proc = sim.spawn(self._negotiation_loop(), name="matchmaker-cycle")
        self._cycle_proc.defuse()

    # -- collection ----------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._collect(conn), name="matchmaker-collect")
            handler.defuse()

    def _collect(self, conn):
        # A single connection may carry several messages; read until the
        # sender closes.  Batched ads (one message per startd/schedd, not
        # per slot/job) keep the receive-deadline count per advertisement
        # constant.
        try:
            while True:
                message = yield from conn.recv(timeout=self.config.claim_timeout)
                if isinstance(message, AdvertiseBatch):
                    for name, ad in message.ads:
                        self.receive_ad(message.kind, name, ad)
                elif isinstance(message, Advertise):
                    self.receive_ad(message.kind, message.name, message.ad)
                elif isinstance(message, InvalidateAd):
                    for name in message.names:
                        self.retract_ad(message.kind, name)
        except NetworkError:
            return

    @staticmethod
    def _port_of(ad: ClassAd, attr: str) -> int:
        """*attr* as a port number; malformed values count as unset.

        An ad is foreign input -- a port attribute bound to a non-numeric
        string must degrade to "no reply channel", not raise out of the
        collect loop and kill the matchmaker.
        """
        try:
            return int(ad.value(attr, 0) or 0)
        except (TypeError, ValueError):
            return 0

    def receive_ad(self, kind: str, name: str, ad: ClassAd) -> None:
        """Store one advertisement and maintain the derived structures."""
        stored = _StoredAd(
            name=name,
            ad=ad,
            received=self.sim.now,
            reply_host=str(ad.value("scheddhost", "")),
            reply_port=self._port_of(ad, "scheddport"),
            unclaimed=ad.value("state", "unclaimed") == "unclaimed",
        )
        if kind == "machine":
            self.machine_ads[name] = stored
            self._index.add(name, ad)
            # A new (or refreshed) machine ad can create matches that did
            # not exist before; every cached no-match verdict and every
            # walk cursor is suspect.
            self._no_match_memo.clear()
            for entry in self._rank_orders.values():
                if entry is not None and entry.cursors:
                    entry.cursors.clear()
            self._ad_seq[name] = seq = self._ad_seq.get(name, 0) + 1
            # Matched-at == received-at keeps the machine eligible (the
            # ad is not older than the match); only a strictly later
            # match makes it stale.
            if stored.unclaimed and self._recently_matched.get(name, -1.0) <= stored.received:
                self._fresh.add(name)
            else:
                self._fresh.discard(name)
            self._admit_to_orders(name, stored, seq)
            heappush(self._expiry_heap, (stored.received, 0, name))
        elif kind == "job":
            self.job_ads[name] = stored
            heappush(self._expiry_heap, (stored.received, 1, name))

    def retract_ad(self, kind: str, name: str) -> None:
        """Drop one ad immediately (graceful machine leave).

        The expiry path (:meth:`_expire`) does the same eventually; a
        retraction just refuses to hand out a machine its owner already
        said goodbye to.  Cached rank-order entries die automatically
        (their sequence number no longer matches), and the last-matched
        stamp goes with the ad -- the same leak-prevention discipline
        expiry applies.
        """
        if kind == "machine":
            if self.machine_ads.pop(name, None) is None:
                return
            self._index.remove(name)
            self._fresh.discard(name)
            self._ad_seq.pop(name, None)
            self._recently_matched.pop(name, None)
        elif kind == "job":
            self.job_ads.pop(name, None)

    def _admit_to_orders(self, name: str, stored: _StoredAd, seq: int) -> None:
        """Insert the new ad into every cached rank order (or poison the
        orders its non-literal attributes would make job-dependent)."""
        if not self._rank_orders:
            return
        recent = self._recently_matched.get(name, -1.0)
        live = len(self.machine_ads)
        for key, entry in list(self._rank_orders.items()):
            if entry is None:
                continue
            if not machine_rank_literal(stored.ad, entry.refs):
                self._rank_orders[key] = None
                continue
            insort(entry.order, (-rank(entry.probe, stored.ad), recent, name, seq))
            if len(entry.order) > _ORDER_SLACK * live + 64:
                seqs = self._ad_seq
                entry.order = [e for e in entry.order if seqs.get(e[2]) == e[3]]

    def _expire(self) -> None:
        horizon = self.sim.now - self.config.ad_lifetime
        heap = self._expiry_heap
        while heap and heap[0][0] < horizon:
            received, ad_kind, name = heappop(heap)
            table = self.machine_ads if ad_kind == 0 else self.job_ads
            stored = table.get(name)
            if stored is None or stored.received != received:
                continue  # superseded by a fresher ad (or already matched)
            del table[name]
            if ad_kind == 0:
                self._index.remove(name)
                self._fresh.discard(name)
                self._ad_seq.pop(name, None)
                # An expired machine cannot be matched again, so its
                # last-matched stamp is dead weight; dropping it here is
                # what keeps _recently_matched bounded by the pool size
                # (it previously grew monotonically with churn).
                self._recently_matched.pop(name, None)

    # -- negotiation ---------------------------------------------------------
    def _negotiation_loop(self):
        while True:
            yield self.sim.timeout(self.config.negotiation_interval)
            yield from self.run_cycle()

    def run_cycle(self):
        """Generator: one negotiation cycle over all current ads."""
        self.cycles_run += 1
        self._expire()
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "negotiation_cycle",
                cycle=self.cycles_run,
                jobs=len(self.job_ads), machines=len(self.machine_ads),
            )
        for owner in list(self.owner_usage):
            decayed = self.owner_usage[owner] * self.config.usage_decay
            if decayed < USAGE_EPSILON:
                # Fully-decayed owners are indistinguishable from never
                # seen; keeping them would leak an entry per owner ever
                # observed.
                del self.owner_usage[owner]
            else:
                self.owner_usage[owner] = decayed
        # Fair share: least-used owner negotiates first; within an owner,
        # submission order.  Without fair share, pure insertion order --
        # both deterministic.
        entries = list(self.job_ads.items())
        if self.config.fair_share:
            arrival = {name: i for i, (name, _) in enumerate(entries)}
            entries.sort(
                key=lambda item: (
                    self.owner_usage.get(self._owner_of(item[1]), 0.0),
                    arrival[item[0]],
                )
            )
        for job_name, job_stored in entries:
            best = self._best_machine(job_stored.ad)
            if best is None:
                continue
            machine_name = str(best.ad.value("machine", best.name))
            notify = MatchNotify(
                job_id=str(job_stored.ad.value("jobid", job_name)),
                # The slot is an execution-site detail; the schedd's view
                # of "the site" (avoidance, attempt history) is the machine.
                startd_name=machine_name,
                startd_host=machine_name,
                startd_port=self._port_of(best.ad, "startdport"),
                machine_ad=best.ad,
            )
            delivered = yield from self._notify_schedd(job_stored, notify)
            if delivered:
                self.matches_made += 1
                if bus is not None and bus.active:
                    bus.emit(
                        self.sim.now, "daemon", "match_made",
                        job=notify.job_id, machine=machine_name,
                    )
                owner = self._owner_of(job_stored)
                self.owner_usage[owner] = self.owner_usage.get(owner, 0.0) + 1.0
                # One claim per machine per cycle; the startd re-advertises
                # its new state when claimed.
                self._record_match(best)
                if job_name in self.job_ads:
                    del self.job_ads[job_name]

    @staticmethod
    def _owner_of(stored: _StoredAd) -> str:
        return str(stored.ad.value("owner", "unknown"))

    def _record_match(self, best: _StoredAd) -> None:
        """Mark *best* matched now, keeping the fresh set consistent.

        An ad received at exactly the match instant is not stale (the
        strict comparison mirrors :meth:`_best_machine_scan`'s skip).
        """
        self._recently_matched[best.name] = self.sim.now
        if self.sim.now > best.received:
            self._fresh.discard(best.name)

    # -- selection -----------------------------------------------------------
    def _best_machine(self, job_ad: ClassAd) -> _StoredAd | None:
        """The scan winner for *job_ad*, via the indexed fast path.

        Preemption makes claimed machines candidates with a per-(job,
        machine) rank comparison the index cannot summarize, so that
        configuration keeps the reference scan.
        """
        if self.config.preemption:
            return self._best_machine_scan(job_ad)
        fresh = self._fresh
        if not fresh:
            return None
        test, estimate, names = self._index.membership(job_ad)
        if test is not None and estimate == 0:
            return None  # no machine can satisfy the indexed conjunct
        key = self._match_key(job_ad)
        if key is not None and key in self._no_match_memo:
            return None
        entry = self._order_for(job_ad)
        if entry is not None:
            # Always prefer the walk when a rank order exists: its first
            # survivor ends the search, and skipping a dead or
            # non-matching entry costs a set lookup -- orders of
            # magnitude below one symmetric_match, which _pick_best must
            # pay for every candidate (min-by-key cannot early-exit).
            winner = self._walk(job_ad, entry, test, key)
        elif names is not None and estimate < len(fresh):
            # Job-dependent rank: enumerate the smaller candidate set.
            winner = self._pick_best(job_ad, names, None)
        else:
            winner = self._pick_best(job_ad, fresh, test)
        if winner is None and key is not None:
            self._no_match_memo.add(key)
        return winner

    def _match_key(self, job_ad: ClassAd) -> tuple | None:
        """A summary of everything about *job_ad* that can influence
        whether it matches: its Requirements expression plus the job's
        value for every attribute that expression -- or any machine's
        Requirements -- references.  Two jobs with equal summaries see
        identical candidate verdicts against identical pool state, so a
        no-match result is shared between them.  Rank is deliberately
        excluded: it orders candidates but cannot create one.  Jobs with
        an expression-valued referenced attribute are not summarizable
        (the chain could reach anything) and return None.
        """
        req = job_ad.lookup("requirements")
        refs = set(self._index.requirement_refs)
        if req is not None:
            refs.update(req.external_refs())
        parts: list[object] = [req]
        for name in sorted(refs):
            expr = job_ad.lookup(name)
            if expr is None:
                parts.append((name, None))
            elif type(expr) is Literal:
                parts.append((name, expr.value))
            else:
                return None
        return tuple(parts)

    def _order_for(self, job_ad: ClassAd) -> _RankOrder | None:
        expr = job_ad.lookup("rank")
        entry = self._rank_orders.get(expr, _MISSING)
        if entry is not _MISSING:
            return entry
        if len(self._rank_orders) >= 32:
            self._rank_orders.clear()  # pathological rank diversity
        entry = self._build_order(expr)
        self._rank_orders[expr] = entry
        return entry

    def _build_order(self, expr) -> _RankOrder | None:
        if not rank_cacheable(expr):
            return None
        refs = frozenset() if expr is None else frozenset(expr.external_refs())
        probe = ClassAd()
        if expr is not None:
            probe["rank"] = expr
        entry = _RankOrder(probe, refs)
        order = entry.order
        for name, stored in self.machine_ads.items():
            if not machine_rank_literal(stored.ad, refs):
                return None
            order.append(
                (
                    -rank(probe, stored.ad),
                    self._recently_matched.get(name, -1.0),
                    name,
                    self._ad_seq.get(name, 0),
                )
            )
        order.sort()
        return entry

    def _walk(
        self, job_ad: ClassAd, entry: _RankOrder, test, key: tuple | None
    ) -> _StoredAd | None:
        """First live entry passing every reference check == scan winner.

        Dead entries (superseded ad, matched or claimed machine) can
        never come back to life under the same sequence number, so the
        leading dead run is sliced off once it is worth the copy.

        *key* is the job's match summary (None when not summarizable):
        the walk resumes at that key's cursor and records where it
        stopped.  The cursor points *at* the winner, not past it -- an
        undelivered match (or one at the machine's own advertise
        instant) leaves the machine fresh, and the next same-key job
        must be able to take it.
        """
        order = entry.order
        seqs = self._ad_seq
        fresh = self._fresh
        machine_ads = self.machine_ads
        start = entry.cursors.get(key, 0) if key is not None else 0
        dead_prefix = start
        winner = None
        stop = len(order)
        for i in range(start, len(order)):
            _, _, name, seq = order[i]
            if seqs.get(name) != seq or name not in fresh:
                if dead_prefix == i:
                    dead_prefix += 1
                continue
            if test is not None and not test(name):
                continue
            stored = machine_ads[name]
            if symmetric_match(job_ad, stored.ad):
                winner = stored
                stop = i
                break
        if key is not None:
            entry.cursors[key] = stop
        if start == 0 and dead_prefix > 64:
            del order[:dead_prefix]
            if entry.cursors:
                entry.cursors = {
                    k: v - dead_prefix if v > dead_prefix else 0
                    for k, v in entry.cursors.items()
                }
        return winner

    def _pick_best(self, job_ad: ClassAd, names, test) -> _StoredAd | None:
        """Exact selection over *names* by the scan's sort key.

        The key ends with the unique machine name, so the minimum is
        independent of enumeration order (sets are safe).
        """
        fresh = self._fresh
        best = best_key = None
        for name in names:
            if name not in fresh:
                continue
            if test is not None and not test(name):
                continue
            stored = self.machine_ads.get(name)
            if stored is None or not symmetric_match(job_ad, stored.ad):
                continue
            key = (
                -rank(job_ad, stored.ad),
                self._recently_matched.get(name, -1.0),
                name,
            )
            if best_key is None or key < best_key:
                best_key, best = key, stored
        return best

    def _best_machine_scan(self, job_ad: ClassAd) -> _StoredAd | None:
        """Reference scan: the executable specification of selection.

        The indexed path must return exactly this winner for every pool
        state (cross-checked in tests/condor/test_match_index.py).
        """
        candidates = []
        for stored in self.machine_ads.values():
            if not stored.unclaimed:
                if not self.config.preemption:
                    continue
                # Preemption: a claimed slot is still a candidate when the
                # machine's Rank strictly prefers this job to its current one.
                current = float(stored.ad.value("currentrank", 0.0) or 0.0)
                if rank(stored.ad, job_ad) <= current:
                    continue
            if self._recently_matched.get(stored.name, -1.0) > stored.received:
                continue  # matched strictly after it last advertised
            if symmetric_match(job_ad, stored.ad):
                candidates.append(stored)
        if not candidates:
            return None
        # Highest job rank first; ties go to the least-recently-matched
        # machine (spreads retries across the pool), then name for
        # determinism.
        candidates.sort(
            key=lambda s: (
                -rank(job_ad, s.ad),
                self._recently_matched.get(s.name, -1.0),
                s.name,
            )
        )
        return candidates[0]

    def _notify_schedd(self, job_stored: _StoredAd, notify: MatchNotify):
        if not job_stored.reply_host:
            return False
        try:
            conn = yield from self.net.connect(
                self.host, job_stored.reply_host, job_stored.reply_port,
                timeout=self.config.claim_timeout,
            )
            conn.send(notify, size=WireSize.AD)
            conn.close()
            return True
        except NetworkError:
            return False
