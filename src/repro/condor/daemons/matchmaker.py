"""The matchmaker (central manager).

    "This process collects information about all participants, and
    notifies schedds and startds of compatible partners.  Matched
    processes are individually responsible for communicating with each
    other and verifying that their needs are met." (§2.1)

The matchmaker never sees job data or error detail -- it deals only in
ClassAds, which is why matchmaking survives every failure mode in this
reproduction: a broken execution site simply stops advertising (or keeps
advertising and becomes a black hole, §5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.classads import ClassAd, rank, symmetric_match
from repro.condor.daemons.config import CondorConfig
from repro.condor.protocols import Advertise, MatchNotify, WireSize
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkError

__all__ = ["Matchmaker"]


@dataclass
class _StoredAd:
    name: str
    ad: ClassAd
    received: float
    reply_host: str = ""
    reply_port: int = 0


class Matchmaker:
    """Collects ads and runs periodic negotiation cycles."""

    PORT = 9618

    def __init__(self, sim: Simulator, net: Network, host: str, config: CondorConfig):
        self.sim = sim
        self.net = net
        self.host = host
        self.config = config
        self.machine_ads: dict[str, _StoredAd] = {}
        self.job_ads: dict[str, _StoredAd] = {}
        self.matches_made = 0
        self.cycles_run = 0
        self._recently_matched: dict[str, float] = {}  # startd name -> time
        #: Decayed per-owner usage: the fair-share "effective user
        #: priority" (larger = worse priority, negotiated later).
        self.owner_usage: dict[str, float] = {}
        self.listener = net.listen(host, self.PORT)
        self._accept_proc = sim.spawn(self._accept_loop(), name="matchmaker-accept")
        self._accept_proc.defuse()
        self._cycle_proc = sim.spawn(self._negotiation_loop(), name="matchmaker-cycle")
        self._cycle_proc.defuse()

    # -- collection ----------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._collect(conn), name="matchmaker-collect")
            handler.defuse()

    def _collect(self, conn):
        # A single connection may carry several ads (an SMP startd sends
        # one per slot); read until the sender closes.
        try:
            while True:
                message = yield from conn.recv(timeout=self.config.claim_timeout)
                if not isinstance(message, Advertise):
                    continue
                stored = _StoredAd(
                    name=message.name,
                    ad=message.ad,
                    received=self.sim.now,
                    reply_host=str(message.ad.value("scheddhost", "")),
                    reply_port=int(message.ad.value("scheddport", 0) or 0),
                )
                if message.kind == "machine":
                    self.machine_ads[message.name] = stored
                elif message.kind == "job":
                    self.job_ads[message.name] = stored
        except NetworkError:
            return

    def _expire(self) -> None:
        horizon = self.sim.now - self.config.ad_lifetime
        for table in (self.machine_ads, self.job_ads):
            stale = [name for name, stored in table.items() if stored.received < horizon]
            for name in stale:
                del table[name]

    # -- negotiation ---------------------------------------------------------
    def _negotiation_loop(self):
        while True:
            yield self.sim.timeout(self.config.negotiation_interval)
            yield from self.run_cycle()

    def run_cycle(self):
        """Generator: one negotiation cycle over all current ads."""
        self.cycles_run += 1
        self._expire()
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "negotiation_cycle",
                cycle=self.cycles_run,
                jobs=len(self.job_ads), machines=len(self.machine_ads),
            )
        for owner in list(self.owner_usage):
            self.owner_usage[owner] *= self.config.usage_decay
        # Fair share: least-used owner negotiates first; within an owner,
        # submission order.  Without fair share, pure insertion order --
        # both deterministic.
        entries = list(self.job_ads.items())
        if self.config.fair_share:
            arrival = {name: i for i, (name, _) in enumerate(entries)}
            entries.sort(
                key=lambda item: (
                    self.owner_usage.get(self._owner_of(item[1]), 0.0),
                    arrival[item[0]],
                )
            )
        for job_name, job_stored in entries:
            best = self._best_machine(job_stored.ad)
            if best is None:
                continue
            machine_name = str(best.ad.value("machine", best.name))
            notify = MatchNotify(
                job_id=str(job_stored.ad.value("jobid", job_name)),
                # The slot is an execution-site detail; the schedd's view
                # of "the site" (avoidance, attempt history) is the machine.
                startd_name=machine_name,
                startd_host=machine_name,
                startd_port=int(best.ad.value("startdport", 0) or 0),
                machine_ad=best.ad,
            )
            delivered = yield from self._notify_schedd(job_stored, notify)
            if delivered:
                self.matches_made += 1
                if bus is not None and bus.active:
                    bus.emit(
                        self.sim.now, "daemon", "match_made",
                        job=notify.job_id, machine=machine_name,
                    )
                owner = self._owner_of(job_stored)
                self.owner_usage[owner] = self.owner_usage.get(owner, 0.0) + 1.0
                # One claim per machine per cycle; the startd re-advertises
                # its new state when claimed.
                self._recently_matched[best.name] = self.sim.now
                del self.job_ads[job_name]

    @staticmethod
    def _owner_of(stored: _StoredAd) -> str:
        return str(stored.ad.value("owner", "unknown"))

    def _best_machine(self, job_ad: ClassAd) -> _StoredAd | None:
        candidates = []
        for stored in self.machine_ads.values():
            if stored.ad.value("state", "unclaimed") != "unclaimed":
                if not self.config.preemption:
                    continue
                # Preemption: a claimed slot is still a candidate when the
                # machine's Rank strictly prefers this job to its current one.
                current = float(stored.ad.value("currentrank", 0.0) or 0.0)
                if rank(stored.ad, job_ad) <= current:
                    continue
            if self._recently_matched.get(stored.name, -1.0) >= stored.received:
                continue  # matched since it last advertised
            if symmetric_match(job_ad, stored.ad):
                candidates.append(stored)
        if not candidates:
            return None
        # Highest job rank first; ties go to the least-recently-matched
        # machine (spreads retries across the pool), then name for
        # determinism.
        candidates.sort(
            key=lambda s: (
                -rank(job_ad, s.ad),
                self._recently_matched.get(s.name, -1.0),
                s.name,
            )
        )
        return candidates[0]

    def _notify_schedd(self, job_stored: _StoredAd, notify: MatchNotify):
        if not job_stored.reply_host:
            return False
        try:
            conn = yield from self.net.connect(
                self.host, job_stored.reply_host, job_stored.reply_port,
                timeout=self.config.claim_timeout,
            )
            conn.send(notify, size=WireSize.AD)
            conn.close()
            return True
        except NetworkError:
            return False
