"""The Condor kernel daemons (Figure 1).

Each daemon is a simulated process that "represents the interests" of one
participant: the schedd for the job owner, the startd for the machine
owner, the matchmaker for the pool, and the per-job shadow and starter
for the two sides of one execution.
"""

from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.matchmaker import Matchmaker
from repro.condor.daemons.schedd import Schedd
from repro.condor.daemons.shadow import Shadow, ShadowOutcome
from repro.condor.daemons.startd import Startd
from repro.condor.daemons.starter import Starter

__all__ = [
    "CondorConfig",
    "Matchmaker",
    "Schedd",
    "Shadow",
    "ShadowOutcome",
    "Startd",
    "Starter",
]
