"""The shadow: the submission-side manager of one execution.

    "The schedd starts a shadow, which is responsible for providing the
    details of the job to be run, such as the executable, the input
    files, and the arguments." (§2.1)

In the error-scope map (Figure 3) the shadow manages *remote resource*
scope: if the execution site proves unusable (claim lost, starter
reports a bad JVM), the shadow's report tells the schedd "the job cannot
run on the given host" -- and nothing more.  Errors of wider scope (its
own home file system) it passes upward; errors of narrower scope arrive
packaged in the starter's result and flow through untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.daemons.config import CondorConfig
from repro.condor.job import Job
from repro.condor.protocols import (
    CheckpointNotice,
    FileData,
    FileRequest,
    JobDetails,
    JobResult,
    Keepalive,
    WireSize,
)
from repro.core.result import ResultFile
from repro.core.scope import ErrorScope
from repro.remoteio.rpc import Credential
from repro.remoteio.server import RemoteIoServer
from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError
from repro.sim.network import Network, NetworkError

__all__ = ["Shadow", "ShadowOutcome"]


@dataclass
class ShadowOutcome:
    """What the shadow tells the schedd when it exits."""

    kind: str  # "result" | "environment"
    result: ResultFile | None = None
    scope: ErrorScope | None = None
    error_name: str = ""
    detail: str = ""

    @classmethod
    def program_result(cls, result: ResultFile) -> "ShadowOutcome":
        return cls(kind="result", result=result)

    @classmethod
    def environment(cls, scope: ErrorScope, name: str, detail: str = "") -> "ShadowOutcome":
        return cls(kind="environment", scope=scope, error_name=name, detail=detail)


class Shadow:
    """One shadow per execution attempt."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        submit_host: str,
        home_fs,  # generator-API backend (SyncFsAdapter or NfsClient)
        job: Job,
        exec_host: str,
        starter_port: int,
        config: CondorConfig,
        credential: Credential | None = None,
        io_port: int = 20001,
    ):
        self.sim = sim
        self.net = net
        self.submit_host = submit_host
        self.home_fs = home_fs
        self.job = job
        self.exec_host = exec_host
        self.starter_port = starter_port
        self.config = config
        self.credential = credential or Credential(owner=job.owner)
        # The schedd allocates I/O server ports from a per-schedd
        # sequence: unique on the submit host, deterministic per run.
        self.io_port = io_port
        self.outcome: ShadowOutcome | None = None
        self.io_server: RemoteIoServer | None = None
        self._resume_from = job.checkpoint if config.checkpointing else 0
        self._steps_seen = self._resume_from

    def run(self):
        """Generator (the shadow process body); sets ``self.outcome``."""
        try:
            self.io_server = RemoteIoServer(
                self.sim, self.net, self.submit_host, self.io_port, self.home_fs
            )
            self.outcome = yield from self._oversee()
        finally:
            if self.io_server is not None:
                self.io_server.close()
            bus = self.sim.telemetry
            if bus is not None and bus.active:
                o = self.outcome
                bus.emit(
                    self.sim.now, "daemon", "shadow_exit",
                    job=self.job.job_id, site=self.exec_host,
                    kind=o.kind if o is not None else "died",
                    error=o.error_name if o is not None else "",
                )
        return self.outcome

    # -- the shadow protocol -------------------------------------------------
    def _oversee(self):
        try:
            conn = yield from self.net.connect(
                self.submit_host, self.exec_host, self.starter_port,
                timeout=self.config.claim_timeout,
            )
        except NetworkError as exc:
            return ShadowOutcome.environment(
                ErrorScope.REMOTE_RESOURCE, "ClaimLost", f"cannot reach starter: {exc}"
            )
        conn.send(self._details(), size=WireSize.AD)
        try:
            result = yield from self._serve_until_result(conn)
        except NetworkError as exc:
            conn.close()
            return ShadowOutcome.environment(
                ErrorScope.REMOTE_RESOURCE, "ClaimLost", f"starter lost: {exc}"
            )
        conn.close()
        return self._interpret(result)

    def _details(self) -> JobDetails:
        return JobDetails(
            job_id=self.job.job_id,
            universe=self.job.universe.value,
            image_name=self.job.image.name,
            input_files=tuple(self.job.input_files),
            heap_request=self.job.heap_request,
            program=self.job.image.program,
            shadow_io_host=self.submit_host,
            shadow_io_port=self.io_port,
            credential=self.credential,
            resume_from=self._resume_from,
        )

    def _serve_until_result(self, conn):
        """Generator: answer file requests until the JobResult arrives."""
        while True:
            message = yield from conn.recv(timeout=self.config.control_timeout)
            if isinstance(message, JobResult):
                return message
            if isinstance(message, Keepalive):
                continue  # the site is alive; keep waiting
            if isinstance(message, CheckpointNotice):
                # Count executed work (re-executions included), then
                # commit the checkpoint so it survives this attempt.
                self.job.steps_executed += max(0, message.steps_done - self._steps_seen)
                self._steps_seen = max(self._steps_seen, message.steps_done)
                if self.config.checkpointing:
                    self.job.checkpoint = max(self.job.checkpoint, message.steps_done)
                continue
            if isinstance(message, FileRequest):
                reply = yield from self._read_for_transfer(message.name)
                conn.send(reply, size=WireSize.CONTROL + len(reply.data))

    def _read_for_transfer(self, name: str):
        """Generator: produce FileData for one requested file."""
        if name == self.job.image.name:
            return FileData(name=name, data=self.job.image.serialized())
        path = self.job.input_files.get(name)
        if path is None:
            return FileData(name=name, error="ENOENT")
        try:
            data = yield from self.home_fs.read_file(path)
        except FsError as exc:
            return FileData(name=name, error=exc.code)
        return FileData(name=name, data=data)

    # -- interpretation (the scope logic of §4) --------------------------------
    def _interpret(self, result: JobResult) -> ShadowOutcome:
        if result.starter_error:
            scope = ErrorScope[result.starter_error_scope]
            return ShadowOutcome.environment(scope, result.starter_error.split(":")[0],
                                             result.starter_error)
        if result.result_file is not None:
            try:
                parsed = ResultFile.parse(result.result_file)
            except ValueError as exc:
                # A corrupt result file must not become a silent wrong
                # answer (Principle 1): treat the site as suspect.
                return ShadowOutcome.environment(
                    ErrorScope.REMOTE_RESOURCE, "BadResultFile", str(exc)
                )
            if parsed.is_program_result:
                return ShadowOutcome.program_result(parsed)
            return ShadowOutcome.environment(parsed.scope, parsed.error_name, parsed.detail)
        # Raw exit status only (naive mode, or vanilla universe).
        if result.exit_signal is not None:
            return ShadowOutcome.program_result(
                ResultFile.completed(128 + result.exit_signal)
            )
        return ShadowOutcome.program_result(ResultFile.completed(result.exit_code))
