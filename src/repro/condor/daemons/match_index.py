"""Requirement-bucket index over machine ads for pool-scale matchmaking.

The naive matchmaker evaluates ``symmetric_match`` for every (job,
machine) pair -- O(jobs x machines) ClassAd evaluations per negotiation
cycle.  This module gives the matchmaker two sub-quadratic tools, both
of which are *pure pre-filters*: they may only ever narrow the candidate
set to a superset of the truly matching machines, and the matchmaker
re-verifies every surviving candidate with the exact per-candidate
checks of the reference scan.  That is what makes the fast path provably
winner-identical to the unindexed scan (pinned by the hypothesis
cross-check in ``tests/condor/test_match_index.py``).

**Buckets.**  :class:`MachineIndex` posts every machine ad under its
literal attribute values (``arch -> "intel" -> {names}``), keeping a
per-attribute *opaque* set for machines whose value is a non-literal
expression (those can evaluate to anything, so they are candidates for
every probe on that attribute).  :func:`extract_constraints` statically
pulls conjunctive ``TARGET.attr == literal`` / ``TARGET.attr >= bound``
shapes out of a job's ``Requirements``; a probe picks the most selective
constraint and returns a cheap membership test.  Jobs whose requirements
yield no such shape fall back to the full scan bucket (all machines).

Why exclusion is safe: a top-level ``&&`` conjunct that evaluates to
FALSE, UNDEFINED, or ERROR makes the whole ``Requirements`` non-TRUE,
and non-TRUE rejects (``match`` is conservative).  A machine that lacks
the constrained attribute entirely, or whose literal value fails the
comparison, can therefore never match -- excluding it from the candidate
set cannot change any winner.

**Rank orders.**  For a job whose ``Rank`` provably depends only on the
machine (every attribute reference is ``TARGET``-qualified and resolves
to a literal or absent machine attribute), the matchmaker can sort all
machines by the exact tie-break key once and walk that order, returning
the first candidate that survives the reference checks -- identical to
taking the minimum over all candidates, without evaluating rank per
(job, machine) pair.  :func:`rank_cacheable` decides reuse eligibility;
:func:`machine_rank_literal` validates the machine side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.condor.classads.ad import ClassAd
from repro.condor.classads.expr import (
    AttrRef,
    BinOp,
    EvalContext,
    Expr,
    Literal,
    ValueType,
)

__all__ = [
    "Constraint",
    "MachineIndex",
    "extract_constraints",
    "machine_rank_literal",
    "rank_cacheable",
]

#: Comparison flips for constraints written with the TARGET ref on the
#: right-hand side (``5 <= TARGET.memory`` == ``TARGET.memory >= 5``).
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

_NUMERIC = (ValueType.INTEGER, ValueType.REAL)


def _value_key(value) -> tuple | None:
    """Normalized bucket key for a ClassAd literal, or None if unindexable.

    The key encodes ``==`` semantics: strings compare case-insensitively,
    ints and reals compare numerically, and cross-type comparisons (bool
    vs number, string vs number) are ERROR -- distinct key kinds keep
    those apart.
    """
    if value.type is ValueType.STRING:
        return ("s", value.payload.lower())
    if value.type is ValueType.BOOLEAN:
        return ("b", value.payload)
    if value.type in _NUMERIC:
        return ("n", float(value.payload))
    return None  # UNDEFINED / ERROR literals can never satisfy == or <


@dataclass(frozen=True)
class Constraint:
    """One statically-extracted conjunct: ``attr op value``.

    *op* is ``==`` (probe the equality bucket) or one of ``< <= > >=``
    (numeric threshold over the per-value buckets).  *key* is the
    normalized bucket key for ``==``; *bound* the float threshold for
    comparisons.
    """

    attr: str
    op: str
    key: tuple | None = None
    bound: float = 0.0


def _conjuncts(expr: Expr) -> list[Expr]:
    """Flatten nested top-level ``&&`` into a conjunct list."""
    if isinstance(expr, BinOp) and expr.op == "&&":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _target_attr(expr: Expr, job_ad: ClassAd) -> str | None:
    """The machine attribute *expr* reads, if it is a plain TARGET ref.

    An unqualified reference counts only when the job ad itself lacks
    the name -- otherwise it resolves job-side and constrains nothing
    about the machine.
    """
    if not isinstance(expr, AttrRef):
        return None
    if expr.qualifier == "target":
        return expr.name
    if expr.qualifier == "" and expr.name not in job_ad:
        return expr.name
    return None


def extract_constraints(job_ad: ClassAd) -> list[Constraint]:
    """Statically extract indexable conjuncts from *job_ad*'s Requirements.

    Returns the (possibly empty) list of constraints; an empty list means
    the requirements are opaque to the index and the matchmaker must use
    the fallback scan bucket.  The result is cached on the ad and
    invalidated with it.
    """
    cached = job_ad._analysis
    if cached is not None:
        return cached
    constraints: list[Constraint] = []
    req = job_ad.lookup("requirements")
    if req is not None:
        ctx = EvalContext(my=job_ad, target=None)
        for conjunct in _conjuncts(req):
            if not isinstance(conjunct, BinOp):
                continue
            op = conjunct.op
            if op not in ("==", "<", "<=", ">", ">="):
                continue
            attr, other = conjunct.left, conjunct.right
            name = _target_attr(attr, job_ad)
            if name is None:
                name = _target_attr(other, job_ad)
                if name is None:
                    continue
                other, op = conjunct.left, _FLIP.get(op, op)
            # The non-TARGET side must be evaluable from the job alone;
            # evaluation is total and side-effect free, so probing with
            # target=None is safe (TARGET refs come back UNDEFINED and
            # the conjunct is simply skipped).
            value = other.eval(ctx)
            if op == "==":
                key = _value_key(value)
                if key is not None:
                    constraints.append(Constraint(attr=name, op="==", key=key))
            elif value.type in _NUMERIC:
                constraints.append(
                    Constraint(attr=name, op=op, bound=float(value.payload))
                )
    job_ad._analysis = constraints
    return constraints


def rank_cacheable(expr: Expr | None) -> bool:
    """True when a Rank expression's value cannot depend on the job side.

    Two jobs carrying an equal expression then assign the same rank to
    any machine whose referenced attributes are all literals (or
    absent), so one sorted machine order serves them all.  Conservative:
    any attribute reference that is not ``TARGET``-qualified
    disqualifies the rank (an unqualified name might resolve job-side; a
    ``MY`` ref certainly does).  A missing Rank ranks every machine 0.0
    and is trivially cacheable.
    """
    if expr is None or isinstance(expr, Literal):
        return True
    return _all_target_qualified(expr)


def _all_target_qualified(expr: Expr) -> bool:
    if isinstance(expr, AttrRef):
        return expr.qualifier == "target"
    if isinstance(expr, BinOp):
        return _all_target_qualified(expr.left) and _all_target_qualified(expr.right)
    if isinstance(expr, Literal):
        return True
    operand = getattr(expr, "operand", None)
    if operand is not None:  # UnaryOp
        return _all_target_qualified(operand)
    args = getattr(expr, "args", None)
    if args is not None:  # FuncCall
        return all(_all_target_qualified(a) for a in args)
    return False  # unknown node: be conservative


def machine_rank_literal(machine_ad: ClassAd, refs: set[str]) -> bool:
    """True when every attr in *refs* is a literal (or absent) on the machine.

    Only then is a TARGET-qualified rank evaluation of this machine
    independent of the job on the other side (a machine attr that is an
    expression could reference TARGET -- i.e. the job -- back).
    """
    for name in refs:
        expr = machine_ad.lookup(name)
        if expr is not None and not isinstance(expr, Literal):
            return False
    return True


class MachineIndex:
    """Incrementally-maintained value buckets over the machine-ad table.

    ``stamp`` increments on every structural change (add/remove); the
    matchmaker uses it to invalidate derived caches (rank orders).
    """

    def __init__(self) -> None:
        #: attr -> value-key -> set of machine names
        self._eq: dict[str, dict[tuple, set[str]]] = {}
        #: attr -> set of names whose value is a non-literal expression
        self._opaque: dict[str, set[str]] = {}
        #: name -> postings to undo on removal: (attr, key-or-None)
        self._postings: dict[str, list[tuple[str, tuple | None]]] = {}
        #: Refcounted union of every attribute any machine's Requirements
        #: references -- the job-side attrs that can influence a match
        #: from the machine's direction (the matchmaker's no-match memo
        #: keys on them).
        self._req_refs: dict[str, int] = {}
        self._req_by_name: dict[str, tuple[str, ...]] = {}
        self.stamp = 0

    @property
    def requirement_refs(self):
        """Attributes referenced by at least one machine's Requirements."""
        return self._req_refs.keys()

    def __len__(self) -> int:
        return len(self._postings)

    # -- maintenance ----------------------------------------------------
    def add(self, name: str, ad: ClassAd) -> None:
        """Index (or re-index) machine *name*'s ad."""
        if name in self._postings:
            self.remove(name)
        postings: list[tuple[str, tuple | None]] = []
        for attr, expr in ad._attrs.items():
            if isinstance(expr, Literal):
                key = _value_key(expr.value)
                if key is None:
                    continue  # UNDEFINED/ERROR literal: never satisfiable
                self._eq.setdefault(attr, {}).setdefault(key, set()).add(name)
                postings.append((attr, key))
            else:
                self._opaque.setdefault(attr, set()).add(name)
                postings.append((attr, None))
        self._postings[name] = postings
        req = ad.lookup("requirements")
        refs = tuple(sorted(req.external_refs())) if req is not None else ()
        self._req_by_name[name] = refs
        for ref in refs:
            self._req_refs[ref] = self._req_refs.get(ref, 0) + 1
        self.stamp += 1

    def remove(self, name: str) -> None:
        """Drop machine *name* from every bucket (no-op if absent)."""
        postings = self._postings.pop(name, None)
        if postings is None:
            return
        for attr, key in postings:
            if key is None:
                bucket = self._opaque.get(attr)
            else:
                bucket = self._eq.get(attr, {}).get(key)
            if bucket is not None:
                bucket.discard(name)
        for ref in self._req_by_name.pop(name, ()):
            count = self._req_refs.get(ref, 0) - 1
            if count <= 0:
                self._req_refs.pop(ref, None)
            else:
                self._req_refs[ref] = count
        self.stamp += 1

    # -- probing --------------------------------------------------------
    def _constraint_size(self, c: Constraint) -> int:
        opaque = len(self._opaque.get(c.attr, ()))
        buckets = self._eq.get(c.attr)
        if buckets is None:
            return opaque
        if c.op == "==":
            return len(buckets.get(c.key, ())) + opaque
        total = 0
        for key, names in buckets.items():
            if key[0] == "n" and _cmp(c.op, key[1], c.bound):
                total += len(names)
        return total + opaque

    def membership(self, job_ad: ClassAd):
        """Narrow *job_ad*'s candidates: a ``(test, estimate, names)`` triple.

        *test(name)* is True for every machine that could possibly match
        (a superset); *estimate* is the bucket population it admits;
        *names* chains the admitted bucket sets for direct enumeration
        (sparse buckets are cheaper to walk than the whole fresh set).
        Returns ``(None, len(index), None)`` when the requirements are
        opaque and no narrowing is possible.
        """
        constraints = extract_constraints(job_ad)
        if not constraints:
            return None, len(self._postings), None
        best = min(constraints, key=self._constraint_size)
        estimate = self._constraint_size(best)
        opaque = self._opaque.get(best.attr, frozenset())
        buckets = self._eq.get(best.attr, {})
        if best.op == "==":
            members = buckets.get(best.key, frozenset())

            def test(name: str) -> bool:
                return name in members or name in opaque

            return test, estimate, _chain(members, opaque)

        op, bound = best.op, best.bound
        hits = [
            names
            for key, names in buckets.items()
            if key[0] == "n" and _cmp(op, key[1], bound)
        ]

        def test_cmp(name: str) -> bool:
            if name in opaque:
                return True
            for names in hits:
                if name in names:
                    return True
            return False

        return test_cmp, estimate, _chain(opaque, *hits)


def _chain(*groups):
    for group in groups:
        yield from group


def _cmp(op: str, value: float, bound: float) -> bool:
    if op == "<":
        return value < bound
    if op == "<=":
        return value <= bound
    if op == ">":
        return value > bound
    return value >= bound
