"""The startd: the machine owner's representative.

    "Each execution site is managed by a startd that enforces the machine
    owner's policy regarding when and how visiting jobs may be executed."
    (§2.1)

Implements the §5 defense: with ``startd_self_test`` enabled, the startd
probes the owner's asserted Java installation at startup, Autoconf-style,
and "if found lacking, then the startd simply declines to advertise its
Java capability" -- turning a black-hole machine into a harmless one.
"""

from __future__ import annotations

import itertools

from repro.condor.classads import ClassAd, match, rank
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.starter import Starter
from repro.condor.protocols import (
    AdvertiseBatch,
    ClaimGranted,
    ClaimRejected,
    InvalidateAd,
    RequestClaim,
    WireSize,
)
from repro.jvm.machine import Jvm, JvmExecError
from repro.jvm.throwables import Throwable
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network, NetworkError

__all__ = ["Startd"]


class Startd:
    """One startd per execution machine."""

    PORT = 9700

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        machine: Machine,
        matchmaker_host: str,
        config: CondorConfig,
    ):
        self.sim = sim
        self.net = net
        self.machine = machine
        self.matchmaker_host = matchmaker_host
        self.config = config
        #: slot id -> claiming schedd (None = unclaimed); one slot per
        #: machine unless the owner configured an SMP (machine.slots > 1)
        self.slot_claimed: dict[int, str | None] = {
            i: None for i in range(machine.slots)
        }
        self.slot_starters: dict[int, Starter | None] = {
            i: None for i in range(machine.slots)
        }
        #: The machine's Rank of each slot's current job (preemption).
        self.slot_rank: dict[int, float] = {i: 0.0 for i in range(machine.slots)}
        self.java_advertised = True
        self.self_test_result: bool | None = None
        self.ads_sent = 0
        self.claims_granted = 0
        self.claims_rejected = 0
        # Per-startd counters (not module globals): claim ids embed the
        # machine name and starter ports bind to this machine's host, so
        # instance-local sequences stay unique -- and, unlike globals,
        # deterministic across repeated runs in one process (DESIGN §6).
        self._claim_seq = itertools.count(1)
        self._starter_port_seq = itertools.count(30001)
        #: True once the startd has left the pool (machine churn); a
        #: retired startd accepts no claims and sends no ads.
        self.retired = False
        self._retest_proc = None
        if config.startd_self_test:
            self.java_advertised = self._self_test()
        self.listener = net.listen(machine.name, self.PORT)
        self._accept_proc = sim.spawn(self._accept_loop(), name=f"startd:{machine.name}")
        self._accept_proc.defuse()
        self._advertise_proc = sim.spawn(
            self._advertise_loop(), name=f"startd-ads:{machine.name}"
        )
        self._advertise_proc.defuse()
        if config.startd_self_test and config.self_test_interval > 0:
            self._retest_proc = sim.spawn(
                self._self_test_loop(), name=f"startd-retest:{machine.name}"
            )
            self._retest_proc.defuse()

    # -- machine churn --------------------------------------------------------
    def shutdown(self, graceful: bool = True) -> None:
        """Take this startd out of the pool.

        *graceful* leave: evict visiting jobs (their shadows receive an
        explicit remote-resource eviction error and the jobs retry
        elsewhere), retract our ads at the matchmaker right away, and
        stop listening.  Crash-leave (``graceful=False``): just stop --
        the caller has already crashed the machine, in-flight claims die
        with explicit ClaimLost errors at their shadows, and the stale
        ads age out of the matchmaker over ``ad_lifetime``.
        """
        if self.retired:
            return
        self.retired = True
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "startd_shutdown",
                machine=self.machine.name, graceful=graceful,
            )
        if graceful:
            for starter in self.slot_starters.values():
                if starter is not None:
                    starter.evict()
            retract = self.sim.spawn(
                self._invalidate_ads(), name=f"startd-retract:{self.machine.name}"
            )
            retract.defuse()
        self.listener.close()
        self._accept_proc.interrupt("startd shutdown")
        self._advertise_proc.interrupt("startd shutdown")
        if self._retest_proc is not None:
            self._retest_proc.interrupt("startd shutdown")

    def _invalidate_ads(self):
        names = tuple(self.slot_name(slot) for slot in range(self.machine.slots))
        try:
            conn = yield from self.net.connect(
                self.machine.name, self.matchmaker_host, 9618,
                timeout=self.config.claim_timeout,
            )
            conn.send(InvalidateAd(kind="machine", names=names), size=WireSize.CONTROL)
            conn.close()
        except NetworkError:
            return  # unreachable: ad expiry will clean up instead

    def _self_test_loop(self):
        """Periodic re-probe: catches installations that break after boot
        (and re-admits repaired ones)."""
        while True:
            yield self.sim.timeout(self.config.self_test_interval)
            if not self.machine.online:
                continue
            was = self.java_advertised
            self.java_advertised = self._self_test()
            if self.java_advertised != was:
                yield from self.advertise()

    # -- the §5 Autoconf-style probe ----------------------------------------
    def _self_test(self) -> bool:
        """Run a trivial program through the local JVM configuration.

        "Rather than blindly accept each owner's assertion regarding the
        Java installation, we modified the startd to test the installation
        at startup."
        """
        jvm = Jvm(self.sim, self.machine)
        try:
            jvm.check_exec()
        except JvmExecError:
            self.self_test_result = False
            return False
        # Probe the classpath the way 'java -version' would: boot the VM.
        gen = jvm._boot(heap_request=1 * 2**20)
        try:
            while True:
                next(gen)
        except StopIteration:
            jvm._shutdown()
            self.self_test_result = True
            return True
        except Throwable:
            self.self_test_result = False
            return False

    # -- introspection --------------------------------------------------
    @property
    def claimed_by(self) -> str | None:
        """The first claiming schedd, if any slot is claimed (legacy view)."""
        for schedd in self.slot_claimed.values():
            if schedd is not None:
                return schedd
        return None

    @property
    def current_starter(self) -> Starter | None:
        for starter in self.slot_starters.values():
            if starter is not None:
                return starter
        return None

    def free_slots(self) -> list[int]:
        return [i for i, by in self.slot_claimed.items() if by is None]

    def slot_name(self, slot: int) -> str:
        """The advertised name of *slot*: the machine name for a
        single-slot machine, ``slotN@machine`` for an SMP."""
        if self.machine.slots == 1:
            return self.machine.name
        return f"slot{slot + 1}@{self.machine.name}"

    # -- advertising --------------------------------------------------------
    def build_ad(self, slot: int = 0) -> ClassAd:
        """The ad for one slot (an SMP advertises one ad per slot)."""
        ad = ClassAd(
            {
                "name": self.slot_name(slot),
                "machine": self.machine.name,
                "slotid": slot + 1,
                "startdport": self.PORT,
                "arch": "intel",
                "opsys": "linux",
                "memory": self.machine.memory_total // self.machine.slots // 2**20,
                "disk": self.machine.scratch.free // 2**20,
                "cpuspeed": self.machine.cpu_speed,
                "state": "claimed" if self.slot_claimed[slot] else "unclaimed",
                "currentrank": self.slot_rank[slot],
                "hasjava": self.java_advertised,
                "javaversion": self.machine.java.version,
            }
        )
        ad.update(ClassAd(self.machine.policy.advertised_attrs))
        requirements = self.machine.policy.start_expr
        ad.set_expr("requirements", requirements)
        ad.set_expr("rank", self.machine.policy.rank_expr)
        return ad

    def _advertise_loop(self):
        while True:
            yield from self.advertise()
            yield self.sim.timeout(self.config.advertise_interval)

    def advertise(self):
        """Generator: send every slot's current ad to the matchmaker.

        All slots ride in one :class:`AdvertiseBatch` message so the
        matchmaker pays one receive per advertisement, not one per slot.
        """
        if self.retired or not self.machine.online:
            return
        self.ads_sent += 1
        try:
            conn = yield from self.net.connect(
                self.machine.name, self.matchmaker_host, 9618,
                timeout=self.config.claim_timeout,
            )
            batch = tuple(
                (self.slot_name(slot), self.build_ad(slot))
                for slot in range(self.machine.slots)
            )
            conn.send(
                AdvertiseBatch(kind="machine", ads=batch),
                size=WireSize.AD * len(batch),
            )
            conn.close()
        except NetworkError:
            return  # matchmaker unreachable; try again next interval

    # -- claiming -----------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._claim(conn), name=f"claim:{self.machine.name}")
            handler.defuse()

    def _claim(self, conn):
        try:
            request = yield from conn.recv(timeout=self.config.claim_timeout)
        except NetworkError:
            conn.close()
            return
        if not isinstance(request, RequestClaim):
            conn.close()
            return
        if self.retired or not self.machine.online:
            conn.close()
            return
        # "Matched processes are individually responsible for ... verifying
        # that their needs are met": re-check the owner's policy directly.
        free = self.free_slots()
        slot = next(
            (s for s in free if match(self.build_ad(s), request.job_ad)), None
        )
        if slot is None and self.config.preemption:
            slot = self._preemptable_slot(request.job_ad)
            if slot is not None:
                incumbent = self.slot_starters[slot]
                if incumbent is not None:
                    incumbent.evict()
        bus = self.sim.telemetry
        if slot is None:
            self.claims_rejected += 1
            reason = "policy refuses job" if free else "already claimed"
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "daemon", "claim_rejected",
                    machine=self.machine.name, job=request.job_id, reason=reason,
                )
            conn.send(ClaimRejected(reason), size=WireSize.CONTROL)
            conn.close()
            return
        claim_id = f"claim-{self.machine.name}-{next(self._claim_seq)}"
        starter_port = next(self._starter_port_seq)
        self.slot_claimed[slot] = request.schedd_name
        self.slot_rank[slot] = rank(self.build_ad(slot), request.job_ad)
        self.claims_granted += 1
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "claim_granted",
                machine=self.machine.name, slot=self.slot_name(slot),
                job=request.job_id, schedd=request.schedd_name,
            )
        starter = Starter(
            sim=self.sim,
            net=self.net,
            machine=self.machine,
            claim_id=claim_id,
            port=starter_port,
            config=self.config,
            on_exit=lambda slot=slot: None,  # replaced just below
        )
        starter.on_exit = lambda slot=slot, starter=starter: self._starter_exited(
            slot, starter
        )
        self.slot_starters[slot] = starter
        conn.send(ClaimGranted(claim_id=claim_id, starter_port=starter_port), size=WireSize.CONTROL)
        conn.close()
        # Advertise the claimed state promptly so the matchmaker stops
        # handing this slot out.
        refresh = self.sim.spawn(self.advertise(), name=f"startd-readvert:{self.machine.name}")
        refresh.defuse()

    def _preemptable_slot(self, job_ad: ClassAd) -> int | None:
        """The busy slot the owner's Rank most wants to hand to *job_ad*.

        A slot is preemptable when the new job out-ranks the incumbent
        *strictly* (no churn among equals) and the policy accepts it.
        """
        best_slot, best_gain = None, 0.0
        for slot in range(self.machine.slots):
            if self.slot_claimed[slot] is None:
                continue
            ad = self.build_ad(slot)
            if not match(ad, job_ad):
                continue
            gain = rank(ad, job_ad) - self.slot_rank[slot]
            if gain > best_gain:
                best_slot, best_gain = slot, gain
        return best_slot

    def _starter_exited(self, slot: int, starter: Starter | None = None) -> None:
        # A preempted starter exits *after* its slot was re-claimed; only
        # the slot's current occupant may clear the bookkeeping.
        if starter is not None and self.slot_starters[slot] is not starter:
            return
        self.slot_claimed[slot] = None
        self.slot_starters[slot] = None
        self.slot_rank[slot] = 0.0
        refresh = self.sim.spawn(self.advertise(), name=f"startd-readvert:{self.machine.name}")
        refresh.defuse()

    # -- owner policy enforcement (§2.1: "when and how visiting jobs may
    # be executed") -----------------------------------------------------
    def evict(self) -> None:
        """The owner wants the machine back: evict every visiting job."""
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(self.sim.now, "daemon", "evict", machine=self.machine.name)
        for starter in self.slot_starters.values():
            if starter is not None:
                starter.evict()
        refresh = self.sim.spawn(self.advertise(), name=f"startd-evict-advert:{self.machine.name}")
        refresh.defuse()
