"""The starter: the execution-side manager of one job.

    "The startd creates a starter, which is responsible for the execution
    environment, such as creating a scratch directory, loading the
    executable, and moving input and output files." (§2.1)

In the error-scope map (Figure 3) the starter manages *remote resource*
scope: problems with the machine it stands on (bad Java installation,
full scratch disk) are its to report; problems inside the JVM come to it
through the result file; problems with the submit side come to it as
explicit file-transfer errors or broken connections, which it forwards
without consuming.
"""

from __future__ import annotations

from repro.chirp.auth import generate_secret, place_secret
from repro.chirp.client import CondorIoLibrary, LocalIoLibrary
from repro.chirp.proxy import ChirpProxy
from repro.condor.daemons.config import CondorConfig
from repro.condor.protocols import (
    CheckpointNotice,
    FileData,
    FileRequest,
    JobDetails,
    JobResult,
    Keepalive,
    WireSize,
)
from repro.core.classify import DEFAULT_CLASSIFIER
from repro.core.result import ResultFile
from repro.core.scope import ErrorScope
from repro.jvm.machine import Jvm, JvmExecError
from repro.jvm.program import JavaProgram
from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError
from repro.sim.machine import Machine
from repro.sim.network import Network, NetworkError

__all__ = ["Starter"]


class Starter:
    """One starter per claim; lives for one job execution."""

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        machine: Machine,
        claim_id: str,
        port: int,
        config: CondorConfig,
        on_exit=None,
    ):
        self.sim = sim
        self.net = net
        self.machine = machine
        self.claim_id = claim_id
        self.port = port
        self.config = config
        self.on_exit = on_exit or (lambda: None)
        self.scratch_dir = f"/scratch/{claim_id}"
        self.proxy: ChirpProxy | None = None
        self._job_proc = None
        self._evicted = False
        self.listener = net.listen(machine.name, port)
        self._proc = machine.processes.spawn(f"starter:{claim_id}", self._run())
        self._finished = False

    def evict(self) -> None:
        """Owner policy reclaims the machine: kill the job, report the
        eviction as a remote-resource condition (the site, not the job,
        became unusable)."""
        self._evicted = True
        if self._job_proc is not None and self._job_proc.is_alive:
            from repro.sim.process import Signal

            self._job_proc.kill(Signal.SIGTERM)

    # -- lifecycle ------------------------------------------------------------
    def _run(self):
        try:
            yield from self._serve_one_job()
        finally:
            self._cleanup()

    def _cleanup(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.listener.close()
        if self.proxy is not None:
            self.proxy.close()
        self.on_exit()

    def _serve_one_job(self):
        # Wait for the shadow to activate the claim.
        try:
            conn = yield from self._accept_with_timeout()
        except NetworkError:
            return
        if conn is None:
            return
        try:
            details = yield from conn.recv(timeout=self.config.control_timeout)
        except NetworkError:
            conn.close()
            return
        if not isinstance(details, JobDetails):
            conn.close()
            return
        result = yield from self._execute(conn, details)
        try:
            conn.send(result, size=WireSize.CONTROL + len(result.result_file or b""))
        except NetworkError:
            pass
        conn.close()

    def _accept_with_timeout(self):
        accept = self.sim.spawn(self.listener.accept(), name="starter-accept")
        expiry = self.sim.timeout(self.config.control_timeout)
        outcome = yield self.sim.any_of([accept, expiry])
        if accept in outcome:
            return outcome[accept]
        accept.interrupt("timed out")
        return None

    # -- the execution environment ------------------------------------------
    def _execute(self, conn, details: JobDetails):
        """Generator: set up, fetch, run, report."""
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "starter_exec",
                machine=self.machine.name, job=details.job_id,
                universe=details.universe,
            )
        # 1. Scratch directory.
        try:
            self.machine.scratch.mkdir(self.scratch_dir, parents=True)
        except FsError as exc:
            return self._starter_failure("condor", "ScratchDiskFull", str(exc))
        # 2. Load the executable and input files from the shadow.
        fetch_error = yield from self._fetch_files(conn, details)
        if fetch_error is not None:
            return fetch_error
        # 3. Run, per universe, with keepalives flowing to the shadow so a
        # long job is never mistaken for a dead site.
        keepalive = self.sim.spawn(self._keepalive_loop(conn), name="starter-keepalive")
        keepalive.defuse()
        try:
            if details.universe == "java":
                result = yield from self._run_java(details)
            elif details.universe == "standard":
                result = yield from self._run_standard(conn, details)
            elif details.universe == "pvm":
                result = yield from self._run_pvm(details)
            else:
                result = yield from self._run_vanilla(details)
        finally:
            keepalive.interrupt("job finished")
        return result

    def _keepalive_loop(self, conn):
        interval = max(1.0, self.config.control_timeout / 4.0)
        while not conn.broken:
            yield self.sim.timeout(interval)
            try:
                conn.send(Keepalive(claim_id=self.claim_id), size=WireSize.CONTROL)
            except NetworkError:
                return

    def _fetch_files(self, conn, details: JobDetails):
        """Generator: transfer image + inputs; returns a JobResult on error."""
        names = (details.image_name,) + tuple(details.input_files)
        for name in names:
            try:
                conn.send(FileRequest(name=name), size=WireSize.CONTROL)
                data = yield from conn.recv(timeout=self.config.control_timeout)
            except NetworkError as exc:
                # The shadow vanished mid-transfer; nobody is listening, so
                # just die -- the schedd will notice the shadow's fate.
                return self._starter_failure("condor", "ShadowDied", str(exc))
            if not isinstance(data, FileData):
                return self._starter_failure("condor", "ShadowDied", "bad transfer message")
            if data.error:
                if data.error in ("ENOENT", "EACCES"):
                    # "a corrupted program or a missing input file has job
                    # scope" (§4).
                    return self._starter_failure(
                        "condor", "MissingInputFile", f"{name}: {data.error}"
                    )
                return self._starter_failure(
                    "condor", "HomeFilesystemOffline", f"{name}: {data.error}"
                )
            try:
                self.machine.scratch.write_file(f"{self.scratch_dir}/{name}", data.data)
            except FsError as exc:
                if exc.code == "ENOSPC":
                    return self._starter_failure("condor", "ScratchDiskFull", str(exc))
                return self._starter_failure("condor", "ScratchDiskFull", str(exc))
        return None

    def _starter_failure(self, namespace: str, name: str, detail: str) -> JobResult:
        """A condition the starter itself discovered, scoped via the table."""
        classification = DEFAULT_CLASSIFIER.classify(namespace, name)
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "starter_error",
                machine=self.machine.name, error=name,
                scope=classification.scope.name,
            )
        return JobResult(
            claim_id=self.claim_id,
            starter_error=f"{name}: {detail}",
            starter_error_scope=classification.scope.name,
        )

    # -- universes ------------------------------------------------------------
    def _run_java(self, details: JobDetails):
        program: JavaProgram = details.program
        jvm = Jvm(self.sim, self.machine)
        # exec the java binary
        try:
            jvm.check_exec()
        except JvmExecError as exc:
            return self._starter_failure("condor", "JvmBinaryMissing", str(exc))
        # Chirp proxy + shared secret (Figure 2).
        secret = generate_secret(self.claim_id)
        try:
            place_secret(self.machine.scratch, self.scratch_dir, secret)
        except FsError as exc:
            return self._starter_failure("condor", "ScratchDiskFull", str(exc))
        self.proxy = ChirpProxy(
            self.sim,
            self.net,
            self.machine.name,
            self.port + 10000,
            secret,
            details.shadow_io_host,
            details.shadow_io_port,
            credential=details.credential,
            rpc_timeout=self.config.rpc_timeout,
        )
        io = CondorIoLibrary(
            self.sim,
            self.net,
            self.machine.name,
            self.port + 10000,
            secret,
            mode=self.config.error_mode,
            request_timeout=self.config.io_request_timeout,
        )
        self.io_interface = io.interface  # kept for the principle auditor
        if self.config.interface_registry is not None:
            self.config.interface_registry.append(io.interface)
        image = self._image_for(details)
        result_sink: list[bytes] = []
        if self.config.error_mode == "naive":
            body = jvm.run_bare(image, program, io, details.heap_request)
        else:
            body = jvm.run_wrapped(
                image, program, io, details.heap_request, DEFAULT_CLASSIFIER,
                result_sink.append,
            )
        proc = self.machine.processes.spawn(f"java:{self.claim_id}", body)
        self._job_proc = proc
        status = yield from proc.wait()
        io.close()
        if self._evicted:
            return self._starter_failure("condor", "Evicted", "owner reclaimed machine")
        if self.config.error_mode == "naive":
            # §2.3: "we relied entirely on the exit code of the JVM".
            return JobResult(
                claim_id=self.claim_id,
                exit_code=status.code,
                exit_signal=status.signal,
            )
        # §4: "The starter examines this result file and ignores the JVM
        # result entirely."
        if result_sink:
            return JobResult(claim_id=self.claim_id, result_file=result_sink[0])
        # JVM exited without the wrapper producing a result file: the VM
        # itself never came up -- the owner's installation is at fault.
        return self._starter_failure(
            "condor", "JvmMisconfigured", f"no result file; JVM said {status}"
        )

    def _image_for(self, details: JobDetails):
        from repro.condor.job import ProgramImage

        data = self.machine.scratch.read_file(f"{self.scratch_dir}/{details.image_name}")
        corrupt = not data.startswith(b"\xca\xfe\xba\xbe")
        return ProgramImage(details.image_name, content=data, program=details.program,
                            corrupt=corrupt)

    def _run_vanilla(self, details: JobDetails):
        """Vanilla universe: no wrapper, no remote I/O -- scratch only."""
        program: JavaProgram = details.program
        jvm = Jvm(self.sim, self.machine)  # stands in for any runtime
        io = LocalIoLibrary(self.machine.scratch, self.scratch_dir)
        image = self._image_for(details)
        proc = self.machine.processes.spawn(
            f"vanilla:{self.claim_id}",
            jvm.run_bare(image, program, io, details.heap_request),
        )
        self._job_proc = proc
        status = yield from proc.wait()
        if self._evicted:
            return self._starter_failure("condor", "Evicted", "owner reclaimed machine")
        return JobResult(
            claim_id=self.claim_id, exit_code=status.code, exit_signal=status.signal
        )

    def _run_pvm(self, details: JobDetails):
        """PVM universe: the starter creates the cluster, so the starter
        manages cluster scope (§3.3).  One node's failure obliges the
        whole cluster to fail: survivors are killed and a cluster-scope
        error is reported -- never a half-finished "result"."""
        cluster = details.program  # a PvmProgram
        jvm_pool = []
        node_procs = []
        for node_id, node_program in enumerate(cluster.nodes):
            jvm = Jvm(self.sim, self.machine)
            io = LocalIoLibrary(self.machine.scratch, self.scratch_dir)
            image = self._image_for(details)
            # Per-node heap: the cluster's request divided evenly.
            heap = max(1, details.heap_request // cluster.n_nodes)
            proc = self.machine.processes.spawn(
                f"pvm-node{node_id}:{self.claim_id}",
                jvm.run_bare(image, node_program, io, heap),
            )
            jvm_pool.append(jvm)
            node_procs.append(proc)
        # Wait for all nodes; fail fast on the first node death.
        statuses = []
        for proc in node_procs:
            status = yield from proc.wait()
            statuses.append(status)
            if not status.exited_normally or status.code != 0:
                break
        failed = any(
            (not s.exited_normally) or s.code != 0 for s in statuses
        )
        if failed or self._evicted:
            for proc in node_procs:
                if proc.is_alive:
                    proc.kill()
            # Let the kills land before reporting.
            yield self.sim.timeout(0.0)
            if self._evicted:
                return self._starter_failure("condor", "Evicted", "owner reclaimed machine")
            bad = next(i for i, s in enumerate(statuses)
                       if (not s.exited_normally) or s.code != 0)
            return self._starter_failure(
                "condor", "PvmNodeFailed",
                f"node {bad} of {cluster.n_nodes} died ({statuses[bad]}); "
                "cluster obliged to fail",
            )
        # The master's exit code is the cluster's result.
        return JobResult(claim_id=self.claim_id, exit_code=statuses[0].code)

    def _run_standard(self, conn, details: JobDetails):
        """Standard universe: re-linked binary with transparent
        checkpointing (§2.1).  Each committed step is reported to the
        shadow; an eviction loses only the work since the last notice."""
        program: JavaProgram = details.program
        jvm = Jvm(self.sim, self.machine)
        io = LocalIoLibrary(self.machine.scratch, self.scratch_dir)
        image = self._image_for(details)
        total = len(program.steps)
        every = max(1, self.config.checkpoint_every_steps)

        def on_step(steps_done: int) -> None:
            if steps_done % every == 0 or steps_done == total:
                try:
                    conn.send(
                        CheckpointNotice(claim_id=self.claim_id, steps_done=steps_done),
                        size=WireSize.CONTROL,
                    )
                except NetworkError:
                    pass  # the shadow is gone; the run is doomed anyway

        proc = self.machine.processes.spawn(
            f"standard:{self.claim_id}",
            jvm.run_bare(
                image, program, io, details.heap_request,
                start_at=details.resume_from, on_step=on_step,
            ),
        )
        self._job_proc = proc
        status = yield from proc.wait()
        if self._evicted:
            return self._starter_failure("condor", "Evicted", "owner reclaimed machine")
        return JobResult(
            claim_id=self.claim_id, exit_code=status.code, exit_signal=status.signal
        )
