"""The schedd: the job owner's representative and the last line of defense.

    "The last line of defense is the schedd.  If it detects an error of
    program scope, it identifies the job as complete and returns it to the
    user.  If it detects an error of job scope, it identifies the job as
    unexecutable and also returns it to the user.  Anything in between
    causes it to log the error and then attempt to execute the program at
    a new site." (§4)

``error_mode="naive"`` reproduces §2.3 instead: every outcome -- including
claim losses and starter-detected environmental errors -- is returned to
the user, who must perform the postmortem.

With ``schedd_avoidance`` enabled, the schedd implements §5's
complementary defense: "enhance the schedd with logic to detect and avoid
hosts with chronic failures."  The defense is backoff-hardened (see
:mod:`repro.condor.daemons.avoidance`): avoidance windows grow
exponentially per strike and recovered sites are re-admitted on
probation, instead of the original permanent blacklist.

With flock links configured (:meth:`Schedd.add_flock_target`), the
schedd federates: a job idle longer than ``flock_after`` is advertised
to remote pools' matchmakers as well as the home one, so work overflows
from a saturated pool.  Each link carries a retry budget and exponential
backoff; a link that exhausts its budget is a POOL-scope error the
grid-aware schedd masks (it keeps retrying on the backoff schedule and
the other pools keep the grid usable), and only when the local
matchmaker *and* every flock link are unreachable does the error widen
to GRID scope and escalate to the user.
"""

from __future__ import annotations

import itertools

from repro.condor.classads import ClassAd
from repro.condor.daemons.avoidance import SiteAvoidance
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.shadow import Shadow, ShadowOutcome
from repro.condor.job import ExecutionAttempt, Job, JobState, Universe
from repro.condor.protocols import (
    AdvertiseBatch,
    ClaimGranted,
    MatchNotify,
    RequestClaim,
    WireSize,
)
from repro.condor.userlog import UserLog, UserLogEventType
from repro.core.errors import explicit
from repro.core.propagation import ManagementChain
from repro.core.scope import ErrorScope
from repro.remoteio.rpc import Credential
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkError

__all__ = ["FlockLink", "Schedd"]


class FlockLink:
    """One schedd-to-remote-pool link with its own failure discipline.

    A link is *up* until ``flock_retry_budget`` consecutive advertise
    attempts fail; each failure also pushes the next attempt out by an
    exponentially growing backoff (capped), so an unreachable remote
    pool costs a bounded, shrinking trickle of connection attempts
    rather than a retry storm.  Any success resets the whole record.
    """

    def __init__(self, host: str, config: CondorConfig):
        self.host = host
        self.config = config
        self.consecutive_failures = 0
        self.backoff = config.flock_backoff_base
        self.next_attempt = 0.0
        self.down = False
        self.jobs_flocked = 0
        #: cumulative down-transitions (never reset; for reporting)
        self.times_down = 0

    def ready(self, now: float) -> bool:
        """True when the backoff schedule allows another attempt."""
        return now >= self.next_attempt

    def note_success(self, now: float) -> bool:
        """Record a reachable remote matchmaker; True on an up-transition."""
        was_down = self.down
        self.consecutive_failures = 0
        self.backoff = self.config.flock_backoff_base
        self.next_attempt = now
        self.down = False
        return was_down

    def note_failure(self, now: float) -> bool:
        """Record an unreachable remote matchmaker; True on a
        down-transition (the retry budget was just exhausted)."""
        self.consecutive_failures += 1
        self.next_attempt = now + self.backoff
        self.backoff = min(self.backoff * 2.0, self.config.flock_backoff_cap)
        newly_down = (
            not self.down
            and self.consecutive_failures >= self.config.flock_retry_budget
        )
        if newly_down:
            self.down = True
            self.times_down += 1
        return newly_down


class Schedd:
    """One schedd per submit machine."""

    PORT = 9615

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        submit_host: str,
        home_fs,  # generator-API backend for shadows' I/O servers
        matchmaker_host: str,
        config: CondorConfig,
        chain: ManagementChain | None = None,
        credential_factory=None,
    ):
        self.sim = sim
        self.net = net
        self.submit_host = submit_host
        self.home_fs = home_fs
        self.matchmaker_host = matchmaker_host
        self.config = config
        self.chain = chain
        self.credential_factory = credential_factory or (
            lambda job: Credential(owner=job.owner)
        )
        self.jobs: dict[str, Job] = {}
        self.userlog = UserLog()
        # Shadow I/O server ports: per-schedd sequence, unique on this
        # submit host and deterministic per run (no module-global state).
        self._io_port_seq = itertools.count(20001)
        self.avoidance = SiteAvoidance(config)
        self.shadows_spawned = 0
        #: Flocking state: remote pools this schedd may overflow to.
        self.flock_links: list[FlockLink] = []
        self.jobs_flocked = 0
        #: job_id -> time it (last) became idle, for flock eligibility
        self._idle_since: dict[str, float] = {}
        #: job_ids already announced as flocked (one telemetry event each)
        self._flock_announced: set[str] = set()
        #: consecutive local-matchmaker advertise failures (grid escalation)
        self._local_mm_failures = 0
        self._grid_error_reported = False
        self.listener = net.listen(submit_host, self.PORT)
        self._accept_proc = sim.spawn(self._accept_loop(), name=f"schedd:{submit_host}")
        self._accept_proc.defuse()
        self._advertise_proc = sim.spawn(
            self._advertise_loop(), name=f"schedd-ads:{submit_host}"
        )
        self._advertise_proc.defuse()

    # -- avoidance views ------------------------------------------------------
    @property
    def site_failures(self) -> dict[str, int]:
        """Per-site strike counts (compatibility view over the avoidance
        state; mutating it mutates the defense's record)."""
        return self.avoidance.failures

    @property
    def avoided_sites(self) -> set[str]:
        """The sites currently inside an avoidance window."""
        return self.avoidance.avoided(self.sim.now)

    def forget_site(self, site: str) -> None:
        """*site* permanently left the pool: evict its avoidance record.

        Called by :meth:`~repro.condor.pool.Pool.remove_machine`; without
        it the strike/window tables grow without bound under churn.
        """
        self.avoidance.forget(site)

    # -- federation -----------------------------------------------------------
    def add_flock_target(self, matchmaker_host: str) -> FlockLink:
        """Flock to the remote pool whose matchmaker runs on *matchmaker_host*."""
        if any(link.host == matchmaker_host for link in self.flock_links):
            raise ValueError(f"already flocking to {matchmaker_host}")
        link = FlockLink(matchmaker_host, self.config)
        self.flock_links.append(link)
        return link

    # -- submission -----------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept *job* into the queue (persistent storage, per §2.1)."""
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        job.submitted_at = self.sim.now
        job.set_state(JobState.IDLE)
        self._idle_since[job.job_id] = self.sim.now
        self.jobs[job.job_id] = job
        self.userlog.log(self.sim.now, job.job_id, UserLogEventType.SUBMIT)
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "submit",
                job=job.job_id, owner=job.owner, universe=job.universe.value,
            )
        prompt = self.sim.spawn(self._advertise_jobs(), name="schedd-advert-on-submit")
        prompt.defuse()

    # -- advertising ---------------------------------------------------------
    def _advertise_loop(self):
        while True:
            yield from self._advertise_jobs()
            yield from self._advertise_flock()
            yield self.sim.timeout(self.config.advertise_interval)

    def _advertise_jobs(self):
        batch = tuple(
            (f"{self.submit_host}#{job.job_id}", self._job_ad(job))
            for job in list(self.jobs.values())
            if job.state is JobState.IDLE
        )
        if not batch:
            return
        try:
            conn = yield from self.net.connect(
                self.submit_host, self.matchmaker_host, 9618,
                timeout=self.config.claim_timeout,
            )
            # One connection and one message for the whole idle queue:
            # per-ad connects and receive deadlines do not scale to a
            # 100k-job queue (tentpole c).
            conn.send(
                AdvertiseBatch(kind="job", ads=batch),
                size=WireSize.AD * len(batch),
            )
            conn.close()
        except NetworkError:
            # Matchmaker unreachable: retry next interval.  In a
            # federation this is where POOL-scope trouble can widen to
            # GRID scope -- but only once every flock link is down too.
            self._local_mm_failures += 1
            self._check_grid_scope()
            return
        self._local_mm_failures = 0
        self._grid_error_reported = False

    # -- flocking -------------------------------------------------------------
    def _flock_candidates(self) -> list[Job]:
        now = self.sim.now
        return [
            job
            for job in self.jobs.values()
            if job.state is JobState.IDLE
            and now - self._idle_since.get(job.job_id, now) >= self.config.flock_after
        ]

    def _advertise_flock(self):
        """Overflow long-idle jobs to every ready flock link.

        The job ads carry ``scheddhost`` pointing back here, so a remote
        matchmaker's MatchNotify, the claim, and the shadow all run over
        the shared network exactly as a local match would.
        """
        if not self.flock_links:
            return
        candidates = self._flock_candidates()
        if not candidates:
            return
        bus = self.sim.telemetry
        for link in self.flock_links:
            if not link.ready(self.sim.now):
                continue
            batch = tuple(
                (f"{self.submit_host}#{job.job_id}", self._job_ad(job))
                for job in candidates
            )
            try:
                conn = yield from self.net.connect(
                    self.submit_host, link.host, 9618,
                    timeout=self.config.claim_timeout,
                )
                conn.send(
                    AdvertiseBatch(kind="job", ads=batch),
                    size=WireSize.AD * len(batch),
                )
                conn.close()
            except NetworkError:
                self._flock_link_failed(link)
                continue
            if link.note_success(self.sim.now) and bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "daemon", "flock_link_up",
                    schedd=self.submit_host, target=link.host,
                )
            for job in candidates:
                if job.job_id in self._flock_announced:
                    continue
                self._flock_announced.add(job.job_id)
                link.jobs_flocked += 1
                self.jobs_flocked += 1
                if bus is not None and bus.active:
                    bus.emit(
                        self.sim.now, "job", "flock",
                        job=job.job_id, target=link.host,
                    )

    def _flock_link_failed(self, link: FlockLink) -> None:
        if not link.note_failure(self.sim.now):
            return
        # The link just exhausted its retry budget: a POOL-scope error
        # (one whole remote pool is invalid) that the grid-aware schedd
        # masks -- the backoff schedule keeps probing, and the rest of
        # the grid keeps the job stream moving.
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "flock_link_down",
                schedd=self.submit_host, target=link.host,
                failures=link.consecutive_failures,
            )
        if self.chain is not None:
            err = explicit(
                "FlockLinkDown",
                ErrorScope.POOL,
                detail=f"{self.submit_host}->{link.host}",
                origin="schedd",
                time=self.sim.now,
            )
            self.chain.propagate(err, discovered_by="schedd", time=self.sim.now)
        self._check_grid_scope()

    def _check_grid_scope(self) -> None:
        """Escalate to GRID scope when no matchmaker anywhere is reachable."""
        if self._grid_error_reported or not self.flock_links:
            return
        if self._local_mm_failures < self.config.flock_retry_budget:
            return
        if not all(link.down for link in self.flock_links):
            return
        self._grid_error_reported = True
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "grid_unreachable",
                schedd=self.submit_host,
            )
        if self.chain is not None:
            err = explicit(
                "GridUnreachable",
                ErrorScope.GRID,
                detail=f"{self.submit_host}: local pool and all "
                       f"{len(self.flock_links)} flock links unreachable",
                origin="schedd",
                time=self.sim.now,
            )
            self.chain.propagate(err, discovered_by="schedd", time=self.sim.now)

    def _job_ad(self, job: Job) -> ClassAd:
        ad = job.to_classad()
        ad["scheddhost"] = self.submit_host
        ad["scheddport"] = self.PORT
        requirements = f"({job.requirements})"
        if job.universe is Universe.JAVA:
            # "The user simply specifies the Java Universe, and does not
            # need to know the local details." -- the schedd adds the
            # capability requirement on the user's behalf.
            requirements += " && (TARGET.hasjava == TRUE)"
        for site in sorted(self.avoided_sites):
            requirements += f' && (TARGET.machine =!= "{site}")'
        ad.set_expr("requirements", requirements)
        return ad

    # -- match handling --------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._receive(conn), name="schedd-recv")
            handler.defuse()

    def _receive(self, conn):
        try:
            message = yield from conn.recv(timeout=self.config.claim_timeout)
        except NetworkError:
            return
        finally:
            conn.close()
        if isinstance(message, MatchNotify):
            job = self.jobs.get(message.job_id)
            if job is None or job.state is not JobState.IDLE:
                return
            if self.avoidance.is_avoided(message.startd_name, self.sim.now):
                return  # leave the job idle; it will be re-advertised
            job.set_state(JobState.MATCHED)
            self._idle_since.pop(job.job_id, None)
            bus = self.sim.telemetry
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "job", "match",
                    job=job.job_id, site=message.startd_name,
                )
            runner = self.sim.spawn(
                self._claim_and_run(job, message), name=f"run:{job.job_id}"
            )
            runner.defuse()

    def _claim_and_run(self, job: Job, match: MatchNotify):
        granted = yield from self._request_claim(job, match)
        bus = self.sim.telemetry
        if granted is None:
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "job", "claim_failed",
                    job=job.job_id, site=match.startd_name,
                )
            job.set_state(JobState.IDLE)
            self._idle_since[job.job_id] = self.sim.now
            return
        shadow = Shadow(
            sim=self.sim,
            net=self.net,
            submit_host=self.submit_host,
            home_fs=self.home_fs,
            job=job,
            exec_host=match.startd_host,
            starter_port=granted.starter_port,
            config=self.config,
            credential=self.credential_factory(job),
            io_port=next(self._io_port_seq),
        )
        self.shadows_spawned += 1
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "shadow_spawn",
                job=job.job_id, site=match.startd_name,
            )
        job.set_state(JobState.RUNNING)
        self.userlog.log(
            self.sim.now, job.job_id, UserLogEventType.EXECUTE, match.startd_name
        )
        attempt = ExecutionAttempt(site=match.startd_name, started=self.sim.now)
        job.attempts.append(attempt)
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "execute",
                job=job.job_id, site=match.startd_name, attempt=len(job.attempts),
            )
        shadow_proc = self.sim.spawn(shadow.run(), name=f"shadow:{job.job_id}")
        shadow_proc.defuse()
        yield shadow_proc
        attempt.ended = self.sim.now
        outcome = shadow.outcome
        if outcome is None:  # the shadow process itself died
            outcome = ShadowOutcome.environment(
                ErrorScope.LOCAL_RESOURCE, "ShadowDied", "shadow process failed"
            )
        self._dispose(job, attempt, outcome)

    def _request_claim(self, job: Job, match: MatchNotify):
        try:
            conn = yield from self.net.connect(
                self.submit_host, match.startd_host, match.startd_port,
                timeout=self.config.claim_timeout,
            )
            conn.send(
                RequestClaim(
                    schedd_name=self.submit_host,
                    job_id=job.job_id,
                    job_ad=self._job_ad(job),
                ),
                size=WireSize.AD,
            )
            reply = yield from conn.recv(timeout=self.config.claim_timeout)
            conn.close()
        except NetworkError:
            return None
        return reply if isinstance(reply, ClaimGranted) else None

    # -- the last line of defense ---------------------------------------------
    def _dispose(self, job: Job, attempt: ExecutionAttempt, outcome: ShadowOutcome) -> None:
        if outcome.kind == "result":
            attempt.result = outcome.result
            # The site delivered: if it was on probation, the trial
            # passed and its avoidance record is cleared.
            self.avoidance.note_success(attempt.site, self.sim.now)
            self._complete(job, outcome)
            return
        assert outcome.scope is not None
        attempt.error_scope = outcome.scope
        attempt.error_name = outcome.error_name
        self._record_propagation(job, attempt, outcome)
        if self.config.error_mode == "naive":
            # §2.3: "nearly any failure in a component of the system would
            # cause the job to be returned to the user with an error
            # message."
            self._hold(job, f"error: {outcome.error_name}: {outcome.detail}")
            return
        self._note_site_failure(attempt.site)
        if outcome.scope >= ErrorScope.JOB:
            self._hold(job, f"unexecutable: {outcome.error_name}: {outcome.detail}")
            return
        # In-between scope: log and retry at a new site.
        self.userlog.log(
            self.sim.now,
            job.job_id,
            UserLogEventType.SITE_FAILED,
            f"{attempt.site}: {outcome.error_name} ({outcome.scope})",
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "site_failed",
                job=job.job_id, site=attempt.site,
                error=outcome.error_name, scope=outcome.scope.name,
            )
        env_failures = sum(
            1
            for a in job.attempts
            if a.error_scope is not None and not a.error_scope.within_program_contract
        )
        if env_failures > self.config.max_retries:
            self._hold(job, f"too many retries ({env_failures})")
            return
        job.set_state(JobState.IDLE)
        self._idle_since[job.job_id] = self.sim.now

    def _complete(self, job: Job, outcome: ShadowOutcome) -> None:
        job.final_result = outcome.result
        job.set_state(JobState.COMPLETED)
        self._idle_since.pop(job.job_id, None)
        self._flock_announced.discard(job.job_id)
        # Structured classification: a termination is an error delivery
        # exactly when the delivered file is not a program result.
        is_error = outcome.result is not None and not outcome.result.is_program_result
        self.userlog.log(
            self.sim.now,
            job.job_id,
            UserLogEventType.TERMINATED,
            str(outcome.result),
            error=is_error,
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "result",
                job=job.job_id, result=str(outcome.result),
            )

    def _hold(self, job: Job, reason: str) -> None:
        job.hold_reason = reason
        job.set_state(JobState.HELD)
        self._idle_since.pop(job.job_id, None)
        self._flock_announced.discard(job.job_id)
        self.userlog.log(
            self.sim.now, job.job_id, UserLogEventType.HELD, reason, error=True
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(self.sim.now, "job", "hold", job=job.job_id, reason=reason)

    def _note_site_failure(self, site: str) -> None:
        if self.avoidance.note_failure(site, self.sim.now):
            bus = self.sim.telemetry
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "daemon", "site_avoided",
                    schedd=self.submit_host, site=site,
                    strikes=self.avoidance.failures[site],
                )

    def _record_propagation(self, job: Job, attempt: ExecutionAttempt, outcome: ShadowOutcome) -> None:
        if self.chain is None:
            return
        err = explicit(
            outcome.error_name,
            outcome.scope,
            detail=f"{job.job_id}@{attempt.site}",
            origin=outcome.scope.managing_program,
            time=self.sim.now,
        )
        if self.config.error_mode == "naive":
            # The naive system hands the raw error to the user regardless
            # of scope: a Principle-3 misdelivery, on the record.
            self.chain.misdeliver(err, consumed_by="user", time=self.sim.now)
        else:
            discoverer = {
                ErrorScope.VIRTUAL_MACHINE: "wrapper",
                ErrorScope.PROGRAM: "wrapper",
                ErrorScope.REMOTE_RESOURCE: "starter",
                ErrorScope.LOCAL_RESOURCE: "starter",
                ErrorScope.JOB: "wrapper",
            }.get(outcome.scope, "starter")
            self.chain.propagate(err, discovered_by=discoverer, time=self.sim.now)

    # -- introspection -----------------------------------------------------------
    def idle_jobs(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state is JobState.IDLE]

    def all_terminal(self) -> bool:
        """True once every submitted job has reached a terminal state."""
        return all(j.is_terminal for j in self.jobs.values())
