"""The schedd: the job owner's representative and the last line of defense.

    "The last line of defense is the schedd.  If it detects an error of
    program scope, it identifies the job as complete and returns it to the
    user.  If it detects an error of job scope, it identifies the job as
    unexecutable and also returns it to the user.  Anything in between
    causes it to log the error and then attempt to execute the program at
    a new site." (§4)

``error_mode="naive"`` reproduces §2.3 instead: every outcome -- including
claim losses and starter-detected environmental errors -- is returned to
the user, who must perform the postmortem.

With ``schedd_avoidance`` enabled, the schedd implements §5's
complementary defense: "enhance the schedd with logic to detect and avoid
hosts with chronic failures."
"""

from __future__ import annotations

import itertools

from repro.condor.classads import ClassAd
from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.shadow import Shadow, ShadowOutcome
from repro.condor.job import ExecutionAttempt, Job, JobState, Universe
from repro.condor.protocols import (
    AdvertiseBatch,
    ClaimGranted,
    MatchNotify,
    RequestClaim,
    WireSize,
)
from repro.condor.userlog import UserLog, UserLogEventType
from repro.core.errors import explicit
from repro.core.propagation import ManagementChain
from repro.core.scope import ErrorScope
from repro.remoteio.rpc import Credential
from repro.sim.engine import Simulator
from repro.sim.network import Network, NetworkError

__all__ = ["Schedd"]


class Schedd:
    """One schedd per submit machine."""

    PORT = 9615

    def __init__(
        self,
        sim: Simulator,
        net: Network,
        submit_host: str,
        home_fs,  # generator-API backend for shadows' I/O servers
        matchmaker_host: str,
        config: CondorConfig,
        chain: ManagementChain | None = None,
        credential_factory=None,
    ):
        self.sim = sim
        self.net = net
        self.submit_host = submit_host
        self.home_fs = home_fs
        self.matchmaker_host = matchmaker_host
        self.config = config
        self.chain = chain
        self.credential_factory = credential_factory or (
            lambda job: Credential(owner=job.owner)
        )
        self.jobs: dict[str, Job] = {}
        self.userlog = UserLog()
        # Shadow I/O server ports: per-schedd sequence, unique on this
        # submit host and deterministic per run (no module-global state).
        self._io_port_seq = itertools.count(20001)
        self.site_failures: dict[str, int] = {}
        self.avoided_sites: set[str] = set()
        self.shadows_spawned = 0
        self.listener = net.listen(submit_host, self.PORT)
        self._accept_proc = sim.spawn(self._accept_loop(), name=f"schedd:{submit_host}")
        self._accept_proc.defuse()
        self._advertise_proc = sim.spawn(
            self._advertise_loop(), name=f"schedd-ads:{submit_host}"
        )
        self._advertise_proc.defuse()

    # -- submission -----------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Accept *job* into the queue (persistent storage, per §2.1)."""
        if job.job_id in self.jobs:
            raise ValueError(f"duplicate job id {job.job_id}")
        job.submitted_at = self.sim.now
        job.set_state(JobState.IDLE)
        self.jobs[job.job_id] = job
        self.userlog.log(self.sim.now, job.job_id, UserLogEventType.SUBMIT)
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "submit",
                job=job.job_id, owner=job.owner, universe=job.universe.value,
            )
        prompt = self.sim.spawn(self._advertise_jobs(), name="schedd-advert-on-submit")
        prompt.defuse()

    # -- advertising ---------------------------------------------------------
    def _advertise_loop(self):
        while True:
            yield from self._advertise_jobs()
            yield self.sim.timeout(self.config.advertise_interval)

    def _advertise_jobs(self):
        batch = tuple(
            (f"{self.submit_host}#{job.job_id}", self._job_ad(job))
            for job in list(self.jobs.values())
            if job.state is JobState.IDLE
        )
        if not batch:
            return
        try:
            conn = yield from self.net.connect(
                self.submit_host, self.matchmaker_host, 9618,
                timeout=self.config.claim_timeout,
            )
            # One connection and one message for the whole idle queue:
            # per-ad connects and receive deadlines do not scale to a
            # 100k-job queue (tentpole c).
            conn.send(
                AdvertiseBatch(kind="job", ads=batch),
                size=WireSize.AD * len(batch),
            )
            conn.close()
        except NetworkError:
            return  # matchmaker unreachable: retry next interval

    def _job_ad(self, job: Job) -> ClassAd:
        ad = job.to_classad()
        ad["scheddhost"] = self.submit_host
        ad["scheddport"] = self.PORT
        requirements = f"({job.requirements})"
        if job.universe is Universe.JAVA:
            # "The user simply specifies the Java Universe, and does not
            # need to know the local details." -- the schedd adds the
            # capability requirement on the user's behalf.
            requirements += " && (TARGET.hasjava == TRUE)"
        for site in sorted(self.avoided_sites):
            requirements += f' && (TARGET.machine =!= "{site}")'
        ad.set_expr("requirements", requirements)
        return ad

    # -- match handling --------------------------------------------------------
    def _accept_loop(self):
        while True:
            conn = yield from self.listener.accept()
            handler = self.sim.spawn(self._receive(conn), name="schedd-recv")
            handler.defuse()

    def _receive(self, conn):
        try:
            message = yield from conn.recv(timeout=self.config.claim_timeout)
        except NetworkError:
            return
        finally:
            conn.close()
        if isinstance(message, MatchNotify):
            job = self.jobs.get(message.job_id)
            if job is None or job.state is not JobState.IDLE:
                return
            if message.startd_name in self.avoided_sites:
                return  # leave the job idle; it will be re-advertised
            job.set_state(JobState.MATCHED)
            bus = self.sim.telemetry
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "job", "match",
                    job=job.job_id, site=message.startd_name,
                )
            runner = self.sim.spawn(
                self._claim_and_run(job, message), name=f"run:{job.job_id}"
            )
            runner.defuse()

    def _claim_and_run(self, job: Job, match: MatchNotify):
        granted = yield from self._request_claim(job, match)
        bus = self.sim.telemetry
        if granted is None:
            if bus is not None and bus.active:
                bus.emit(
                    self.sim.now, "job", "claim_failed",
                    job=job.job_id, site=match.startd_name,
                )
            job.set_state(JobState.IDLE)
            return
        shadow = Shadow(
            sim=self.sim,
            net=self.net,
            submit_host=self.submit_host,
            home_fs=self.home_fs,
            job=job,
            exec_host=match.startd_host,
            starter_port=granted.starter_port,
            config=self.config,
            credential=self.credential_factory(job),
            io_port=next(self._io_port_seq),
        )
        self.shadows_spawned += 1
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "daemon", "shadow_spawn",
                job=job.job_id, site=match.startd_name,
            )
        job.set_state(JobState.RUNNING)
        self.userlog.log(
            self.sim.now, job.job_id, UserLogEventType.EXECUTE, match.startd_name
        )
        attempt = ExecutionAttempt(site=match.startd_name, started=self.sim.now)
        job.attempts.append(attempt)
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "execute",
                job=job.job_id, site=match.startd_name, attempt=len(job.attempts),
            )
        shadow_proc = self.sim.spawn(shadow.run(), name=f"shadow:{job.job_id}")
        shadow_proc.defuse()
        yield shadow_proc
        attempt.ended = self.sim.now
        outcome = shadow.outcome
        if outcome is None:  # the shadow process itself died
            outcome = ShadowOutcome.environment(
                ErrorScope.LOCAL_RESOURCE, "ShadowDied", "shadow process failed"
            )
        self._dispose(job, attempt, outcome)

    def _request_claim(self, job: Job, match: MatchNotify):
        try:
            conn = yield from self.net.connect(
                self.submit_host, match.startd_host, match.startd_port,
                timeout=self.config.claim_timeout,
            )
            conn.send(
                RequestClaim(
                    schedd_name=self.submit_host,
                    job_id=job.job_id,
                    job_ad=self._job_ad(job),
                ),
                size=WireSize.AD,
            )
            reply = yield from conn.recv(timeout=self.config.claim_timeout)
            conn.close()
        except NetworkError:
            return None
        return reply if isinstance(reply, ClaimGranted) else None

    # -- the last line of defense ---------------------------------------------
    def _dispose(self, job: Job, attempt: ExecutionAttempt, outcome: ShadowOutcome) -> None:
        if outcome.kind == "result":
            attempt.result = outcome.result
            self._complete(job, outcome)
            return
        assert outcome.scope is not None
        attempt.error_scope = outcome.scope
        attempt.error_name = outcome.error_name
        self._record_propagation(job, attempt, outcome)
        if self.config.error_mode == "naive":
            # §2.3: "nearly any failure in a component of the system would
            # cause the job to be returned to the user with an error
            # message."
            self._hold(job, f"error: {outcome.error_name}: {outcome.detail}")
            return
        self._note_site_failure(attempt.site)
        if outcome.scope >= ErrorScope.JOB:
            self._hold(job, f"unexecutable: {outcome.error_name}: {outcome.detail}")
            return
        # In-between scope: log and retry at a new site.
        self.userlog.log(
            self.sim.now,
            job.job_id,
            UserLogEventType.SITE_FAILED,
            f"{attempt.site}: {outcome.error_name} ({outcome.scope})",
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "site_failed",
                job=job.job_id, site=attempt.site,
                error=outcome.error_name, scope=outcome.scope.name,
            )
        env_failures = sum(
            1
            for a in job.attempts
            if a.error_scope is not None and not a.error_scope.within_program_contract
        )
        if env_failures > self.config.max_retries:
            self._hold(job, f"too many retries ({env_failures})")
            return
        job.set_state(JobState.IDLE)

    def _complete(self, job: Job, outcome: ShadowOutcome) -> None:
        job.final_result = outcome.result
        job.set_state(JobState.COMPLETED)
        # Structured classification: a termination is an error delivery
        # exactly when the delivered file is not a program result.
        is_error = outcome.result is not None and not outcome.result.is_program_result
        self.userlog.log(
            self.sim.now,
            job.job_id,
            UserLogEventType.TERMINATED,
            str(outcome.result),
            error=is_error,
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(
                self.sim.now, "job", "result",
                job=job.job_id, result=str(outcome.result),
            )

    def _hold(self, job: Job, reason: str) -> None:
        job.hold_reason = reason
        job.set_state(JobState.HELD)
        self.userlog.log(
            self.sim.now, job.job_id, UserLogEventType.HELD, reason, error=True
        )
        bus = self.sim.telemetry
        if bus is not None and bus.active:
            bus.emit(self.sim.now, "job", "hold", job=job.job_id, reason=reason)

    def _note_site_failure(self, site: str) -> None:
        self.site_failures[site] = self.site_failures.get(site, 0) + 1
        if (
            self.config.schedd_avoidance
            and self.site_failures[site] >= self.config.avoidance_threshold
        ):
            self.avoided_sites.add(site)

    def _record_propagation(self, job: Job, attempt: ExecutionAttempt, outcome: ShadowOutcome) -> None:
        if self.chain is None:
            return
        err = explicit(
            outcome.error_name,
            outcome.scope,
            detail=f"{job.job_id}@{attempt.site}",
            origin=outcome.scope.managing_program,
            time=self.sim.now,
        )
        if self.config.error_mode == "naive":
            # The naive system hands the raw error to the user regardless
            # of scope: a Principle-3 misdelivery, on the record.
            self.chain.misdeliver(err, consumed_by="user", time=self.sim.now)
        else:
            discoverer = {
                ErrorScope.VIRTUAL_MACHINE: "wrapper",
                ErrorScope.PROGRAM: "wrapper",
                ErrorScope.REMOTE_RESOURCE: "starter",
                ErrorScope.LOCAL_RESOURCE: "starter",
                ErrorScope.JOB: "wrapper",
            }.get(outcome.scope, "starter")
            self.chain.propagate(err, discovered_by=discoverer, time=self.sim.now)

    # -- introspection -----------------------------------------------------------
    def idle_jobs(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state is JobState.IDLE]

    def all_terminal(self) -> bool:
        """True once every submitted job has reached a terminal state."""
        return all(j.is_terminal for j in self.jobs.values())
