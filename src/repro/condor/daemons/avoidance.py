"""§5's schedd defense, hardened with backoff and probation.

    "enhance the schedd with logic to detect and avoid hosts with chronic
    failures." (§5)

The original defense was a permanent blacklist: once a site crossed the
failure threshold it never received work again.  That is the wrong shape
under churn -- machines are repaired, rebooted, and rejoin the pool, and
a blacklist that never forgives slowly drains the pool of capacity.

:class:`SiteAvoidance` keeps the threshold but makes the sentence finite:
crossing the threshold avoids the site for ``avoidance_base`` seconds,
and every further strike doubles the window (capped at
``avoidance_cap``).  When a window expires the site is on *probation*:
it may be matched again, and a successful attempt there clears its
record entirely, while another failure re-avoids it for twice as long.
``avoidance_mode="permanent"`` restores the original blacklist so
experiments can measure exactly what the backoff buys (EXP-CHURN).
"""

from __future__ import annotations

import math

from repro.condor.daemons.config import CondorConfig

__all__ = ["SiteAvoidance"]


class SiteAvoidance:
    """Per-site strike counts and avoidance windows for one schedd."""

    def __init__(self, config: CondorConfig):
        self.config = config
        #: site -> environmental-failure strikes since the last success
        self.failures: dict[str, int] = {}
        #: site -> simulated time its avoidance window ends (inf = forever)
        self._avoid_until: dict[str, float] = {}

    # -- recording ------------------------------------------------------
    def note_failure(self, site: str, now: float) -> bool:
        """Record one environmental failure at *site*.

        Returns True when this strike put (or kept) the site inside an
        avoidance window -- the moment the defense engages.
        """
        strikes = self.failures.get(site, 0) + 1
        self.failures[site] = strikes
        if not self.config.schedd_avoidance:
            return False
        if strikes < self.config.avoidance_threshold:
            return False
        if self.config.avoidance_mode == "permanent":
            self._avoid_until[site] = math.inf
            return True
        window = min(
            self.config.avoidance_base * 2 ** (strikes - self.config.avoidance_threshold),
            self.config.avoidance_cap,
        )
        self._avoid_until[site] = now + window
        return True

    def note_success(self, site: str, now: float) -> None:
        """A delivered result from *site*: the probation trial passed, so
        the site's record is cleared (even under ``permanent`` mode a
        success proves the blacklist entry wrong -- but the permanent
        blacklist never lets the trial happen, so this only fires there
        if the site succeeded before crossing the threshold)."""
        self.failures.pop(site, None)
        self._avoid_until.pop(site, None)

    def forget(self, site: str) -> None:
        """*site* left the pool: drop every trace of it.

        Without this the strike and window tables grow monotonically
        under churn -- the same leak class the matchmaker's
        ``_recently_matched`` had before it was pruned on ad expiry.
        """
        self.failures.pop(site, None)
        self._avoid_until.pop(site, None)

    # -- queries --------------------------------------------------------
    def is_avoided(self, site: str, now: float) -> bool:
        until = self._avoid_until.get(site)
        if until is None:
            return False
        if now < until:
            return True
        # The window expired: the site is on probation.  Drop the window
        # (but keep the strikes) so exactly one failure re-avoids it.
        del self._avoid_until[site]
        return False

    def avoided(self, now: float) -> set[str]:
        """The sites currently inside an avoidance window."""
        return {site for site in list(self._avoid_until) if self.is_avoided(site, now)}

    def __len__(self) -> int:  # pragma: no cover - debugging aid
        return len(self._avoid_until)
