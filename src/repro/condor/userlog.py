"""The per-job user event log.

This is the user's window onto the system -- and therefore where the
paper's headline metric lives: every environmental error a user must read
here is a "postmortem analysis" (§2.3) the improved system should have
absorbed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["UserLog", "UserLogEvent", "UserLogEventType"]


class UserLogEventType(enum.Enum):
    SUBMIT = "submit"
    EXECUTE = "execute"
    EVICTED = "evicted"
    SITE_FAILED = "site_failed"  # environmental error logged, job re-queued
    TERMINATED = "terminated"  # program result delivered
    HELD = "held"  # job-scope error: unexecutable
    ABORTED = "aborted"


@dataclass(frozen=True)
class UserLogEvent:
    time: float
    job_id: str
    type: UserLogEventType
    detail: str = ""
    #: Structured classification: True when this event delivers an error
    #: the user must read (a hold, or a termination that is not a program
    #: result).  Set by the logger; the rendered format does not change.
    error: bool = False

    def __str__(self) -> str:
        detail = f" -- {self.detail}" if self.detail else ""
        return f"{self.time:10.3f}  {self.job_id:<10} {self.type.value}{detail}"


class UserLog:
    """Append-only event log, one per schedd."""

    def __init__(self) -> None:
        self.events: list[UserLogEvent] = []

    def log(
        self,
        time: float,
        job_id: str,
        type: UserLogEventType,
        detail: str = "",
        error: bool = False,
    ) -> None:
        self.events.append(UserLogEvent(time, job_id, type, detail, error))

    def for_job(self, job_id: str) -> list[UserLogEvent]:
        return [e for e in self.events if e.job_id == job_id]

    def count(self, type: UserLogEventType) -> int:
        return sum(1 for e in self.events if e.type is type)

    def user_visible_errors(self) -> list[UserLogEvent]:
        """Events a user must read and interpret: error deliveries.

        Classified on the structured :attr:`UserLogEvent.error` flag, not
        on the rendered detail string (which is free-form prose).
        """
        return [e for e in self.events if e.error]

    def render(self) -> str:
        return "\n".join(str(e) for e in self.events)

    def __len__(self) -> int:
        return len(self.events)
