"""The Condor submit-description language.

    "A user submits jobs to a schedd..." (§2.1) -- and in practice does so
    by writing a submit description.  This module parses the classic
    syntax::

        universe      = java
        executable    = Main.class
        input_files   = table.dat = /home/user/table.dat, cfg = /home/user/c
        requirements  = TARGET.memory >= 64
        rank          = TARGET.cpuspeed
        image_size    = 16M
        heap_request  = 32M
        owner         = alice
        queue 3

    and yields :class:`~repro.condor.job.Job` objects (``queue N`` emits N
    jobs with ids ``<cluster>.0 .. <cluster>.N-1``).  Multiple
    ``queue`` statements re-use the attributes in effect at that point,
    exactly like the real tool.

    Program behaviour (the simulation's stand-in for the executable's
    bytes) is attached via the ``programs`` argument, keyed by executable
    name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.classads.parser import ParseError, parse as parse_classad
from repro.condor.job import Job, ProgramImage, Universe

__all__ = ["SubmitError", "parse_submit"]


class SubmitError(Exception):
    """Malformed submit description."""


_SIZE_SUFFIXES = {"K": 2**10, "M": 2**20, "G": 2**30}


def _parse_size(text: str) -> int:
    text = text.strip().upper()
    try:
        if text and text[-1] in _SIZE_SUFFIXES:
            return int(float(text[:-1]) * _SIZE_SUFFIXES[text[-1]])
        return int(text)
    except ValueError as exc:
        raise SubmitError(f"bad size {text!r}") from exc


def _parse_input_files(text: str) -> dict[str, str]:
    """``logical = /path, logical2 = /path2`` or bare paths (basename used)."""
    mapping: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            logical, _, path = part.partition("=")
            mapping[logical.strip()] = path.strip()
        else:
            mapping[part.rsplit("/", 1)[-1]] = part
    return mapping


_KNOWN_KEYS = {
    "universe",
    "executable",
    "input_files",
    "requirements",
    "rank",
    "image_size",
    "heap_request",
    "owner",
}


@dataclass
class _State:
    universe: Universe = Universe.VANILLA
    executable: str = ""
    input_files: dict[str, str] = field(default_factory=dict)
    requirements: str = "TRUE"
    rank: str = "0"
    image_size: int = 16 * 2**20
    heap_request: int = 32 * 2**20
    owner: str = "nobody"


def parse_submit(
    source: str,
    cluster: int = 1,
    programs: dict | None = None,
) -> list[Job]:
    """Parse *source* and return the queued jobs.

    *programs* maps executable names to behaviour models
    (:class:`~repro.jvm.program.JavaProgram`); executables without an
    entry get a default no-op program.

    Raises :class:`SubmitError` with a line number on any malformed line,
    including syntactically invalid ``requirements``/``rank`` expressions
    -- submit-time rejection of bad ClassAds is itself an instance of
    Principle 4 (catch contract violations at the interface).
    """
    programs = programs or {}
    state = _State()
    jobs: list[Job] = []
    proc = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        lowered = line.lower()
        if lowered == "queue" or lowered.startswith("queue "):
            count_text = line[5:].strip() or "1"
            try:
                count = int(count_text)
            except ValueError as exc:
                raise SubmitError(f"line {lineno}: bad queue count {count_text!r}") from exc
            if count < 1:
                raise SubmitError(f"line {lineno}: queue count must be positive")
            if not state.executable:
                raise SubmitError(f"line {lineno}: queue before executable")
            for _ in range(count):
                jobs.append(_make_job(state, cluster, proc, programs))
                proc += 1
            continue
        if "=" not in line:
            raise SubmitError(f"line {lineno}: expected 'key = value', got {line!r}")
        key, _, value = line.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if key not in _KNOWN_KEYS:
            raise SubmitError(f"line {lineno}: unknown key {key!r}")
        try:
            _apply(state, key, value)
        except SubmitError as exc:
            raise SubmitError(f"line {lineno}: {exc}") from None
    if not jobs:
        raise SubmitError("no queue statement: nothing submitted")
    return jobs


def _apply(state: _State, key: str, value: str) -> None:
    if key == "universe":
        try:
            state.universe = Universe(value.lower())
        except ValueError:
            raise SubmitError(f"unknown universe {value!r}") from None
    elif key == "executable":
        if not value:
            raise SubmitError("empty executable")
        state.executable = value
    elif key == "input_files":
        state.input_files = _parse_input_files(value)
    elif key in ("requirements", "rank"):
        try:
            parse_classad(value)
        except (ParseError, Exception) as exc:
            if not isinstance(exc, ParseError):
                # LexError inherits from Exception but not ParseError.
                from repro.condor.classads.lexer import LexError

                if not isinstance(exc, LexError):
                    raise
            raise SubmitError(f"bad {key} expression: {exc}") from None
        setattr(state, key, value)
    elif key == "image_size":
        state.image_size = _parse_size(value)
    elif key == "heap_request":
        state.heap_request = _parse_size(value)
    elif key == "owner":
        state.owner = value


def _make_job(state: _State, cluster: int, proc: int, programs: dict) -> Job:
    program = programs.get(state.executable)
    return Job(
        job_id=f"{cluster}.{proc}",
        owner=state.owner,
        universe=state.universe,
        image=ProgramImage(state.executable, program=program),
        input_files=dict(state.input_files),
        requirements=state.requirements,
        rank=state.rank,
        image_size=state.image_size,
        heap_request=state.heap_request,
    )
