"""Jobs, universes, and the job state machine (paper §2.1).

A job carries everything the schedd keeps in persistent storage: the
submit description, the program image and input files, the universe, and
the history of execution attempts.  The attempt history is what the
paper's §5 "chronic failure avoidance" extension consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.condor.classads import ClassAd
from repro.core.result import ResultFile
from repro.core.scope import ErrorScope

__all__ = [
    "ExecutionAttempt",
    "Job",
    "JobState",
    "ProgramImage",
    "Universe",
]


class Universe(enum.Enum):
    """Execution environments (§2.1): each packages environmental features."""

    STANDARD = "standard"
    VANILLA = "vanilla"
    JAVA = "java"
    PVM = "pvm"


class JobState(enum.Enum):
    """The schedd's view of a job."""

    IDLE = "idle"
    MATCHED = "matched"
    RUNNING = "running"
    COMPLETED = "completed"
    HELD = "held"  # unexecutable: returned to the user (job scope)
    REMOVED = "removed"


@dataclass
class ProgramImage:
    """The executable the shadow ships to the starter.

    *program* is an opaque behaviour model interpreted by the execution
    universe (for JAVA, a :class:`repro.jvm.program.JavaProgram`).
    *corrupt* marks a damaged image: the JVM will fail to load it with a
    ``ClassFormatError`` -- job scope (Figure 4, last row).
    """

    name: str
    content: bytes = b"\xca\xfe\xba\xbe"  # a classfile, naturally
    program: Any = None
    corrupt: bool = False

    def serialized(self) -> bytes:
        if self.corrupt:
            return b"\x00\x00" + self.content[2:]
        return self.content


@dataclass
class ExecutionAttempt:
    """One try at running the job somewhere."""

    site: str
    started: float
    ended: float = -1.0
    result: ResultFile | None = None
    error_scope: ErrorScope | None = None
    error_name: str = ""
    #: Ground truth recorded by the fault injector (None = clean run);
    #: never consulted by the daemons -- only by the principle auditor.
    truth_scope: ErrorScope | None = None

    @property
    def succeeded(self) -> bool:
        return self.result is not None and self.result.is_program_result


class Job:
    """One submitted job and its full lifecycle record."""

    def __init__(
        self,
        job_id: str,
        owner: str,
        universe: Universe = Universe.JAVA,
        image: ProgramImage | None = None,
        input_files: dict[str, str] | None = None,
        requirements: str = "TRUE",
        rank: str = "0",
        image_size: int = 16 * 2**20,
        heap_request: int = 32 * 2**20,
    ):
        self.job_id = job_id
        self.owner = owner
        self.universe = universe
        self.image = image if image is not None else ProgramImage(name=f"{job_id}.class")
        #: logical name -> path on the submit machine's home file system
        self.input_files = dict(input_files or {})
        self.requirements = requirements
        self.rank = rank
        self.image_size = image_size
        self.heap_request = heap_request
        self.state = JobState.IDLE
        self.submitted_at = 0.0
        self.attempts: list[ExecutionAttempt] = []
        self.final_result: ResultFile | None = None
        self.hold_reason: str = ""
        #: What a clean run of this program would deliver (set by the
        #: harness, which knows the program model).  Consulted only by the
        #: auditor's ground-truth comparison, never by the daemons.
        self.expected_result: ResultFile | None = None
        #: Standard Universe: last committed checkpoint (steps completed);
        #: the shadow updates this from CheckpointNotice messages.
        self.checkpoint: int = 0
        #: Total steps executed across all attempts (re-executed steps
        #: count again) -- the checkpointing ablation's waste metric.
        self.steps_executed: int = 0

    # -- state transitions (schedd-owned) ---------------------------------
    def set_state(self, state: JobState) -> None:
        self.state = state

    @property
    def is_terminal(self) -> bool:
        return self.state in (JobState.COMPLETED, JobState.HELD, JobState.REMOVED)

    @property
    def attempt_count(self) -> int:
        return len(self.attempts)

    def failed_sites(self) -> list[str]:
        """Sites where attempts ended in environmental errors."""
        return [
            a.site
            for a in self.attempts
            if a.error_scope is not None and not a.error_scope.within_program_contract
        ]

    # -- matchmaking ----------------------------------------------------------
    def to_classad(self) -> ClassAd:
        """The job ad the schedd forwards to the matchmaker."""
        ad = ClassAd(
            {
                "jobid": self.job_id,
                "owner": self.owner,
                "universe": self.universe.value,
                "imagesize": self.image_size // 2**20,  # MB, as Condor does
                "heaprequest": self.heap_request // 2**20,
                "attempts": self.attempt_count,
            }
        )
        ad.set_expr("requirements", self.requirements)
        ad.set_expr("rank", self.rank)
        return ad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.job_id} {self.universe.value} {self.state.value}>"
