"""Pool assembly: wire a whole Condor pool over the simulation substrate.

A :class:`Pool` owns the simulator, the network, the submit machine with
its schedd and home file system, the central manager, and any number of
execution machines with startds.  It also owns the Figure-3
:class:`~repro.core.propagation.ManagementChain` into which the daemons
record error journeys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.matchmaker import Matchmaker
from repro.condor.daemons.schedd import Schedd
from repro.condor.daemons.startd import Startd
from repro.condor.job import Job
from repro.core.propagation import ManagementChain, ScopeManager
from repro.core.scope import ErrorScope
from repro.obs.bus import ambient_bus
from repro.remoteio.server import SyncFsAdapter
from repro.sim.engine import Simulator
from repro.sim.filesystem import LocalFileSystem
from repro.sim.machine import JavaInstallation, Machine, OwnerPolicy
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

__all__ = ["Pool", "PoolConfig", "figure3_chain"]


def figure3_chain(federated: bool = False) -> ManagementChain:
    """The Java Universe management chain of Figure 3.

    With *federated*, the schedd is grid-aware: it also manages
    POOL-scope errors (a dead pool is masked by flocking the job to
    another one), and only GRID scope -- every pool gone -- reaches the
    user.  A solitary pool keeps the paper's original ladder, where POOL
    scope is already the user's problem.
    """
    schedd_scopes = {ErrorScope.LOCAL_RESOURCE, ErrorScope.JOB}
    user_scopes = {ErrorScope.POOL, ErrorScope.GRID}
    if federated:
        schedd_scopes = schedd_scopes | {ErrorScope.POOL}
        user_scopes = {ErrorScope.GRID}
    return ManagementChain(
        [
            ScopeManager("program", {ErrorScope.FILE, ErrorScope.FUNCTION}),
            ScopeManager("wrapper", {ErrorScope.PROGRAM, ErrorScope.PROCESS}),
            ScopeManager("starter", {ErrorScope.VIRTUAL_MACHINE, ErrorScope.CLUSTER}),
            ScopeManager("shadow", {ErrorScope.REMOTE_RESOURCE}),
            ScopeManager("schedd", schedd_scopes),
            ScopeManager("user", user_scopes),
        ]
    )


@dataclass
class PoolConfig:
    """Shape of the pool to build."""

    n_machines: int = 4
    machine_memory: int = 256 * 2**20
    machine_scratch: int = 10**9
    cpu_speeds: list[float] = field(default_factory=list)  # default: all 1.0
    seed: int = 0
    condor: CondorConfig = field(default_factory=CondorConfig)
    submit_host: str = "submit"
    central_host: str = "central"
    #: execution-machine name prefix; a federation gives each pool its
    #: own prefix so machine (= host) names stay globally unique
    machine_prefix: str = "exec"
    home_capacity: int = 10**9
    network_latency: float = 0.001
    #: None = local home directory; "hard"/"soft" = NFS-mounted home with
    #: that mount mode (§5's dilemma, surfaced through every shadow)
    home_nfs_mode: str | None = None
    home_nfs_soft_timeout: float = 30.0
    home_nfs_retry_interval: float = 1.0


class Pool:
    """A complete simulated Condor pool."""

    def __init__(
        self,
        config: PoolConfig | None = None,
        sim: Simulator | None = None,
        net: Network | None = None,
        chain: ManagementChain | None = None,
        rngs: RngRegistry | None = None,
    ):
        """Build a pool, normally self-contained.

        A federation (:class:`~repro.condor.grid.Grid`) passes a shared
        *sim*, *net*, *chain* and *rngs* so several pools live on one
        simulated substrate and error journeys share one ladder.
        """
        self.config = config or PoolConfig()
        condor = self.config.condor
        self.sim = sim if sim is not None else Simulator()
        self.rngs = rngs if rngs is not None else RngRegistry(self.config.seed)
        self.net = net if net is not None else Network(
            self.sim,
            default_latency=self.config.network_latency,
            rng=self.rngs.stream("network.loss"),
        )
        self.chain = chain if chain is not None else figure3_chain()
        # Telemetry: attach the ambient bus (an ObservationSession's, if
        # one is active; otherwise a fresh inert one).  The simulator and
        # the management chain feed it by duck typing; the daemons reach
        # it through ``self.sim.telemetry``.
        self.bus = ambient_bus()
        self.sim.telemetry = self.bus
        self.chain.bus = self.bus
        if self.bus.active:
            self.bus.emit(
                self.sim.now,
                "daemon",
                "pool_created",
                machines=self.config.n_machines,
                seed=self.config.seed,
                submit=self.config.submit_host,
            )
        # Submit side.
        self.net.register_host(self.config.submit_host)
        self.home_fs = LocalFileSystem("home", capacity=self.config.home_capacity, sim=self.sim)
        self.home_fs.mkdir("/home/user", parents=True)
        if self.config.home_nfs_mode is None:
            self.home_backend = SyncFsAdapter(self.home_fs)
        else:
            from repro.sim.filesystem import NfsClient

            self.home_backend = NfsClient(
                self.sim,
                self.home_fs,
                mode=self.config.home_nfs_mode,
                soft_timeout=self.config.home_nfs_soft_timeout,
                retry_interval=self.config.home_nfs_retry_interval,
            )
        # Central manager.
        self.matchmaker = Matchmaker(self.sim, self.net, self.config.central_host, condor)
        self.schedd = Schedd(
            self.sim,
            self.net,
            self.config.submit_host,
            self.home_backend,
            self.config.central_host,
            condor,
            chain=self.chain,
        )
        self.schedds: dict[str, Schedd] = {self.config.submit_host: self.schedd}
        # Execution machines.
        self.machines: dict[str, Machine] = {}
        self.startds: dict[str, Startd] = {}
        #: machines that left (churn) and may rejoin under the same name
        self._parked: dict[str, Machine] = {}
        speeds = self.config.cpu_speeds or [1.0] * self.config.n_machines
        for i in range(self.config.n_machines):
            self.add_machine(
                f"{self.config.machine_prefix}{i:03d}",
                cpu_speed=speeds[i % len(speeds)],
            )

    # -- construction -----------------------------------------------------------
    def add_machine(
        self,
        name: str,
        memory: int | None = None,
        cpu_speed: float = 1.0,
        java: JavaInstallation | None = None,
        policy: OwnerPolicy | None = None,
        slots: int = 1,
    ) -> Machine:
        """Add one execution machine (and its startd) to the pool."""
        machine = Machine(
            self.sim,
            name,
            memory=memory if memory is not None else self.config.machine_memory,
            cpu_speed=cpu_speed,
            scratch_capacity=self.config.machine_scratch,
            java=java,
            policy=policy,
            slots=slots,
        )
        self.machines[name] = machine
        self.startds[name] = Startd(
            self.sim, self.net, machine, self.config.central_host, self.config.condor
        )
        return machine

    # -- machine churn ----------------------------------------------------------
    def remove_machine(self, name: str, graceful: bool = True) -> Machine:
        """One machine leaves the pool mid-run.

        *graceful* leave: the startd evicts its visiting jobs (explicit
        remote-resource eviction errors; the jobs retry elsewhere),
        retracts its ads at the matchmaker, and stops listening.
        Crash-leave (``graceful=False``): the machine loses power --
        every local process dies, the host drops off the network, and a
        claimed machine's shadow surfaces an explicit REMOTE_RESOURCE
        ``ClaimLost`` error at the schedd (never an implicit loss).

        Either way every schedd forgets the site's avoidance record
        (the strike tables must not grow without bound under churn) and
        the machine is parked for a possible :meth:`rejoin_machine`.
        """
        machine = self.machines.pop(name)
        startd = self.startds.pop(name)
        if graceful:
            startd.shutdown(graceful=True)
            machine.online = False
        else:
            machine.crash()
            self.net.set_host_down(name)
            startd.shutdown(graceful=False)
        for schedd in self.schedds.values():
            schedd.forget_site(name)
        self._parked[name] = machine
        if self.bus.active:
            self.bus.emit(
                self.sim.now, "daemon", "machine_leave",
                machine=name, graceful=graceful,
            )
        return machine

    def rejoin_machine(self, name: str) -> Machine:
        """A previously removed machine comes back under the same name.

        The parked :class:`~repro.sim.machine.Machine` object returns
        with its configuration intact -- including a broken Java
        installation, so a black hole that churns is still a black hole
        until someone repairs it -- and a fresh startd takes over the
        (freed) listener port.
        """
        machine = self._parked.pop(name)
        machine.boot()
        self.net.set_host_down(name, down=False)
        self.machines[name] = machine
        self.startds[name] = Startd(
            self.sim, self.net, machine, self.config.central_host, self.config.condor
        )
        if self.bus.active:
            self.bus.emit(self.sim.now, "daemon", "machine_join", machine=name)
        return machine

    def add_schedd(self, submit_host: str, home_capacity: int | None = None) -> Schedd:
        """Add another submission site (its own schedd and home file system).

        A "community of computers" (§2.1) usually has many submitters; the
        matchmaker arbitrates between them (fair share).
        """
        if submit_host in self.schedds:
            raise ValueError(f"schedd already exists on {submit_host}")
        self.net.register_host(submit_host)
        home_fs = LocalFileSystem(
            f"home:{submit_host}",
            capacity=home_capacity if home_capacity is not None else self.config.home_capacity,
            sim=self.sim,
        )
        home_fs.mkdir("/home/user", parents=True)
        schedd = Schedd(
            self.sim,
            self.net,
            submit_host,
            SyncFsAdapter(home_fs),
            self.config.central_host,
            self.config.condor,
            chain=self.chain,
        )
        schedd.home_fs_local = home_fs  # handy for tests/workloads
        self.schedds[submit_host] = schedd
        return schedd

    # -- operation ------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Submit *job* to the pool's schedd."""
        self.schedd.submit(job)

    def run(self, until: float) -> float:
        """Advance the simulation to time *until*."""
        return self.sim.run(until=until)

    def submit_at(self, job: Job, when: float) -> None:
        """Schedule *job* for submission at simulated time *when*."""
        self.sim.call_at(when, lambda: self.schedd.submit(job))

    def run_until_done(
        self,
        max_time: float = 100_000.0,
        check_every: int = 256,
        expected_jobs: int | None = None,
    ) -> float:
        """Run until every job is terminal (or *max_time* passes).

        With staggered submissions (:meth:`submit_at`), pass
        *expected_jobs* so the loop does not stop before late arrivals
        enter the queue.  The daemons' periodic loops keep the event queue
        alive forever, so completion is detected by polling the schedd
        between event batches.
        """
        steps = 0
        while self.sim.now < max_time:
            if steps % check_every == 0:
                arrived = sum(len(s.jobs) for s in self.schedds.values())
                if (
                    arrived > 0
                    and (expected_jobs is None or arrived >= expected_jobs)
                    and all(s.all_terminal() for s in self.schedds.values())
                ):
                    break
            if not self.sim.step():
                break
            steps += 1
        return self.sim.now

    # -- introspection ----------------------------------------------------------
    @property
    def parked(self) -> dict[str, Machine]:
        """Machines that left (churn) and have not rejoined yet."""
        return self._parked

    @property
    def userlog(self):
        return self.schedd.userlog

    @property
    def trace(self):
        return self.chain.trace

    def job(self, job_id: str) -> Job:
        return self.schedd.jobs[job_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Pool machines={len(self.machines)} jobs={len(self.schedd.jobs)} "
            f"t={self.sim.now:.1f}>"
        )
