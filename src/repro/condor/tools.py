"""Operator-facing views of a pool: the condor_status / condor_q analogues.

Pure rendering over live pool state; used by the examples and handy in
interactive exploration.
"""

from __future__ import annotations

from repro.condor.job import JobState
from repro.harness.report import Table

__all__ = [
    "condor_history",
    "condor_q",
    "condor_status",
    "error_scope_report",
    "timeline",
]


def condor_status(pool) -> str:
    """One row per slot: the startd's current advertisements."""
    table = Table(
        ["name", "state", "memory(MB)", "cpu", "java", "claims", "rejections"],
        title=f"condor_status @ t={pool.sim.now:.1f}",
    )
    for name in sorted(pool.startds):
        startd = pool.startds[name]
        machine = pool.machines[name]
        for slot in range(machine.slots):
            if not machine.online:
                state = "offline"
            elif startd.slot_claimed[slot]:
                state = "claimed"
            else:
                state = "unclaimed"
            table.add_row([
                startd.slot_name(slot),
                state,
                machine.memory_total // machine.slots // 2**20,
                machine.cpu_speed,
                startd.java_advertised,
                startd.claims_granted,
                startd.claims_rejected,
            ])
    return table.render()


def condor_q(pool) -> str:
    """One row per job in the schedd's queue."""
    table = Table(
        ["id", "owner", "universe", "state", "attempts", "result / reason"],
        title=f"condor_q @ t={pool.sim.now:.1f}",
    )
    for schedd in pool.schedds.values():
        for job_id in sorted(schedd.jobs):
            job = schedd.jobs[job_id]
            if job.state is JobState.COMPLETED:
                outcome = str(job.final_result)
            elif job.state is JobState.HELD:
                outcome = job.hold_reason
            else:
                outcome = "-"
            table.add_row([
                job.job_id, job.owner, job.universe.value, job.state.value,
                job.attempt_count, outcome,
            ])
    return table.render()


def condor_history(pool) -> str:
    """One row per execution attempt, across all schedds."""
    table = Table(
        ["job", "attempt", "site", "started", "ended", "outcome"],
        title=f"condor_history @ t={pool.sim.now:.1f}",
    )
    for schedd in pool.schedds.values():
        for job_id in sorted(schedd.jobs):
            job = schedd.jobs[job_id]
            for i, attempt in enumerate(job.attempts):
                if attempt.error_scope is not None:
                    outcome = f"{attempt.error_name} ({attempt.error_scope})"
                elif attempt.result is not None:
                    outcome = str(attempt.result)
                else:
                    outcome = "running" if attempt.ended < 0 else "-"
                table.add_row([
                    job.job_id, i + 1, attempt.site,
                    round(attempt.started, 1),
                    round(attempt.ended, 1) if attempt.ended >= 0 else "-",
                    outcome,
                ])
    return table.render()


def timeline(pool, width: int = 64) -> str:
    """An ASCII Gantt chart of every attempt (# = result, x = error).

    One row per job; time scaled to *width* columns across the
    simulation's span.
    """
    attempts = [
        (job, a)
        for schedd in pool.schedds.values()
        for job in schedd.jobs.values()
        for a in job.attempts
    ]
    if not attempts:
        return "(no attempts recorded)"
    horizon = max(
        (a.ended if a.ended >= 0 else pool.sim.now) for _, a in attempts
    )
    horizon = max(horizon, 1e-9)
    lines = [f"timeline 0 .. {horizon:.1f}s  (each column ~{horizon / width:.1f}s)"]
    label_width = max(len(j.job_id) for j, _ in attempts)
    for schedd in pool.schedds.values():
        for job_id in sorted(schedd.jobs):
            job = schedd.jobs[job_id]
            row = [" "] * width
            for attempt in job.attempts:
                end = attempt.ended if attempt.ended >= 0 else pool.sim.now
                lo = min(width - 1, int(attempt.started / horizon * width))
                hi = min(width - 1, max(lo, int(end / horizon * width) - 1))
                mark = "x" if attempt.error_scope is not None else "#"
                for col in range(lo, hi + 1):
                    row[col] = mark
            lines.append(f"{job.job_id.ljust(label_width)} |{''.join(row)}|")
    return "\n".join(lines)


def error_scope_report(pool) -> str:
    """Per-scope counts of environmental errors seen across all attempts."""
    counts: dict[str, int] = {}
    for schedd in pool.schedds.values():
        for job in schedd.jobs.values():
            for attempt in job.attempts:
                if attempt.error_scope is not None:
                    key = f"{attempt.error_scope} ({attempt.error_name})"
                    counts[key] = counts.get(key, 0) + 1
    table = Table(["scope (error)", "occurrences"],
                  title=f"error scopes observed @ t={pool.sim.now:.1f}")
    for key in sorted(counts):
        table.add_row([key, counts[key]])
    if not counts:
        table.add_row(["(none)", 0])
    return table.render()
