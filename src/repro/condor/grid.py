"""The grid: a pool of pools, plus the machine churn that makes it earn
its keep.

ROADMAP item 4 and the paper's §5: a single pool is the paper's unit of
analysis, but the *grid* is a community of pools whose schedds flock
work to each other when their own pool is saturated or sick.  This
module assembles several :class:`~repro.condor.pool.Pool` instances on
one shared simulator/network/management-chain substrate, wires every
schedd to every other pool's matchmaker, and exposes a pool-compatible
surface (``machines``, ``schedd``, ``home_fs``, ``net``, ...) so the
fault catalogue and the metric collectors work against a federation
unchanged.

:class:`ChurnGenerator` drives the other half of the robustness story:
machines leaving (gracefully or by crash) and rejoining mid-run, at
deterministic RNG-stream-driven times, against either a Pool or a Grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.condor.daemons.config import CondorConfig
from repro.condor.daemons.schedd import Schedd
from repro.condor.job import Job
from repro.condor.pool import Pool, PoolConfig, figure3_chain
from repro.obs.bus import ambient_bus
from repro.sim.engine import Simulator
from repro.sim.machine import Machine
from repro.sim.network import Network
from repro.sim.rng import RngRegistry

__all__ = ["ChurnGenerator", "Grid", "GridConfig", "GridPoolSpec"]


@dataclass
class GridPoolSpec:
    """Shape of one member pool."""

    name: str
    n_machines: int = 4
    cpu_speeds: list[float] = field(default_factory=list)


@dataclass
class GridConfig:
    """Shape of the federation.  The first pool is *home*: jobs enter
    there and overflow outward."""

    pools: tuple[GridPoolSpec, ...] = (
        GridPoolSpec("a", n_machines=2),
        GridPoolSpec("b", n_machines=4),
    )
    seed: int = 0
    condor: CondorConfig = field(default_factory=CondorConfig)
    network_latency: float = 0.001
    #: wire every schedd to every other pool's matchmaker
    flocking: bool = True
    home_capacity: int = 10**9


class Grid:
    """Several pools on one simulated substrate, flocked together."""

    def __init__(self, config: GridConfig | None = None):
        self.config = config or GridConfig()
        if not self.config.pools:
            raise ValueError("a grid needs at least one pool")
        self.sim = Simulator()
        self.rngs = RngRegistry(self.config.seed)
        self.net = Network(
            self.sim,
            default_latency=self.config.network_latency,
            rng=self.rngs.stream("network.loss"),
        )
        self.chain = figure3_chain(federated=self.config.flocking)
        self.bus = ambient_bus()
        self.sim.telemetry = self.bus
        self.chain.bus = self.bus
        self.pools: dict[str, Pool] = {}
        for spec in self.config.pools:
            pool_config = PoolConfig(
                n_machines=spec.n_machines,
                cpu_speeds=list(spec.cpu_speeds),
                seed=self.config.seed,
                condor=self.config.condor,
                submit_host=f"submit-{spec.name}",
                central_host=f"central-{spec.name}",
                machine_prefix=f"{spec.name}-exec",
                home_capacity=self.config.home_capacity,
                network_latency=self.config.network_latency,
            )
            self.pools[spec.name] = Pool(
                pool_config,
                sim=self.sim,
                net=self.net,
                chain=self.chain,
                rngs=self.rngs,
            )
        self.home = self.pools[self.config.pools[0].name]
        if self.config.flocking:
            for name, pool in self.pools.items():
                for other_name, other in self.pools.items():
                    if other_name != name:
                        pool.schedd.add_flock_target(other.config.central_host)
        if self.bus.active:
            self.bus.emit(
                self.sim.now, "daemon", "grid_created",
                pools=len(self.pools), seed=self.config.seed,
                flocking=self.config.flocking,
            )

    # -- pool-compatible surface (faults and metrics see one big pool) ---------
    @property
    def machines(self) -> dict[str, Machine]:
        merged: dict[str, Machine] = {}
        for pool in self.pools.values():
            merged.update(pool.machines)
        return merged

    @property
    def startds(self) -> dict:
        merged: dict = {}
        for pool in self.pools.values():
            merged.update(pool.startds)
        return merged

    @property
    def schedds(self) -> dict[str, Schedd]:
        merged: dict[str, Schedd] = {}
        for pool in self.pools.values():
            merged.update(pool.schedds)
        return merged

    @property
    def parked(self) -> dict[str, Machine]:
        merged: dict[str, Machine] = {}
        for pool in self.pools.values():
            merged.update(pool.parked)
        return merged

    @property
    def schedd(self) -> Schedd:
        return self.home.schedd

    @property
    def home_fs(self):
        return self.home.home_fs

    @property
    def userlog(self):
        return self.home.schedd.userlog

    @property
    def trace(self):
        return self.chain.trace

    def job(self, job_id: str) -> Job:
        return self.home.schedd.jobs[job_id]

    def pool_of(self, machine_name: str) -> Pool:
        """The member pool owning *machine_name* (live or parked)."""
        for pool in self.pools.values():
            if machine_name in pool.machines or machine_name in pool._parked:
                return pool
        raise KeyError(machine_name)

    # -- churn (delegated to the owning pool) -----------------------------------
    def remove_machine(self, name: str, graceful: bool = True) -> Machine:
        return self.pool_of(name).remove_machine(name, graceful=graceful)

    def rejoin_machine(self, name: str) -> Machine:
        return self.pool_of(name).rejoin_machine(name)

    # -- operation --------------------------------------------------------------
    def submit(self, job: Job) -> None:
        """Submit *job* to the home pool's schedd."""
        self.home.submit(job)

    def submit_at(self, job: Job, when: float) -> None:
        self.sim.call_at(when, lambda: self.home.schedd.submit(job))

    def run(self, until: float) -> float:
        return self.sim.run(until=until)

    def run_until_done(
        self,
        max_time: float = 100_000.0,
        check_every: int = 256,
        expected_jobs: int | None = None,
    ) -> float:
        """Run until every job in every member pool is terminal."""
        steps = 0
        while self.sim.now < max_time:
            if steps % check_every == 0:
                schedds = [s for pool in self.pools.values() for s in pool.schedds.values()]
                arrived = sum(len(s.jobs) for s in schedds)
                if (
                    arrived > 0
                    and (expected_jobs is None or arrived >= expected_jobs)
                    and all(s.all_terminal() for s in schedds)
                ):
                    break
            if not self.sim.step():
                break
            steps += 1
        return self.sim.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Grid pools={len(self.pools)} machines={len(self.machines)} t={self.sim.now:.1f}>"


class ChurnGenerator:
    """Deterministic machine churn against a Pool or a Grid.

    Draws leave times, leave styles (graceful vs crash) and downtimes
    from one dedicated RNG stream, so a seeded run churns identically
    every time (DESIGN §6).  Machines below ``min_alive`` are never
    removed -- churn degrades the pool, it must not empty it.
    """

    def __init__(
        self,
        pool,
        rng,
        machines: tuple[str, ...] | None = None,
        mean_interval: float = 120.0,
        mean_downtime: float = 90.0,
        graceful_fraction: float = 0.5,
        start: float = 0.0,
        stop: float | None = None,
        min_alive: int = 1,
    ):
        self.pool = pool
        self.rng = rng
        self.eligible = tuple(sorted(machines if machines is not None else pool.machines))
        self.mean_interval = mean_interval
        self.mean_downtime = mean_downtime
        self.graceful_fraction = graceful_fraction
        self.start = start
        self.stop = stop
        self.min_alive = min_alive
        self.leaves = 0
        self.joins = 0
        self.crashes = 0
        self._proc = pool.sim.spawn(self._run(), name="churn-generator")
        self._proc.defuse()

    def _run(self):
        sim = self.pool.sim
        if self.start > 0:
            yield sim.timeout(self.start)
        while self.stop is None or sim.now < self.stop:
            yield sim.timeout(self.rng.expovariate(1.0 / self.mean_interval))
            if self.stop is not None and sim.now >= self.stop:
                return
            live = self.pool.machines
            candidates = [name for name in self.eligible if name in live]
            if len(live) <= self.min_alive or not candidates:
                continue
            name = self.rng.choice(candidates)
            graceful = self.rng.random() < self.graceful_fraction
            downtime = self.rng.expovariate(1.0 / self.mean_downtime)
            self.pool.remove_machine(name, graceful=graceful)
            self.leaves += 1
            if not graceful:
                self.crashes += 1
            rejoiner = sim.spawn(
                self._rejoin_later(name, downtime), name=f"churn-rejoin:{name}"
            )
            rejoiner.defuse()

    def _rejoin_later(self, name: str, downtime: float):
        yield self.pool.sim.timeout(downtime)
        self.pool.rejoin_machine(name)
        self.joins += 1
