"""The Condor kernel substrate (paper §2.1, Figure 1).

A protocol-faithful simulation of the core Condor components:

- :mod:`repro.condor.classads` -- the ClassAd matchmaking language;
- :mod:`repro.condor.job` -- jobs, universes, and the job state machine;
- :mod:`repro.condor.protocols` -- the typed messages of the matchmaking,
  claiming, and shadow/starter control protocols;
- :mod:`repro.condor.daemons` -- schedd, startd, matchmaker, shadow and
  starter;
- :mod:`repro.condor.pool` -- pool assembly and simulation drivers;
- :mod:`repro.condor.userlog` -- the per-job user event log.
"""

from repro.condor.job import Job, JobState, ProgramImage, Universe
from repro.condor.pool import Pool, PoolConfig, figure3_chain
from repro.condor.submit import SubmitError, parse_submit

__all__ = [
    "Job",
    "JobState",
    "Pool",
    "PoolConfig",
    "ProgramImage",
    "SubmitError",
    "Universe",
    "figure3_chain",
    "parse_submit",
]
