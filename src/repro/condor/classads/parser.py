"""Recursive-descent parser for ClassAd expressions.

Precedence, loosest to tightest::

    ||
    &&
    == != < <= > >= =?= =!=
    + -
    * / %
    unary - + !
    atoms: literals, names, MY.x, TARGET.x, f(args), ( expr )
"""

from __future__ import annotations

from time import perf_counter_ns

from repro.condor.classads.expr import (
    AttrRef,
    BinOp,
    ClassAdValue,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    V_ERROR,
    V_FALSE,
    V_TRUE,
    V_UNDEFINED,
)
from repro.condor.classads.lexer import Token, tokenize

__all__ = ["ParseError", "parse"]

#: Wall-time hook set by ``repro.obs.profile.install_wall``.
WALL_PROFILE = None

_KEYWORD_LITERALS = {
    "true": Literal(V_TRUE),
    "false": Literal(V_FALSE),
    "undefined": Literal(V_UNDEFINED),
    "error": Literal(V_ERROR),
}

_QUALIFIERS = {"my", "target", "other"}


class ParseError(Exception):
    """Structurally invalid ClassAd expression."""


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.peek()
        if tok.kind != kind:
            raise ParseError(f"expected {kind} at {tok.pos}, found {tok.kind} {tok.text!r}")
        return self.advance()

    def match_op(self, *ops: str) -> Token | None:
        tok = self.peek()
        if tok.kind == "OP" and tok.text in ops:
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------
    def parse_expression(self) -> Expr:
        return self.parse_or()

    def parse_or(self) -> Expr:
        node = self.parse_and()
        while self.match_op("||"):
            node = BinOp("||", node, self.parse_and())
        return node

    def parse_and(self) -> Expr:
        node = self.parse_comparison()
        while self.match_op("&&"):
            node = BinOp("&&", node, self.parse_comparison())
        return node

    def parse_comparison(self) -> Expr:
        node = self.parse_additive()
        while True:
            tok = self.match_op("==", "!=", "<=", ">=", "<", ">", "=?=", "=!=")
            if tok is None:
                return node
            node = BinOp(tok.text, node, self.parse_additive())

    def parse_additive(self) -> Expr:
        node = self.parse_multiplicative()
        while True:
            tok = self.match_op("+", "-")
            if tok is None:
                return node
            node = BinOp(tok.text, node, self.parse_multiplicative())

    def parse_multiplicative(self) -> Expr:
        node = self.parse_unary()
        while True:
            tok = self.match_op("*", "/", "%")
            if tok is None:
                return node
            node = BinOp(tok.text, node, self.parse_unary())

    def parse_unary(self) -> Expr:
        tok = self.match_op("-", "+", "!")
        if tok is not None:
            return UnaryOp(tok.text, self.parse_unary())
        return self.parse_atom()

    def parse_atom(self) -> Expr:
        tok = self.peek()
        if tok.kind == "INT":
            self.advance()
            return Literal(ClassAdValue.of(int(tok.text)))
        if tok.kind == "REAL":
            self.advance()
            return Literal(ClassAdValue.of(float(tok.text)))
        if tok.kind == "STRING":
            self.advance()
            return Literal(ClassAdValue.of(tok.text))
        if tok.kind == "LPAREN":
            self.advance()
            node = self.parse_expression()
            self.expect("RPAREN")
            return node
        if tok.kind == "NAME":
            return self.parse_name()
        raise ParseError(f"unexpected token {tok.kind} {tok.text!r} at {tok.pos}")

    def parse_name(self) -> Expr:
        tok = self.expect("NAME")
        lowered = tok.text.lower()
        if lowered in _KEYWORD_LITERALS:
            return _KEYWORD_LITERALS[lowered]
        # MY.attr / TARGET.attr / OTHER.attr
        if lowered in _QUALIFIERS and self.peek().kind == "DOT":
            self.advance()  # the dot
            attr = self.expect("NAME")
            qualifier = "target" if lowered == "other" else lowered
            return AttrRef(attr.text.lower(), qualifier)
        # function call
        if self.peek().kind == "LPAREN":
            self.advance()
            args: list[Expr] = []
            if self.peek().kind != "RPAREN":
                args.append(self.parse_expression())
                while self.peek().kind == "COMMA":
                    self.advance()
                    args.append(self.parse_expression())
            self.expect("RPAREN")
            return FuncCall(lowered, tuple(args))
        return AttrRef(lowered)


def parse(source: str) -> Expr:
    """Parse ClassAd expression *source* into an :class:`Expr`.

    Raises :class:`ParseError` (or :class:`~repro.condor.classads.lexer.LexError`)
    on malformed input.
    """
    wall = WALL_PROFILE
    if wall is None:
        return _parse(source)
    t0 = perf_counter_ns()
    try:
        return _parse(source)
    finally:
        wall.add("classads.parse", perf_counter_ns() - t0)


def _parse(source: str) -> Expr:
    parser = _Parser(tokenize(source))
    node = parser.parse_expression()
    parser.expect("EOF")
    return node
