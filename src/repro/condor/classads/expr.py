"""ClassAd values and expression AST with tri-state evaluation semantics.

ClassAd evaluation is total: no expression ever raises.  Conditions that
would be exceptions in other languages evaluate to the ``ERROR`` value,
and references to absent attributes evaluate to ``UNDEFINED``.  These two
values then propagate through operators under the classic ClassAd rules,
which is exactly what makes the language safe for matchmaking between
mutually-ignorant parties: a malformed ad poisons only its own match.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Any

__all__ = [
    "AttrRef",
    "BinOp",
    "ClassAdValue",
    "EvalContext",
    "Expr",
    "FuncCall",
    "Literal",
    "UnaryOp",
    "V_ERROR",
    "V_FALSE",
    "V_TRUE",
    "V_UNDEFINED",
    "ValueType",
]


class ValueType(enum.Enum):
    UNDEFINED = "undefined"
    ERROR = "error"
    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"
    STRING = "string"


@dataclass(frozen=True)
class ClassAdValue:
    """A typed ClassAd value."""

    type: ValueType
    payload: Any = None

    # -- constructors ----------------------------------------------------
    @staticmethod
    def of(py: Any) -> "ClassAdValue":
        """Lift a Python value into a ClassAd value."""
        if isinstance(py, ClassAdValue):
            return py
        if isinstance(py, bool):
            return V_TRUE if py else V_FALSE
        if isinstance(py, int):
            return ClassAdValue(ValueType.INTEGER, py)
        if isinstance(py, float):
            return ClassAdValue(ValueType.REAL, py)
        if isinstance(py, str):
            return ClassAdValue(ValueType.STRING, py)
        return V_ERROR

    # -- predicates ----------------------------------------------------------
    @property
    def is_undefined(self) -> bool:
        return self.type is ValueType.UNDEFINED

    @property
    def is_error(self) -> bool:
        return self.type is ValueType.ERROR

    @property
    def is_number(self) -> bool:
        return self.type in (ValueType.INTEGER, ValueType.REAL)

    @property
    def is_exceptional(self) -> bool:
        return self.type in (ValueType.UNDEFINED, ValueType.ERROR)

    # -- coercions --------------------------------------------------------
    def as_bool(self) -> "ClassAdValue":
        """Coerce to boolean (numbers: nonzero is true); else ERROR."""
        if self.type is ValueType.BOOLEAN:
            return self
        if self.is_number:
            return V_TRUE if self.payload != 0 else V_FALSE
        if self.is_exceptional:
            return self
        return V_ERROR

    def as_python(self) -> Any:
        """The underlying Python payload (None for UNDEFINED/ERROR)."""
        return self.payload

    def __str__(self) -> str:
        if self.type is ValueType.UNDEFINED:
            return "UNDEFINED"
        if self.type is ValueType.ERROR:
            return "ERROR"
        if self.type is ValueType.BOOLEAN:
            return "TRUE" if self.payload else "FALSE"
        if self.type is ValueType.STRING:
            return '"' + str(self.payload) + '"'
        return str(self.payload)


V_UNDEFINED = ClassAdValue(ValueType.UNDEFINED)
V_ERROR = ClassAdValue(ValueType.ERROR)
V_TRUE = ClassAdValue(ValueType.BOOLEAN, True)
V_FALSE = ClassAdValue(ValueType.BOOLEAN, False)


class EvalContext:
    """Evaluation context: the ``MY`` ad, the ``TARGET`` ad, and a guard
    against circular attribute references."""

    MAX_DEPTH = 64

    def __init__(self, my=None, target=None):
        self.my = my
        self.target = target
        self._in_progress: set[tuple[int, str]] = set()
        self.depth = 0

    def flipped(self) -> "EvalContext":
        """The same context from the other party's point of view."""
        return EvalContext(my=self.target, target=self.my)


class Expr:
    """Base class for expression nodes."""

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        raise NotImplementedError

    def external_refs(self) -> set[str]:
        """Names of attributes this expression reads (unqualified, lowered)."""
        return set()


@dataclass(frozen=True)
class Literal(Expr):
    value: ClassAdValue

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        return self.value

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class AttrRef(Expr):
    """An attribute reference, optionally qualified with MY/TARGET."""

    name: str  # stored lowercase; ClassAds are case-insensitive
    qualifier: str = ""  # "", "my", or "target"

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        if ctx.depth >= EvalContext.MAX_DEPTH:
            return V_ERROR
        if self.qualifier == "my":
            ads = [ctx.my]
        elif self.qualifier == "target":
            ads = [ctx.target]
        else:
            ads = [ctx.my, ctx.target]
        for ad in ads:
            if ad is None:
                continue
            expr = ad.lookup(self.name)
            if expr is None:
                continue
            key = (id(ad), self.name)
            if key in ctx._in_progress:
                return V_ERROR  # circular reference
            ctx._in_progress.add(key)
            ctx.depth += 1
            try:
                # Unqualified references inside the referenced ad resolve
                # in that ad's own frame.
                if ad is ctx.target:
                    sub = EvalContext(my=ctx.target, target=ctx.my)
                    sub._in_progress = ctx._in_progress
                    sub.depth = ctx.depth
                    return expr.eval(sub)
                return expr.eval(ctx)
            finally:
                ctx.depth -= 1
                ctx._in_progress.discard(key)
        return V_UNDEFINED

    def external_refs(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        prefix = f"{self.qualifier.upper()}." if self.qualifier else ""
        return prefix + self.name


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-", "+", "!"
    operand: Expr

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        val = self.operand.eval(ctx)
        if self.op == "!":
            val = val.as_bool()
            if val.is_exceptional:
                return val
            return V_FALSE if val.payload else V_TRUE
        if val.is_exceptional:
            return val
        if not val.is_number:
            return V_ERROR
        if self.op == "-":
            return ClassAdValue.of(-val.payload)
        return val

    def external_refs(self) -> set[str]:
        return self.operand.external_refs()

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


def _meta_equal(a: ClassAdValue, b: ClassAdValue) -> bool:
    """=?= semantics: same type AND same value; never UNDEFINED/ERROR."""
    if a.type is not b.type:
        # ints and reals with equal value are still meta-equal numbers
        if a.is_number and b.is_number:
            return float(a.payload) == float(b.payload)
        return False
    if a.type in (ValueType.UNDEFINED, ValueType.ERROR):
        return True
    return a.payload == b.payload


def _compare(op: str, a: ClassAdValue, b: ClassAdValue) -> ClassAdValue:
    if a.is_error or b.is_error:
        return V_ERROR
    if a.is_undefined or b.is_undefined:
        return V_UNDEFINED
    if a.is_number and b.is_number:
        x, y = a.payload, b.payload
    elif a.type is ValueType.STRING and b.type is ValueType.STRING:
        # == on strings is case-insensitive in classic ClassAds
        x, y = a.payload.lower(), b.payload.lower()
    elif a.type is ValueType.BOOLEAN and b.type is ValueType.BOOLEAN:
        x, y = a.payload, b.payload
    else:
        return V_ERROR
    result = {
        "==": x == y,
        "!=": x != y,
        "<": x < y,
        "<=": x <= y,
        ">": x > y,
        ">=": x >= y,
    }[op]
    return V_TRUE if result else V_FALSE


def _arith(op: str, a: ClassAdValue, b: ClassAdValue) -> ClassAdValue:
    if a.is_error or b.is_error:
        return V_ERROR
    if a.is_undefined or b.is_undefined:
        return V_UNDEFINED
    if op == "+" and a.type is ValueType.STRING and b.type is ValueType.STRING:
        return ClassAdValue.of(a.payload + b.payload)
    if not (a.is_number and b.is_number):
        return V_ERROR
    x, y = a.payload, b.payload
    try:
        if op == "+":
            return ClassAdValue.of(x + y)
        if op == "-":
            return ClassAdValue.of(x - y)
        if op == "*":
            return ClassAdValue.of(x * y)
        if op == "/":
            if isinstance(x, int) and isinstance(y, int):
                if y == 0:
                    return V_ERROR
                return ClassAdValue.of(int(x / y))  # C-style truncation
            if y == 0:
                return V_ERROR
            return ClassAdValue.of(x / y)
        if op == "%":
            if y == 0:
                return V_ERROR
            if isinstance(x, int) and isinstance(y, int):
                return ClassAdValue.of(int(math.fmod(x, y)))
            return ClassAdValue.of(math.fmod(x, y))
    except (OverflowError, ValueError):
        return V_ERROR
    return V_ERROR


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        op = self.op
        if op in ("&&", "||"):
            return self._logical(ctx)
        a = self.left.eval(ctx)
        b = self.right.eval(ctx)
        if op == "=?=":
            return V_TRUE if _meta_equal(a, b) else V_FALSE
        if op == "=!=":
            return V_FALSE if _meta_equal(a, b) else V_TRUE
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return _compare(op, a, b)
        return _arith(op, a, b)

    def _logical(self, ctx: EvalContext) -> ClassAdValue:
        a = self.left.eval(ctx).as_bool()
        # Short-circuit where the answer is already forced.
        if self.op == "&&" and a.type is ValueType.BOOLEAN and not a.payload:
            return V_FALSE
        if self.op == "||" and a.type is ValueType.BOOLEAN and a.payload:
            return V_TRUE
        b = self.right.eval(ctx).as_bool()
        if self.op == "&&":
            # FALSE dominates; then ERROR; then UNDEFINED.
            if b.type is ValueType.BOOLEAN and not b.payload:
                return V_FALSE
            if a.is_error or b.is_error:
                return V_ERROR
            if a.is_undefined or b.is_undefined:
                return V_UNDEFINED
            return V_TRUE
        # "||": TRUE dominates; then ERROR; then UNDEFINED.
        if b.type is ValueType.BOOLEAN and b.payload:
            return V_TRUE
        if a.is_error or b.is_error:
            return V_ERROR
        if a.is_undefined or b.is_undefined:
            return V_UNDEFINED
        return V_FALSE

    def external_refs(self) -> set[str]:
        return self.left.external_refs() | self.right.external_refs()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


def _fn_if_then_else(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 3:
        return V_ERROR
    cond = args[0].as_bool()
    if cond.is_exceptional:
        return cond
    return args[1] if cond.payload else args[2]


def _numeric_unary(fn):
    def call(args: list[ClassAdValue]) -> ClassAdValue:
        if len(args) != 1:
            return V_ERROR
        v = args[0]
        if v.is_exceptional:
            return v
        if not v.is_number:
            return V_ERROR
        return ClassAdValue.of(fn(v.payload))

    return call


def _string_unary(fn):
    def call(args: list[ClassAdValue]) -> ClassAdValue:
        if len(args) != 1:
            return V_ERROR
        v = args[0]
        if v.is_exceptional:
            return v
        if v.type is not ValueType.STRING:
            return V_ERROR
        return ClassAdValue.of(fn(v.payload))

    return call


def _fn_strcmp(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 2:
        return V_ERROR
    a, b = args
    for v in (a, b):
        if v.is_exceptional:
            return v
        if v.type is not ValueType.STRING:
            return V_ERROR
    x, y = a.payload, b.payload
    return ClassAdValue.of(0 if x == y else (-1 if x < y else 1))


def _fn_string_list_member(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 2:
        return V_ERROR
    item, lst = args
    for v in (item, lst):
        if v.is_exceptional:
            return v
        if v.type is not ValueType.STRING:
            return V_ERROR
    members = [m.strip().lower() for m in lst.payload.split(",")]
    return V_TRUE if item.payload.lower() in members else V_FALSE


def _fn_int(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 1:
        return V_ERROR
    v = args[0]
    if v.is_exceptional:
        return v
    try:
        if v.type is ValueType.STRING:
            return ClassAdValue.of(int(float(v.payload)))
        if v.is_number:
            return ClassAdValue.of(int(v.payload))
        if v.type is ValueType.BOOLEAN:
            return ClassAdValue.of(int(v.payload))
    except ValueError:
        return V_ERROR
    return V_ERROR


def _fn_real(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 1:
        return V_ERROR
    v = args[0]
    if v.is_exceptional:
        return v
    try:
        if v.type is ValueType.STRING:
            return ClassAdValue.of(float(v.payload))
        if v.is_number:
            return ClassAdValue.of(float(v.payload))
        if v.type is ValueType.BOOLEAN:
            return ClassAdValue.of(float(v.payload))
    except ValueError:
        return V_ERROR
    return V_ERROR


def _fn_strcat(args: list[ClassAdValue]) -> ClassAdValue:
    parts = []
    for v in args:
        if v.is_exceptional:
            return v
        converted = _fn_string([v])
        if converted.is_error:
            return V_ERROR
        parts.append(converted.payload)
    return ClassAdValue.of("".join(parts))


def _fn_substr(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) not in (2, 3):
        return V_ERROR
    s, start = args[0], args[1]
    for v in args:
        if v.is_exceptional:
            return v
    if s.type is not ValueType.STRING or start.type is not ValueType.INTEGER:
        return V_ERROR
    begin = start.payload
    if begin < 0:
        begin = max(0, len(s.payload) + begin)
    if len(args) == 3:
        if args[2].type is not ValueType.INTEGER:
            return V_ERROR
        length = args[2].payload
        if length < 0:
            return ClassAdValue.of(s.payload[begin:length])
        return ClassAdValue.of(s.payload[begin : begin + length])
    return ClassAdValue.of(s.payload[begin:])


def _extremum(pick):
    def call(args: list[ClassAdValue]) -> ClassAdValue:
        if not args:
            return V_ERROR
        best = None
        for v in args:
            if v.is_exceptional:
                return v
            if not v.is_number:
                return V_ERROR
            if best is None or pick(v.payload, best):
                best = v.payload
        return ClassAdValue.of(best)

    return call


def _fn_pow(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 2:
        return V_ERROR
    base, exponent = args
    for v in args:
        if v.is_exceptional:
            return v
        if not v.is_number:
            return V_ERROR
    try:
        result = base.payload ** exponent.payload
    except (OverflowError, ZeroDivisionError, ValueError):
        return V_ERROR
    if isinstance(result, complex):
        return V_ERROR
    return ClassAdValue.of(result)


def _fn_string(args: list[ClassAdValue]) -> ClassAdValue:
    if len(args) != 1:
        return V_ERROR
    v = args[0]
    if v.is_exceptional:
        return v
    if v.type is ValueType.STRING:
        return v
    if v.type is ValueType.BOOLEAN:
        return ClassAdValue.of("TRUE" if v.payload else "FALSE")
    return ClassAdValue.of(str(v.payload))


FUNCTIONS = {
    "ifthenelse": _fn_if_then_else,
    "isundefined": lambda args: (
        V_ERROR if len(args) != 1 else (V_TRUE if args[0].is_undefined else V_FALSE)
    ),
    "iserror": lambda args: (
        V_ERROR if len(args) != 1 else (V_TRUE if args[0].is_error else V_FALSE)
    ),
    "floor": _numeric_unary(lambda x: int(math.floor(x))),
    "ceiling": _numeric_unary(lambda x: int(math.ceil(x))),
    "round": _numeric_unary(lambda x: int(round(x))),
    "abs": _numeric_unary(abs),
    "toupper": _string_unary(str.upper),
    "tolower": _string_unary(str.lower),
    "size": _string_unary(len),
    "strcmp": _fn_strcmp,
    "stringlistmember": _fn_string_list_member,
    "int": _fn_int,
    "real": _fn_real,
    "string": _fn_string,
    "strcat": _fn_strcat,
    "substr": _fn_substr,
    "min": _extremum(lambda a, b: a < b),
    "max": _extremum(lambda a, b: a > b),
    "pow": _fn_pow,
}


@dataclass(frozen=True)
class FuncCall(Expr):
    name: str  # stored lowercase
    args: tuple[Expr, ...]

    def eval(self, ctx: EvalContext) -> ClassAdValue:
        fn = FUNCTIONS.get(self.name)
        if fn is None:
            return V_ERROR
        return fn([arg.eval(ctx) for arg in self.args])

    def external_refs(self) -> set[str]:
        refs: set[str] = set()
        for arg in self.args:
            refs |= arg.external_refs()
        return refs

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"
