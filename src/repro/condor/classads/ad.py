"""ClassAds and two-party matching.

    "This process collects information about all participants, and
    notifies schedds and startds of compatible partners." (§2.1)

A :class:`ClassAd` is a case-insensitive mapping from attribute names to
expressions.  Matching is symmetric: ads A and B match when A's
``Requirements`` evaluates to TRUE with ``MY = A, TARGET = B`` *and* B's
``Requirements`` evaluates to TRUE with ``MY = B, TARGET = A``.  ``Rank``
orders the compatible partners.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Iterator

from repro.condor.classads.expr import (
    ClassAdValue,
    EvalContext,
    Expr,
    Literal,
    ValueType,
)
from repro.condor.classads.parser import parse

__all__ = ["ClassAd", "match", "rank", "symmetric_match"]

#: Wall-time hook set by ``repro.obs.profile.install_wall`` (one global
#: read per match when unprofiled -- the bus's inactive-emit contract).
WALL_PROFILE = None


class ClassAd:
    """A classified advertisement: attribute names mapped to expressions.

    Values assigned via :meth:`__setitem__` may be Python scalars (wrapped
    as literals) or strings of ClassAd source prefixed appropriately via
    :meth:`set_expr`.  Attribute names are case-insensitive.
    """

    def __init__(self, attrs: dict[str, Any] | None = None):
        self._attrs: dict[str, Expr] = {}
        if attrs:
            for key, value in attrs.items():
                self[key] = value

    # -- mapping interface --------------------------------------------------
    def __setitem__(self, name: str, value: Any) -> None:
        """Set attribute *name* to a literal Python value."""
        if isinstance(value, Expr):
            self._attrs[name.lower()] = value
        else:
            self._attrs[name.lower()] = Literal(ClassAdValue.of(value))

    def set_expr(self, name: str, source: str) -> None:
        """Set attribute *name* to the parsed ClassAd expression *source*."""
        self._attrs[name.lower()] = parse(source)

    def lookup(self, name: str) -> Expr | None:
        """The raw expression bound to *name*, or None."""
        return self._attrs.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    # -- evaluation -----------------------------------------------------------
    def eval(self, name: str, target: "ClassAd | None" = None) -> ClassAdValue:
        """Evaluate attribute *name* against optional *target*."""
        expr = self.lookup(name)
        if expr is None:
            from repro.condor.classads.expr import V_UNDEFINED

            return V_UNDEFINED
        return expr.eval(EvalContext(my=self, target=target))

    def value(self, name: str, default: Any = None, target: "ClassAd | None" = None) -> Any:
        """Evaluate *name* and return the Python payload (or *default*)."""
        val = self.eval(name, target)
        if val.is_exceptional:
            return default
        return val.as_python()

    # -- conveniences ------------------------------------------------------
    def copy(self) -> "ClassAd":
        ad = ClassAd()
        ad._attrs = dict(self._attrs)
        return ad

    def update(self, other: "ClassAd") -> None:
        self._attrs.update(other._attrs)

    def render(self) -> str:
        """ClassAd source form, one ``name = expr;`` per line."""
        lines = [f"{name} = {expr};" for name, expr in sorted(self._attrs.items())]
        return "[\n  " + "\n  ".join(lines) + "\n]" if lines else "[ ]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassAd {sorted(self._attrs)}>"


def match(ad: ClassAd, target: ClassAd) -> bool:
    """One-directional match: does *ad*'s Requirements accept *target*?

    A missing or non-TRUE (UNDEFINED, ERROR, FALSE) Requirements rejects
    -- conservative, like the real matchmaker.
    """
    wall = WALL_PROFILE
    if wall is None:
        return _match(ad, target)
    t0 = perf_counter_ns()
    try:
        return _match(ad, target)
    finally:
        wall.add("classads.match", perf_counter_ns() - t0)


def _match(ad: ClassAd, target: ClassAd) -> bool:
    val = ad.eval("requirements", target=target).as_bool()
    return val.type is ValueType.BOOLEAN and bool(val.payload)


def symmetric_match(a: ClassAd, b: ClassAd) -> bool:
    """True when both parties' Requirements accept each other (§2.1)."""
    return match(a, b) and match(b, a)


def rank(ad: ClassAd, target: ClassAd) -> float:
    """*ad*'s Rank of *target*; non-numeric or missing Rank counts as 0."""
    val = ad.eval("rank", target=target)
    if val.is_number:
        return float(val.payload)
    return 0.0
