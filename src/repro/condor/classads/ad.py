"""ClassAds and two-party matching.

    "This process collects information about all participants, and
    notifies schedds and startds of compatible partners." (§2.1)

A :class:`ClassAd` is a case-insensitive mapping from attribute names to
expressions.  Matching is symmetric: ads A and B match when A's
``Requirements`` evaluates to TRUE with ``MY = A, TARGET = B`` *and* B's
``Requirements`` evaluates to TRUE with ``MY = B, TARGET = A``.  ``Rank``
orders the compatible partners.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Iterator

from repro.condor.classads.compile import CompiledExpr, compile_expr
from repro.condor.classads.expr import (
    ClassAdValue,
    EvalContext,
    Expr,
    Literal,
    V_UNDEFINED,
    ValueType,
)
from repro.condor.classads.parser import parse

__all__ = ["ClassAd", "match", "rank", "symmetric_match"]

#: Wall-time hook set by ``repro.obs.profile.install_wall`` (one global
#: read per match when unprofiled -- the bus's inactive-emit contract).
WALL_PROFILE = None


class ClassAd:
    """A classified advertisement: attribute names mapped to expressions.

    Values assigned via :meth:`__setitem__` may be Python scalars (wrapped
    as literals) or strings of ClassAd source prefixed appropriately via
    :meth:`set_expr`.  Attribute names are case-insensitive.
    """

    def __init__(self, attrs: dict[str, Any] | None = None):
        self._attrs: dict[str, Expr] = {}
        #: name -> compiled closure, populated lazily by
        #: :meth:`_compiled_lookup` and invalidated on every mutation.
        self._compiled: dict[str, CompiledExpr] = {}
        #: Slot for derived analyses (the matchmaker's requirement
        #: constraints); cleared on *any* mutation because such analyses
        #: may depend on the full attribute set, not just one name.
        self._analysis: Any = None
        if attrs:
            for key, value in attrs.items():
                self[key] = value

    # -- mapping interface --------------------------------------------------
    def __setitem__(self, name: str, value: Any) -> None:
        """Set attribute *name* to a literal Python value."""
        lowered = name.lower()
        if isinstance(value, Expr):
            self._attrs[lowered] = value
        else:
            self._attrs[lowered] = Literal(ClassAdValue.of(value))
        self._invalidate(lowered)

    def set_expr(self, name: str, source: str) -> None:
        """Set attribute *name* to the parsed ClassAd expression *source*."""
        lowered = name.lower()
        self._attrs[lowered] = parse(source)
        self._invalidate(lowered)

    def _invalidate(self, name: str) -> None:
        # Compiled closures resolve cross-attribute references through
        # the cache at call time, so only *name*'s own entry goes stale.
        self._compiled.pop(name, None)
        self._analysis = None

    def lookup(self, name: str) -> Expr | None:
        """The raw expression bound to *name*, or None."""
        return self._attrs.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._attrs

    def __iter__(self) -> Iterator[str]:
        return iter(self._attrs)

    def __len__(self) -> int:
        return len(self._attrs)

    # -- evaluation -----------------------------------------------------------
    def _compiled_lookup(self, name: str) -> CompiledExpr | None:
        """The compiled closure for *name* (compile-once), or None.

        *name* must already be lowercased (attribute references store
        lowered names; :meth:`eval` lowers on the way in).
        """
        fn = self._compiled.get(name)
        if fn is None:
            expr = self._attrs.get(name)
            if expr is None:
                return None
            fn = compile_expr(expr)
            self._compiled[name] = fn
        return fn

    def eval(self, name: str, target: "ClassAd | None" = None) -> ClassAdValue:
        """Evaluate attribute *name* against optional *target*."""
        fn = self._compiled_lookup(name.lower())
        if fn is None:
            return V_UNDEFINED
        return fn(EvalContext(my=self, target=target))

    def value(self, name: str, default: Any = None, target: "ClassAd | None" = None) -> Any:
        """Evaluate *name* and return the Python payload (or *default*)."""
        val = self.eval(name, target)
        if val.is_exceptional:
            return default
        return val.as_python()

    # -- conveniences ------------------------------------------------------
    def copy(self) -> "ClassAd":
        ad = ClassAd()
        ad._attrs = dict(self._attrs)
        # Compiled closures are pure functions of the (immutable) Expr
        # trees, so sharing them with the copy is safe.
        ad._compiled = dict(self._compiled)
        return ad

    def update(self, other: "ClassAd") -> None:
        self._attrs.update(other._attrs)
        for name in other._attrs:
            self._compiled.pop(name, None)
        self._analysis = None

    def render(self) -> str:
        """ClassAd source form, one ``name = expr;`` per line."""
        lines = [f"{name} = {expr};" for name, expr in sorted(self._attrs.items())]
        return "[\n  " + "\n  ".join(lines) + "\n]" if lines else "[ ]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassAd {sorted(self._attrs)}>"


def match(ad: ClassAd, target: ClassAd) -> bool:
    """One-directional match: does *ad*'s Requirements accept *target*?

    A missing or non-TRUE (UNDEFINED, ERROR, FALSE) Requirements rejects
    -- conservative, like the real matchmaker.
    """
    wall = WALL_PROFILE
    if wall is None:
        return _match(ad, target)
    t0 = perf_counter_ns()
    try:
        return _match(ad, target)
    finally:
        wall.add("classads.match", perf_counter_ns() - t0)


def _match(ad: ClassAd, target: ClassAd) -> bool:
    val = ad.eval("requirements", target=target).as_bool()
    return val.type is ValueType.BOOLEAN and bool(val.payload)


def symmetric_match(a: ClassAd, b: ClassAd) -> bool:
    """True when both parties' Requirements accept each other (§2.1)."""
    return match(a, b) and match(b, a)


def rank(ad: ClassAd, target: ClassAd) -> float:
    """*ad*'s Rank of *target*; non-numeric or missing Rank counts as 0."""
    val = ad.eval("rank", target=target)
    if val.is_number:
        return float(val.payload)
    return 0.0
