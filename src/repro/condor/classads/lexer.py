"""Tokenizer for ClassAd expressions."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LexError", "Token", "tokenize"]


class LexError(Exception):
    """Malformed ClassAd source text."""


@dataclass(frozen=True)
class Token:
    kind: str  # INT REAL STRING NAME OP LPAREN RPAREN COMMA DOT EOF
    text: str
    pos: int


_TWO_CHAR_OPS = {"==", "!=", "<=", ">=", "&&", "||"}
_THREE_CHAR_OPS = {"=?=", "=!="}
_ONE_CHAR_OPS = set("+-*/%<>!")


def tokenize(source: str) -> list[Token]:
    """Split *source* into tokens; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "(":
            tokens.append(Token("LPAREN", ch, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token("RPAREN", ch, i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token("COMMA", ch, i))
            i += 1
            continue
        if ch == ".":
            tokens.append(Token("DOT", ch, i))
            i += 1
            continue
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    buf.append(source[j + 1])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError(f"unterminated string at {i}")
            tokens.append(Token("STRING", "".join(buf), i))
            i = j + 1
            continue
        if source[i : i + 3] in _THREE_CHAR_OPS:
            tokens.append(Token("OP", source[i : i + 3], i))
            i += 3
            continue
        if source[i : i + 2] in _TWO_CHAR_OPS:
            tokens.append(Token("OP", source[i : i + 2], i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token("OP", ch, i))
            i += 1
            continue
        if ch.isdigit():
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp and j + 1 < n and source[j + 1].isdigit():
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    nxt = source[j + 1 : j + 2]
                    if nxt.isdigit() or (
                        nxt in "+-" and source[j + 2 : j + 3].isdigit()
                    ):
                        seen_exp = True
                        j += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            text = source[i:j]
            kind = "REAL" if (seen_dot or seen_exp) else "INT"
            tokens.append(Token(kind, text, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            tokens.append(Token("NAME", source[i:j], i))
            i = j
            continue
        raise LexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("EOF", "", n))
    return tokens
