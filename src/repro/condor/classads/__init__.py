"""The ClassAd language (paper §2.1).

    "The requests and requirements of both parties are expressed in a
    unique language known as ClassAds, and forwarded to a central
    matchmaker."

A working subset of the classified-advertisement language of Raman's
matchmaking framework: typed values with UNDEFINED/ERROR tri-state
semantics, attribute references across two ads (``MY.``/``TARGET.``),
arithmetic/comparison/boolean operators including the meta-equality
``=?=``/``=!=``, builtin functions, and symmetric two-ad matching on
``Requirements`` with ``Rank`` ordering.
"""

from repro.condor.classads.ad import ClassAd, match, rank, symmetric_match
from repro.condor.classads.compile import compile_expr
from repro.condor.classads.expr import (
    ClassAdValue,
    EvalContext,
    Expr,
    V_ERROR,
    V_FALSE,
    V_TRUE,
    V_UNDEFINED,
)
from repro.condor.classads.lexer import LexError, tokenize
from repro.condor.classads.parser import ParseError, parse

__all__ = [
    "ClassAd",
    "ClassAdValue",
    "EvalContext",
    "Expr",
    "LexError",
    "ParseError",
    "V_ERROR",
    "V_FALSE",
    "V_TRUE",
    "V_UNDEFINED",
    "compile_expr",
    "match",
    "parse",
    "rank",
    "symmetric_match",
    "tokenize",
]
