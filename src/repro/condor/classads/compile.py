"""Compile-once lowering of ClassAd expression trees to Python closures.

The interpreter in :mod:`repro.condor.classads.expr` re-walks the AST on
every evaluation.  That is fine for a handful of ads, but the matchmaker
evaluates the *same* ``Requirements``/``Rank`` expressions against
thousands of candidates per negotiation cycle.  :func:`compile_expr`
lowers an :class:`~repro.condor.classads.expr.Expr` tree into a nest of
plain Python closures exactly once; each call then runs straight-line
code with no ``isinstance`` dispatch and no attribute walks.

The compiled form is semantically *identical* to ``Expr.eval`` -- same
tri-state UNDEFINED/ERROR propagation, same short-circuit rules, same
circular-reference and depth guards -- which
``tests/condor/test_classad_compile.py`` pins with property tests.
Closures are pure functions of the (immutable, frozen-dataclass) AST, so
they may be cached and shared freely; :class:`~repro.condor.classads.ad.
ClassAd` caches one per attribute and drops the cache entry whenever the
attribute is reassigned.

Cross-ad attribute references resolve through the *referenced* ad's own
compiled cache (``ClassAd._compiled_lookup``), so a machine ad's
``Requirements`` is compiled once and reused across every job it is
matched against, no matter which side of the match initiates the
evaluation.
"""

from __future__ import annotations

from typing import Callable

from repro.condor.classads.expr import (
    AttrRef,
    BinOp,
    ClassAdValue,
    EvalContext,
    Expr,
    FuncCall,
    FUNCTIONS,
    Literal,
    UnaryOp,
    V_ERROR,
    V_FALSE,
    V_TRUE,
    V_UNDEFINED,
    ValueType,
    _arith,
    _compare,
    _meta_equal,
)

__all__ = ["CompiledExpr", "compile_expr"]

#: A compiled expression: ``fn(ctx) -> ClassAdValue``.
CompiledExpr = Callable[[EvalContext], ClassAdValue]

_BOOLEAN = ValueType.BOOLEAN


def _compile_attr_ref(node: AttrRef) -> CompiledExpr:
    name = node.name
    qualifier = node.qualifier

    def run(ctx: EvalContext) -> ClassAdValue:
        if ctx.depth >= EvalContext.MAX_DEPTH:
            return V_ERROR
        if qualifier == "my":
            ads = (ctx.my,)
        elif qualifier == "target":
            ads = (ctx.target,)
        else:
            ads = (ctx.my, ctx.target)
        for ad in ads:
            if ad is None:
                continue
            lookup = getattr(ad, "_compiled_lookup", None)
            if lookup is not None:
                fn = lookup(name)
            else:  # a duck-typed ad: fall back to the interpreter
                expr = ad.lookup(name)
                fn = expr.eval if expr is not None else None
            if fn is None:
                continue
            in_progress = ctx._in_progress
            key = (id(ad), name)
            if key in in_progress:
                return V_ERROR  # circular reference
            in_progress.add(key)
            ctx.depth += 1
            try:
                # Unqualified references inside the referenced ad resolve
                # in that ad's own frame.
                if ad is ctx.target:
                    sub = EvalContext(my=ctx.target, target=ctx.my)
                    sub._in_progress = in_progress
                    sub.depth = ctx.depth
                    return fn(sub)
                return fn(ctx)
            finally:
                ctx.depth -= 1
                in_progress.discard(key)
        return V_UNDEFINED

    return run


def _compile_unary(node: UnaryOp) -> CompiledExpr:
    operand = compile_expr(node.operand)
    op = node.op

    if op == "!":
        def run_not(ctx: EvalContext) -> ClassAdValue:
            val = operand(ctx).as_bool()
            if val.is_exceptional:
                return val
            return V_FALSE if val.payload else V_TRUE

        return run_not

    if op == "-":
        def run_neg(ctx: EvalContext) -> ClassAdValue:
            val = operand(ctx)
            if val.is_exceptional:
                return val
            if not val.is_number:
                return V_ERROR
            return ClassAdValue.of(-val.payload)

        return run_neg

    def run_pos(ctx: EvalContext) -> ClassAdValue:
        val = operand(ctx)
        if val.is_exceptional:
            return val
        if not val.is_number:
            return V_ERROR
        return val

    return run_pos


def _compile_binop(node: BinOp) -> CompiledExpr:
    op = node.op
    left = compile_expr(node.left)
    right = compile_expr(node.right)

    if op == "&&":
        def run_and(ctx: EvalContext) -> ClassAdValue:
            a = left(ctx).as_bool()
            if a.type is _BOOLEAN and not a.payload:
                return V_FALSE
            b = right(ctx).as_bool()
            # FALSE dominates; then ERROR; then UNDEFINED.
            if b.type is _BOOLEAN and not b.payload:
                return V_FALSE
            if a.is_error or b.is_error:
                return V_ERROR
            if a.is_undefined or b.is_undefined:
                return V_UNDEFINED
            return V_TRUE

        return run_and

    if op == "||":
        def run_or(ctx: EvalContext) -> ClassAdValue:
            a = left(ctx).as_bool()
            if a.type is _BOOLEAN and a.payload:
                return V_TRUE
            b = right(ctx).as_bool()
            # TRUE dominates; then ERROR; then UNDEFINED.
            if b.type is _BOOLEAN and b.payload:
                return V_TRUE
            if a.is_error or b.is_error:
                return V_ERROR
            if a.is_undefined or b.is_undefined:
                return V_UNDEFINED
            return V_FALSE

        return run_or

    if op == "=?=":
        def run_meta_eq(ctx: EvalContext) -> ClassAdValue:
            return V_TRUE if _meta_equal(left(ctx), right(ctx)) else V_FALSE

        return run_meta_eq

    if op == "=!=":
        def run_meta_ne(ctx: EvalContext) -> ClassAdValue:
            return V_FALSE if _meta_equal(left(ctx), right(ctx)) else V_TRUE

        return run_meta_ne

    if op in ("==", "!=", "<", "<=", ">", ">="):
        def run_compare(ctx: EvalContext) -> ClassAdValue:
            return _compare(op, left(ctx), right(ctx))

        return run_compare

    def run_arith(ctx: EvalContext) -> ClassAdValue:
        return _arith(op, left(ctx), right(ctx))

    return run_arith


def _compile_func(node: FuncCall) -> CompiledExpr:
    fn = FUNCTIONS.get(node.name)
    if fn is None:
        return lambda ctx: V_ERROR
    arg_fns = tuple(compile_expr(arg) for arg in node.args)

    def run(ctx: EvalContext) -> ClassAdValue:
        return fn([arg(ctx) for arg in arg_fns])

    return run


def compile_expr(node: Expr) -> CompiledExpr:
    """Lower *node* to a closure with semantics identical to ``node.eval``."""
    if isinstance(node, Literal):
        value = node.value
        return lambda ctx: value
    if isinstance(node, AttrRef):
        return _compile_attr_ref(node)
    if isinstance(node, BinOp):
        return _compile_binop(node)
    if isinstance(node, UnaryOp):
        return _compile_unary(node)
    if isinstance(node, FuncCall):
        return _compile_func(node)
    # Unknown Expr subclass (tests may define their own): interpret.
    return node.eval
