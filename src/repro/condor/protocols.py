"""Typed messages of the Condor kernel protocols (Figure 1).

Four protocols connect the kernel:

- **matchmaking** -- schedds and startds advertise ClassAds to the
  matchmaker; the matchmaker notifies compatible partners;
- **claiming** -- "schedds and startds communicate directly to claim one
  another and verify that their requirements are met";
- **control** -- the schedd commands its shadow; the startd its starter;
- **shadow protocol** -- the starter fetches job details and files from
  the shadow and returns results.

All messages are plain frozen dataclasses sent over
:class:`repro.sim.network.Connection` objects, so every protocol hop is
subject to the simulated network's failure modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.condor.classads import ClassAd

__all__ = [
    "Advertise",
    "AdvertiseBatch",
    "ActivateClaim",
    "ClaimGranted",
    "ClaimRejected",
    "FileData",
    "FileRequest",
    "JobDetails",
    "JobDetailsRequest",
    "JobResult",
    "MatchNotify",
    "RequestClaim",
    "WireSize",
]


class WireSize:
    """Nominal wire sizes (bytes) for traffic accounting."""

    CONTROL = 128
    AD = 1024
    FILE_CHUNK = 4096


# -- matchmaking protocol ----------------------------------------------------

@dataclass(frozen=True)
class Advertise:
    """A daemon publishes its ClassAd to the matchmaker."""

    kind: str  # "machine" or "job"
    name: str  # advertising daemon's name
    ad: ClassAd


@dataclass(frozen=True)
class AdvertiseBatch:
    """Several ads of one kind in a single message.

    An SMP startd publishes one ad per slot and a schedd one ad per idle
    job; batching them onto one wire message keeps the matchmaker's
    collect loop from paying one receive deadline (and the event heap one
    timer) per ad.  Wire size accounting charges the batch the same bytes
    as the equivalent single ads.
    """

    kind: str  # "machine" or "job"
    ads: tuple  # of (name, ClassAd) pairs, in advertising order


@dataclass(frozen=True)
class InvalidateAd:
    """A daemon retracts its ads (graceful leave).

    A startd that is leaving the pool on purpose tells the matchmaker
    immediately instead of letting its ads age out over ``ad_lifetime``
    -- the difference between a machine that *said goodbye* and one that
    vanished (crash-leave), whose stale ads cost a claim timeout per
    match until they expire.
    """

    kind: str  # "machine" or "job"
    names: tuple  # ad names to retract (every slot of an SMP)


@dataclass(frozen=True)
class MatchNotify:
    """The matchmaker tells a schedd about a compatible startd."""

    job_id: str
    startd_name: str
    startd_host: str
    startd_port: int
    machine_ad: ClassAd


# -- claiming protocol ---------------------------------------------------------

@dataclass(frozen=True)
class RequestClaim:
    """Schedd asks a matched startd for a claim, presenting the job ad."""

    schedd_name: str
    job_id: str
    job_ad: ClassAd


@dataclass(frozen=True)
class ClaimGranted:
    claim_id: str
    starter_port: int


@dataclass(frozen=True)
class ClaimRejected:
    reason: str


# -- shadow protocol -----------------------------------------------------------

@dataclass(frozen=True)
class JobDetailsRequest:
    """Starter asks the shadow for the job description."""

    claim_id: str


@dataclass(frozen=True)
class JobDetails:
    """'...the details of the job to be run, such as the executable, the
    input files, and the arguments.' (§2.1)

    Also carries the shadow's remote I/O contact point and the credential
    the proxy must present there (Figure 2's RPC channel "secured by GSI
    or Kerberos").
    """

    job_id: str
    universe: str
    image_name: str
    input_files: tuple[str, ...]
    heap_request: int
    program: Any  # opaque behaviour model interpreted by the universe
    shadow_io_host: str = ""
    shadow_io_port: int = 0
    credential: Any = None
    #: Standard Universe: resume execution from this step index (the
    #: shadow's record of the job's last committed checkpoint).
    resume_from: int = 0


@dataclass(frozen=True)
class FileRequest:
    """Starter asks the shadow for a named file's content."""

    name: str


@dataclass(frozen=True)
class FileData:
    """The shadow's reply: content, or an explicit error code."""

    name: str
    data: bytes = b""
    error: str = ""  # errno-style code; empty means success


@dataclass(frozen=True)
class CheckpointNotice:
    """Standard Universe: the starter's report that the job has committed
    a checkpoint through step *steps_done*.

    The real mechanism ships a memory image to the shadow's checkpoint
    server; the simulation ships the program counter, which carries the
    same information for a step-modelled program.
    """

    claim_id: str
    steps_done: int


@dataclass(frozen=True)
class Keepalive:
    """The starter's periodic 'alive' message while the job runs.

    Lets the shadow distinguish a long-running job from a dead execution
    site -- precisely the time-based scope disambiguation of §5.
    """

    claim_id: str


@dataclass(frozen=True)
class JobResult:
    """Starter's report to the shadow at the end of an execution.

    *result_file* carries the wrapper's serialized result file when one
    was produced; *exit_code*/*exit_signal* carry the raw JVM process
    status (all the naive configuration has to go on).
    """

    claim_id: str
    exit_code: int = 0
    exit_signal: int | None = None
    result_file: bytes | None = None
    starter_error: str = ""  # condition discovered by the starter itself
    starter_error_scope: str = ""  # name of an ErrorScope member
