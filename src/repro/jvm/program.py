"""A behavioural model of user Java programs.

A :class:`JavaProgram` is a list of :class:`Step` objects executed in
order.  Steps may compute (consuming simulated CPU time), allocate heap,
perform remote I/O through the supplied I/O library, throw, or call
``System.exit``.  The program may declare exception names it catches
(``handles``); a handled exception is recorded and execution continues
with the next step, exactly like a ``try { step } catch (Named e)`` per
statement.  ``JError`` subclasses are never caught by programs --
"program code does not catch Errors" is the convention the fixed I/O
library (§4) relies on to escape.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.jvm.throwables import JError, Throwable, throwable_by_name

__all__ = ["ExitCalled", "JavaProgram", "Step", "StepKind"]


class StepKind(enum.Enum):
    COMPUTE = "compute"
    ALLOCATE = "allocate"
    FREE = "free"
    READ = "read"
    WRITE = "write"
    TRANSFORM = "transform"  # read src, write f(src bytes) to dst
    THROW = "throw"
    EXIT = "exit"


def transform_bytes(data: bytes) -> bytes:
    """The canonical transformation used by TRANSFORM steps: reversal.

    Deterministic and sensitive to every byte, so any silent corruption
    of the input is visible in the output -- which is what lets the
    end-to-end layer detect implicit errors.
    """
    return data[::-1]


@dataclass(frozen=True)
class Step:
    """One statement of the modelled program."""

    kind: StepKind
    #: COMPUTE: cpu-seconds; ALLOCATE/FREE: bytes; READ/WRITE: path;
    #: THROW: java exception name; EXIT: code.
    arg: Any = None
    data: bytes = b""  # WRITE payload

    # -- constructors ----------------------------------------------------
    @staticmethod
    def compute(cpu_seconds: float) -> "Step":
        return Step(StepKind.COMPUTE, cpu_seconds)

    @staticmethod
    def allocate(nbytes: int) -> "Step":
        return Step(StepKind.ALLOCATE, nbytes)

    @staticmethod
    def free(nbytes: int) -> "Step":
        return Step(StepKind.FREE, nbytes)

    @staticmethod
    def read(path: str) -> "Step":
        return Step(StepKind.READ, path)

    @staticmethod
    def write(path: str, data: bytes) -> "Step":
        return Step(StepKind.WRITE, path, data)

    @staticmethod
    def transform(src: str, dst: str) -> "Step":
        """Read *src*, write :func:`transform_bytes` of it to *dst*."""
        return Step(StepKind.TRANSFORM, (src, dst))

    @staticmethod
    def throw(java_name: str) -> "Step":
        return Step(StepKind.THROW, java_name)

    @staticmethod
    def exit(code: int) -> "Step":
        return Step(StepKind.EXIT, code)


class ExitCalled(Exception):
    """Internal signal: the program called ``System.exit(code)``."""

    def __init__(self, code: int):
        super().__init__(f"System.exit({code})")
        self.code = code


@dataclass
class JavaProgram:
    """The user's program: steps plus the exceptions it catches."""

    name: str = "Main"
    steps: list[Step] = field(default_factory=list)
    handles: set[str] = field(default_factory=set)

    def execute(self, jvm, io, start_at: int = 0, on_step=None) -> Any:
        """Run the program inside *jvm* with I/O library *io* (generator).

        Returns the list of handled exceptions on normal completion.
        Raises :class:`ExitCalled` for ``System.exit``, or any uncaught
        :class:`Throwable`.

        *start_at* resumes from a checkpoint: the first *start_at* steps
        are skipped, but their net heap effect is restored first (a
        checkpoint restores the memory image).  *on_step(index)* is
        called after each completed step -- the hook the Standard
        Universe's checkpointing rides on.
        """
        handled: list[Throwable] = []
        if start_at > 0:
            net_heap = 0
            for step in self.steps[:start_at]:
                if step.kind is StepKind.ALLOCATE:
                    net_heap += step.arg
                elif step.kind is StepKind.FREE:
                    net_heap -= step.arg
            if net_heap > 0:
                jvm.heap_alloc(net_heap)
        for index, step in enumerate(self.steps[start_at:], start=start_at):
            try:
                if step.kind is StepKind.COMPUTE:
                    yield from jvm.compute(step.arg)
                elif step.kind is StepKind.ALLOCATE:
                    jvm.heap_alloc(step.arg)
                elif step.kind is StepKind.FREE:
                    jvm.heap_free(step.arg)
                elif step.kind is StepKind.READ:
                    yield from io.read_file(step.arg)
                elif step.kind is StepKind.WRITE:
                    yield from io.write_file(step.arg, step.data)
                elif step.kind is StepKind.TRANSFORM:
                    src, dst = step.arg
                    data = yield from io.read_file(src)
                    yield from io.write_file(dst, transform_bytes(data))
                elif step.kind is StepKind.THROW:
                    raise throwable_by_name(step.arg, f"thrown by {self.name}")
                elif step.kind is StepKind.EXIT:
                    raise ExitCalled(step.arg)
            except Throwable as exc:
                if isinstance(exc, JError):
                    raise  # programs do not catch Errors
                if exc.java_name in self.handles:
                    handled.append(exc)
                    if on_step is not None:
                        on_step(index + 1)
                    continue
                raise
            if on_step is not None:
                on_step(index + 1)
        return handled
