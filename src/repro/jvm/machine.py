"""The simulated Java Virtual Machine.

The JVM runs as a simulated OS process on an execution machine and
reproduces the exit-code semantics of Figure 4:

====================================================  ===========
Execution detail                                      Result code
====================================================  ===========
The program exited by completing main.                0
The program exited by calling System.exit(x)          x
Uncaught exception (any kind, any scope)              1
====================================================  ===========

The code is deliberately lossy -- "a result of 1 could indicate a normal
program exit, an exit with an exception, or an error in the surrounding
environment" -- because that lossiness is the paper's Figure-4 problem.
The wrapper (:mod:`repro.jvm.wrapper`) recovers the lost information
through the result file.
"""

from __future__ import annotations

from typing import Callable

from repro.core.result import ResultFile
from repro.jvm.program import ExitCalled, JavaProgram
from repro.jvm.throwables import (
    JNoClassDefFoundError,
    JOutOfMemoryError,
    Throwable,
)
from repro.sim.engine import Simulator
from repro.sim.machine import JavaInstallation, Machine, MemoryError_
from repro.sim.process import ProcessExit

__all__ = ["Jvm", "JvmExecError"]


class JvmExecError(Exception):
    """exec(2) of the java binary failed -- there is no JVM process at all.

    The *starter* discovers this (remote-resource scope): the machine
    owner "might give an incorrect path" to the binary itself.
    """


class Jvm:
    """One JVM invocation on one machine."""

    #: Physical footprint of the JVM itself (code, metaspace, stacks).
    BASE_FOOTPRINT = 4 * 2**20

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        installation: JavaInstallation | None = None,
    ):
        self.sim = sim
        self.machine = machine
        self.installation = installation or machine.java
        self.heap_limit = 0
        self.heap_used = 0
        self._reserved = 0

    # -- services used by program steps -------------------------------------
    def compute(self, cpu_seconds: float):
        """Generator: burn *cpu_seconds* of normalized work on this machine."""
        yield self.sim.timeout(self.machine.cpu_time(cpu_seconds))

    def heap_alloc(self, nbytes: int) -> None:
        """Allocate from the JVM heap; raises :class:`JOutOfMemoryError`.

        The heap grows lazily against *physical* machine memory, so
        pressure from other tenants surfaces here, during execution --
        where the wrapper can catch it -- not at boot.
        """
        if self.heap_used + nbytes > self.heap_limit:
            raise JOutOfMemoryError(
                f"requested {nbytes}, heap {self.heap_used}/{self.heap_limit}"
            )
        try:
            self.machine.alloc(nbytes)
        except MemoryError_ as exc:
            raise JOutOfMemoryError(f"machine out of memory: {exc}") from exc
        self.heap_used += nbytes
        self._reserved += nbytes

    def heap_free(self, nbytes: int) -> None:
        nbytes = min(nbytes, self.heap_used)
        self.heap_used -= nbytes
        self.machine.free(nbytes)
        self._reserved -= nbytes

    # -- lifecycle -----------------------------------------------------------
    def check_exec(self) -> None:
        """The starter's exec of the java binary; raises :class:`JvmExecError`."""
        if not self.installation.binary_ok:
            raise JvmExecError(f"no such binary {self.installation.java_binary!r}")

    def _boot(self, heap_request: int):
        """JVM startup: verify installation, reserve physical memory.

        Raises the throwable the real JVM would die with.  Generator (the
        startup consumes a moment of simulated time).
        """
        yield self.sim.timeout(0.1 / self.machine.cpu_speed)
        if not self.installation.classpath_ok:
            # The owner pointed at the wrong standard libraries (§2.3).
            raise JNoClassDefFoundError(
                f"java/lang/Object not found under {self.installation.classpath!r}"
            )
        try:
            self.machine.alloc(self.BASE_FOOTPRINT)
        except MemoryError_ as exc:
            raise JOutOfMemoryError(f"cannot start VM: {exc}") from exc
        self._reserved = self.BASE_FOOTPRINT
        self.heap_limit = min(heap_request, self.installation.heap_limit)

    def _shutdown(self) -> None:
        if self._reserved:
            self.machine.free(self._reserved)
            self._reserved = 0

    # -- execution modes ---------------------------------------------------------
    def run_bare(
        self,
        image,
        program: JavaProgram,
        io,
        heap_request: int,
        start_at: int = 0,
        on_step=None,
    ):
        """Process body: run *program* directly, Figure-4 exit codes only.

        This is the naive §2.3 configuration: "we relied entirely on the
        exit code of the JVM as an indicator of program success."
        *start_at*/*on_step* support the Standard Universe's
        checkpoint-resume (see :meth:`JavaProgram.execute`).
        """
        try:
            yield from self._boot(heap_request)
        except Throwable:
            raise ProcessExit(1)  # the JVM prints a stack trace and dies
        try:
            if image.corrupt:
                # Class loader rejects the image; uncaught -> exit 1.
                raise ProcessExit(1)
            try:
                yield from program.execute(self, io, start_at=start_at, on_step=on_step)
            except ExitCalled as exit_call:
                raise ProcessExit(exit_call.code) from None
            except Throwable:
                raise ProcessExit(1) from None
            raise ProcessExit(0)
        finally:
            self._shutdown()

    def run_wrapped(
        self,
        image,
        program: JavaProgram,
        io,
        heap_request: int,
        classifier,
        result_sink: Callable[[bytes], None],
    ):
        """Process body: run *program* under the Condor wrapper (§4).

        The wrapper itself is Java code: if the JVM cannot boot, the
        wrapper never runs and **no result file appears** -- exactly how
        the real system distinguishes "the environment broke before user
        code" from everything else.
        """
        try:
            yield from self._boot(heap_request)
        except Throwable:
            raise ProcessExit(1)  # no result file: the starter will notice
        try:
            from repro.jvm.wrapper import run_wrapped

            result: ResultFile = yield from run_wrapped(self, image, program, io, classifier)
            result_sink(result.serialize())
            raise ProcessExit(0)
        finally:
            self._shutdown()
