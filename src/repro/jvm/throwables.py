"""The simulated Java throwable hierarchy.

Python exceptions standing in for Java's, with the structure the paper's
argument leans on:

- ``Throwable`` splits into ``JError`` ("serious problems that a
  reasonable application should not try to catch") and ``JException``;
- the I/O library's explicit errors are ``JIOException`` subclasses;
- the *escaping* errors the fixed library raises (§4: "modified the I/O
  library to send an escaping error (a Java Error) to the program
  wrapper") are ``JError`` subclasses carrying a scope hint.

Class names carry a ``J`` prefix to avoid colliding with Python builtins;
``java_name`` is the name the wrapper's classifier sees.
"""

from __future__ import annotations

from repro.core.scope import ErrorScope

__all__ = [
    "JAccessDeniedException",
    "JArithmeticException",
    "JArrayIndexOutOfBoundsException",
    "JChirpConnectionLostError",
    "JClassCastException",
    "JClassFormatError",
    "JConnectionTimedOutException",
    "JCredentialExpiredError",
    "JDiskFullException",
    "JEOFException",
    "JError",
    "JException",
    "JFileNotFoundException",
    "JIOException",
    "JIllegalArgumentException",
    "JInternalError",
    "JNoClassDefFoundError",
    "JNoSuchMethodError",
    "JNullPointerException",
    "JOutOfMemoryError",
    "JRemoteIoUnavailableError",
    "JRuntimeException",
    "JStackOverflowError",
    "JVirtualMachineError",
    "Throwable",
    "throwable_by_name",
]


class Throwable(Exception):
    """Root of the simulated Java throwable tree."""

    java_name = "Throwable"

    def __init__(self, message: str = ""):
        super().__init__(message or self.java_name)
        self.message = message


class JException(Throwable):
    """java.lang.Exception: conditions an application might catch."""

    java_name = "Exception"


class JError(Throwable):
    """java.lang.Error: conditions applications do not catch.

    The fixed I/O library's escaping errors are subclasses with a
    ``scope_hint`` the wrapper may consult directly.
    """

    java_name = "Error"
    scope_hint: ErrorScope | None = None


# -- program-scope exceptions ------------------------------------------------

class JRuntimeException(JException):
    java_name = "RuntimeException"


class JNullPointerException(JRuntimeException):
    java_name = "NullPointerException"


class JArrayIndexOutOfBoundsException(JRuntimeException):
    java_name = "ArrayIndexOutOfBoundsException"


class JArithmeticException(JRuntimeException):
    java_name = "ArithmeticException"


class JClassCastException(JRuntimeException):
    java_name = "ClassCastException"


class JIllegalArgumentException(JRuntimeException):
    java_name = "IllegalArgumentException"


# -- the I/O exception tree (§3.4's "innocuous interface fragment") -------------

class JIOException(JException):
    java_name = "IOException"


class JFileNotFoundException(JIOException):
    java_name = "FileNotFoundException"


class JAccessDeniedException(JIOException):
    java_name = "AccessDeniedException"


class JEOFException(JIOException):
    java_name = "EOFException"


class JDiskFullException(JIOException):
    java_name = "DiskFullException"


class JConnectionTimedOutException(JIOException):
    """The naive library's infamous smuggled environmental error (§2.3)."""

    java_name = "ConnectionTimedOutException"


# -- virtual machine errors ---------------------------------------------------

class JVirtualMachineError(JError):
    java_name = "VirtualMachineError"
    scope_hint = ErrorScope.VIRTUAL_MACHINE


class JOutOfMemoryError(JVirtualMachineError):
    java_name = "OutOfMemoryError"


class JStackOverflowError(JVirtualMachineError):
    java_name = "StackOverflowError"


class JInternalError(JVirtualMachineError):
    java_name = "InternalError"


# -- linkage errors (installation / image problems) ---------------------------

class JNoClassDefFoundError(JError):
    java_name = "NoClassDefFoundError"
    scope_hint = ErrorScope.REMOTE_RESOURCE


class JClassFormatError(JError):
    java_name = "ClassFormatError"
    scope_hint = ErrorScope.JOB


class JNoSuchMethodError(JError):
    java_name = "NoSuchMethodError"
    scope_hint = ErrorScope.JOB


# -- the fixed library's escaping errors (§4) ---------------------------------

class JRemoteIoUnavailableError(JError):
    java_name = "RemoteIoUnavailableError"
    scope_hint = ErrorScope.LOCAL_RESOURCE


class JCredentialExpiredError(JError):
    java_name = "CredentialExpiredError"
    scope_hint = ErrorScope.LOCAL_RESOURCE


class JChirpConnectionLostError(JError):
    java_name = "ChirpConnectionLostError"
    scope_hint = ErrorScope.LOCAL_RESOURCE


_BY_NAME: dict[str, type[Throwable]] = {}


def _index(cls: type[Throwable]) -> None:
    _BY_NAME[cls.java_name] = cls
    for sub in cls.__subclasses__():
        _index(sub)


_index(Throwable)


def throwable_by_name(java_name: str, message: str = "") -> Throwable:
    """Instantiate the throwable whose Java name is *java_name*.

    Unknown names produce a plain :class:`JException` subclass instance on
    the fly -- user programs may throw their own exception types.
    """
    cls = _BY_NAME.get(java_name)
    if cls is not None:
        return cls(message)
    custom = type("J" + java_name, (JException,), {"java_name": java_name})
    return custom(message)
