"""A simulated Java Virtual Machine (paper §2.2, Figure 2).

The JVM is simulated at exactly the fidelity the paper's argument needs:
its exit-code semantics (Figure 4), its throwable hierarchy, its startup
dependence on the machine owner's installation description, and its
memory accounting -- because those are the mechanisms through which
environmental errors masquerade as program results.

- :mod:`repro.jvm.throwables` -- the Java throwable tree;
- :mod:`repro.jvm.program` -- a behavioural model of user programs;
- :mod:`repro.jvm.machine` -- the JVM itself, run as a simulated OS
  process with Figure-4 exit codes;
- :mod:`repro.jvm.wrapper` -- the Condor Java wrapper of §4.
"""

from repro.jvm.machine import Jvm, JvmExecError
from repro.jvm.program import JavaProgram, Step
from repro.jvm.throwables import JError, JException, Throwable
from repro.jvm.wrapper import run_wrapped

__all__ = [
    "JavaProgram",
    "JError",
    "JException",
    "Jvm",
    "JvmExecError",
    "Step",
    "Throwable",
    "run_wrapped",
]
