"""The Condor Java wrapper (paper §4).

    "The starter causes the JVM to invoke the wrapper with the actual
    program as an argument.  The wrapper locates the program, attempts to
    execute it, and catches any exceptions it may throw.  It examines the
    exception type, and then produces a result file describing the
    program result and the scope of any errors discovered."

The wrapper is the fix for Principle 1: instead of letting the JVM
collapse every outcome into an exit code (creating implicit errors), it
converts each outcome into an explicit, scope-tagged record.
"""

from __future__ import annotations

from repro.core.classify import DEFAULT_CLASSIFIER, ExceptionClassifier
from repro.core.result import ResultFile
from repro.core.scope import ErrorScope
from repro.jvm.program import ExitCalled, JavaProgram
from repro.jvm.throwables import JClassFormatError, JError, Throwable

__all__ = ["classify_throwable", "run_wrapped"]


def classify_throwable(
    exc: Throwable, classifier: ExceptionClassifier | None = None
) -> tuple[ErrorScope, str]:
    """The wrapper's examination of an uncaught throwable.

    An escaping :class:`JError` may carry a ``scope_hint`` planted by the
    layer that raised it (the fixed I/O library does this); otherwise the
    classification table decides from the Java name.
    """
    classifier = classifier or DEFAULT_CLASSIFIER
    hint = getattr(exc, "scope_hint", None)
    if hint is not None:
        return hint, exc.java_name
    got = classifier.classify("java", exc.java_name)
    return got.scope, got.canonical


def run_wrapped(
    jvm,
    image,
    program: JavaProgram,
    io,
    classifier: ExceptionClassifier | None = None,
):
    """Generator: execute *program* under the wrapper; returns a ResultFile.

    Never raises a Throwable: every outcome becomes a result file row --
    that is the wrapper's whole purpose.
    """
    classifier = classifier or DEFAULT_CLASSIFIER
    # "The wrapper locates the program": class loading happens under the
    # wrapper's control, so a corrupt image is caught and scoped (JOB),
    # unlike the bare JVM where it is one more anonymous exit(1).
    if image.corrupt:
        exc = JClassFormatError(f"truncated class file {image.name!r}")
        scope, name = classify_throwable(exc, classifier)
        return ResultFile.environment(scope, name, exc.message)
    try:
        yield from program.execute(jvm, io)
    except ExitCalled as exit_call:
        return ResultFile.completed(exit_call.code)
    except JError as exc:
        scope, name = classify_throwable(exc, classifier)
        if scope.within_program_contract:
            # A JError the table deems the program's own business --
            # deliver it as a program result.
            return ResultFile.exception(name, exc.message)
        return ResultFile.environment(scope, name, exc.message)
    except Throwable as exc:
        scope, name = classify_throwable(exc, classifier)
        if scope.within_program_contract:
            # "Users wanted to see program generated errors such as an
            # ArrayIndexOutOfBoundsException" (§2.3).
            return ResultFile.exception(name, exc.message)
        return ResultFile.environment(scope, name, exc.message)
    return ResultFile.completed(0)
