"""Versioned routes and request logic (the diracx "routers + logic" layer).

Transport-free: :meth:`ServiceApi.handle` maps ``(method, path, headers,
body)`` to ``(status, payload, content_type)`` and raises only
:class:`~repro.service.errors.ServiceError` subtypes.  The HTTP server
is a thin shell around it, and tests can drive the full route surface
without a socket.

Routes (v1)::

    GET  /v1/health                         liveness (unauthenticated)
    POST /v1/jobs                           submit one grid job
    POST /v1/experiments                    launch a named experiment
    POST /v1/campaigns                      launch a fault campaign
    GET  /v1/queue                          aggregate queue statistics
    GET  /v1/runs/<id>                      run status (tenant-scoped)
    GET  /v1/runs/<id>/artifacts            artifact names
    GET  /v1/runs/<id>/artifacts/<name>     artifact content
    GET  /v1/bench                          committed benchmark baselines
    GET  /v1/bench/<name>                   one baseline's JSON
    GET  /console                           GridConsole page (unauthenticated)
    GET  /v1/results/<view>                 results-store JSON (unauthenticated)

Admission control happens here: beyond ``queue_limit`` active runs every
submission is rejected with typed ``QUEUE_FULL`` -- the graceful-
rejection-under-load pattern, applied before any state is created.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable
from urllib.parse import parse_qsl

from repro.obs.web import ResultsWeb
from repro.service.auth import bearer_user
from repro.service.errors import BadRequest, NotFound, QueueFull, WrongTenant
from repro.service.specs import (
    normalize_campaign_spec,
    normalize_experiment_spec,
    normalize_job_spec,
)
from repro.service.store import STORE_SCHEMA, RunStore

__all__ = ["API_VERSION", "ServiceApi", "ServiceConfig"]

API_VERSION = "v1"

#: Artifacts that are JSON documents (everything else serves as text).
_JSON_ARTIFACTS = {"result", "metrics", "report", "batch"}


@dataclass
class ServiceConfig:
    """Operator-facing knobs for one service instance."""

    secret: str
    queue_limit: int = 1000
    #: directory of committed BENCH_*.json baselines served read-only
    bench_dir: str | None = "benchmarks/baseline"
    #: longitudinal results store backing /console; None disables the view
    results_db: str | None = "repro-results.db"
    #: wall clock; injectable for tests (expiry without sleeping)
    now: Callable[[], float] = field(default=time.time)


class ServiceApi:
    """Route table + request logic over one store."""

    def __init__(self, store: RunStore, config: ServiceConfig):
        self.store = store
        self.config = config
        # Live-traffic counters surfaced on the console's summary tile.
        self.requests_total = 0
        self.requests_by_route: dict[str, int] = {}
        self.results_web = (
            None
            if config.results_db is None
            else ResultsWeb(config.results_db, service_stats=self._service_stats)
        )

    def _service_stats(self) -> dict:
        return {
            "requests_total": self.requests_total,
            "requests_by_route": dict(sorted(self.requests_by_route.items())),
            "queue": self.store.queue_stats(),
        }

    # -- entrypoint ------------------------------------------------------
    def handle(
        self, method: str, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, dict | bytes, str]:
        """Dispatch one request; returns (status, payload, content_type).

        Raises :class:`ServiceError` subtypes for every rejection; the
        transport turns them into their HTTP envelope.
        """
        path, _, query_string = path.partition("?")
        parts = [p for p in path.split("/") if p]
        self.requests_total += 1
        route = "/" + "/".join(parts[:2])
        self.requests_by_route[route] = self.requests_by_route.get(route, 0) + 1
        # The console and its data feed are read-only observability over a
        # separate store; they mount before auth, like /v1/health.
        if method == "GET" and parts == ["console"]:
            if self.results_web is None:
                raise NotFound("this service instance mounts no results store")
            return self.results_web.console_page()
        if len(parts) >= 2 and parts[0] == API_VERSION and parts[1] == "results":
            if self.results_web is None:
                raise NotFound("this service instance mounts no results store")
            query = dict(parse_qsl(query_string))
            return self.results_web.handle(method, parts[2:], query)
        if not parts or parts[0] != API_VERSION:
            raise NotFound(f"unknown API root {path!r}; routes live under /{API_VERSION}/")
        parts = parts[1:]
        if method == "GET" and parts == ["health"]:
            return 200, {"ok": True, "schema": STORE_SCHEMA, "api": API_VERSION}, "json"
        user = bearer_user(
            self.config.secret, headers.get("authorization"), self.config.now()
        )
        if method == "POST" and parts in (["jobs"], ["experiments"], ["campaigns"]):
            return self._submit(parts[0], user, body)
        if method == "GET" and parts == ["queue"]:
            return 200, self.store.queue_stats(), "json"
        if method == "GET" and len(parts) >= 2 and parts[0] == "runs":
            return self._runs(parts[1:], user)
        if method == "GET" and parts and parts[0] == "bench":
            return self._bench(parts[1:])
        raise NotFound(f"no route for {method} {path}")

    # -- submission ------------------------------------------------------
    def _submit(self, route: str, user: str, body: bytes) -> tuple[int, dict, str]:
        active = self.store.active_count()
        if active >= self.config.queue_limit:
            raise QueueFull(
                f"queue at capacity ({active} active runs >= limit "
                f"{self.config.queue_limit}); retry after runs drain"
            )
        try:
            payload = json.loads(body or b"null")
        except json.JSONDecodeError as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}") from None
        kind, spec = {
            "jobs": ("job", normalize_job_spec),
            "experiments": ("experiment", normalize_experiment_spec),
            "campaigns": ("campaign", normalize_campaign_spec),
        }[route]
        run_id = self.store.submit_run(kind, user, spec(payload))
        return 202, {"run_id": run_id, "kind": kind, "state": "submitted"}, "json"

    # -- run status + artifacts ------------------------------------------
    def _run_id(self, text: str) -> int:
        try:
            return int(text)
        except ValueError:
            raise BadRequest(f"run id must be an integer, got {text!r}") from None

    def _runs(self, parts: list[str], user: str) -> tuple[int, dict | bytes, str]:
        status = self.store.run_status(self._run_id(parts[0]))
        if status["tenant"] != user:
            # The run id was valid, but it is another tenant's: reveal
            # the ownership boundary, not the run's contents.
            raise WrongTenant(
                f"run {status['run_id']} belongs to tenant "
                f"{status['tenant']!r}, token is for {user!r}"
            )
        if len(parts) == 1:
            return 200, status, "json"
        if parts[1] != "artifacts" or len(parts) > 3:
            raise NotFound(f"no such run sub-resource {'/'.join(parts[1:])!r}")
        if len(parts) == 2:
            return 200, {"run_id": status["run_id"], "artifacts": status["artifacts"]}, "json"
        name = parts[2]
        content = self.store.get_artifact(status["run_id"], name)
        return 200, content, ("json" if name in _JSON_ARTIFACTS else "text")

    # -- benchmark baselines ---------------------------------------------
    def _bench_root(self) -> Path:
        if self.config.bench_dir is None:
            raise NotFound("this service instance serves no benchmark baselines")
        root = Path(self.config.bench_dir)
        if not root.is_dir():
            raise NotFound(f"benchmark baseline directory {str(root)!r} not found")
        return root

    def _bench(self, parts: list[str]) -> tuple[int, dict | bytes, str]:
        root = self._bench_root()
        if not parts:
            names = sorted(p.stem for p in root.glob("BENCH_*.json"))
            return 200, {"baselines": names}, "json"
        if len(parts) > 1:
            raise NotFound(f"no such bench sub-resource {'/'.join(parts)!r}")
        name = parts[0]
        # Serve only the flat BENCH_*.json namespace; anything with a
        # path separator or outside the pattern never reaches the disk.
        if not name.startswith("BENCH_") or any(sep in name for sep in "/\\.."):
            raise NotFound(f"no baseline named {name!r}")
        target = root / f"{name}.json"
        if not target.is_file():
            raise NotFound(f"no baseline named {name!r}")
        return 200, target.read_bytes(), "json"
