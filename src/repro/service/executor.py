"""The executor bridge: accepted runs in, deterministic artifacts out.

This is the single crossing from the concurrent edge into the
deterministic core, and it is built from *pure, picklable functions*:
:func:`execute_batch`, :func:`execute_experiment`,
:func:`execute_campaign` each map a stored spec to a result with no
ambient state, no wall clock in the result, and no store access.  The
:class:`ServiceExecutor` fans them over the existing
:class:`repro.harness.parallel.ParallelRunner` -- worker processes are
where the service's real parallelism lives, and each worker runs the
same byte-deterministic code path as ``python -m repro.harness``.

The drain cycle is split so SQLite stays on the event-loop thread::

    items   = executor.collect_items()      # loop thread: store reads + 'running'
    results = executor.execute_items(items)  # blocking, pure; to_thread-able
    executor.record_results(items, results)  # loop thread: artifacts + 'done'

Pending grid jobs are gathered (in run-id order) into a single *batch
spec* and executed as one pool run: every tenant's jobs compete in the
same matchmaker, whose fair share keys off the ``owner`` attribute --
which the bridge sets to the authenticated tenant, making multi-tenant
fair share an end-to-end property of the token, not a simulation knob.

:func:`replay_run` closes the loop: re-execute any stored run's spec
and compare artifacts byte-for-byte.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
from typing import Any

from repro.campaign.engine import run_campaign
from repro.campaign.spec import CampaignConfig
from repro.condor import Job, Pool, PoolConfig, ProgramImage
from repro.harness.parallel import ParallelRunner, WorkerFailure
from repro.harness.workloads import expected_result_for
from repro.jvm.program import JavaProgram, Step
from repro.obs.export import ObservationSession, to_jsonable
from repro.service.specs import build_batch_spec
from repro.service.store import RunStore, canonical_json

__all__ = [
    "ServiceExecutor",
    "canonical_dump_bytes",
    "execute_batch",
    "execute_campaign",
    "execute_experiment",
    "execute_item",
    "replay_run",
]

BATCH_RESULT_SCHEMA = "repro-service-batch-result/1"

#: Artifact names compared by :func:`replay_run` per run kind.  The
#: ``table`` artifact carries a wall-clock footer and is evidence, not
#: contract; ``batch`` is the input spec itself.
REPLAYED_ARTIFACTS = {
    "job": ("result",),
    "experiment": ("result", "trace", "metrics"),
    "campaign": ("report",),
}


def canonical_dump_bytes(obj: Any) -> bytes:
    """Exactly the bytes :func:`repro.obs.export.dump_json` writes."""
    return (json.dumps(to_jsonable(obj), sort_keys=True, indent=2) + "\n").encode()


# ---------------------------------------------------------------------------
# Pure execution functions (run in worker processes)
# ---------------------------------------------------------------------------

def _batch_job(entry: dict) -> Job:
    """One submitted grid job as a simulated Job, owner = tenant."""
    spec = entry["spec"]
    steps = [Step.compute(spec["work"])]
    if spec.get("exception"):
        steps.append(Step.throw(spec["exception"]))
    elif spec.get("exit_code"):
        steps.append(Step.exit(spec["exit_code"]))
    program = JavaProgram(name=f"Svc{entry['run_id']}", steps=steps)
    job = Job(
        job_id=f"svc.{entry['run_id']}",
        owner=entry["owner"],
        image=ProgramImage(f"svc{entry['run_id']}.class", program=program),
    )
    job.expected_result = expected_result_for(program)
    return job


def execute_batch(batch: dict) -> dict:
    """Run one deterministic pool batch; return per-job records.

    Every job's ``owner`` ad attribute is the authenticated tenant, so
    the matchmaker's fair-share ordering (least effective usage first)
    operates on real identities.  Deterministic given *batch*.
    """
    pool = Pool(PoolConfig(n_machines=batch["n_machines"], seed=batch["seed"]))
    jobs = [_batch_job(entry) for entry in batch["jobs"]]
    for job in jobs:
        pool.submit(job)
    pool.run_until_done(max_time=batch["max_time"], expected_jobs=len(jobs))
    records = []
    for entry, job in zip(batch["jobs"], jobs):
        last = job.attempts[-1] if job.attempts else None
        records.append({
            "run_id": entry["run_id"],
            "owner": entry["owner"],
            "job_state": job.state.name,
            "attempts": job.attempt_count,
            "finished_at": None if last is None else last.ended,
            "result": None if job.final_result is None else to_jsonable(job.final_result),
            "expected_result": to_jsonable(job.expected_result),
            "matches_expected": (
                job.final_result is not None
                and job.final_result.same_outcome(job.expected_result)
            ),
        })
    return {
        "schema": BATCH_RESULT_SCHEMA,
        "makespan": pool.sim.now,
        "owners": sorted({entry["owner"] for entry in batch["jobs"]}),
        "owner_usage": {
            owner: round(usage, 6)
            for owner, usage in sorted(pool.matchmaker.owner_usage.items())
        },
        "jobs": records,
    }


def execute_experiment(spec: dict) -> dict:
    """Run one named experiment exactly as the CLI does.

    The trace and metrics artifacts come from an
    :class:`ObservationSession` wrapping the same
    ``run_experiment_record`` call ``python -m repro.harness`` makes, so
    they are byte-identical to a CLI run with ``--trace``/``--metrics``
    at the same seed (the acceptance test pins this).
    """
    from repro.harness.__main__ import run_experiment_record

    with tempfile.TemporaryDirectory(prefix="repro-service-") as tmp:
        trace_path = os.path.join(tmp, "trace.jsonl")
        metrics_path = os.path.join(tmp, "metrics.json")
        with ObservationSession(trace_path=trace_path, metrics_path=metrics_path):
            record = run_experiment_record(spec["experiment"], seed=spec["seed"])
        with open(trace_path, "rb") as fh:
            trace = fh.read()
        with open(metrics_path, "rb") as fh:
            metrics = fh.read()
    return {
        "experiment": spec["experiment"],
        "seed": spec["seed"],
        "data": record["data"],
        "rendered": record["rendered"],
        "trace": trace.decode(),
        "metrics": metrics.decode(),
    }


def execute_campaign(spec: dict) -> dict:
    """Run a bounded fault-campaign matrix; return its JSON report."""
    config = CampaignConfig(
        mode=spec["mode"],
        seed=spec["seed"],
        max_order=spec["max_order"],
        kinds=None if spec["kinds"] is None else tuple(spec["kinds"]),
        n_jobs=spec["n_jobs"],
        n_machines=spec["n_machines"],
    )
    return run_campaign(config, jobs=1, shrink=True)


def execute_item(item_json: str) -> dict:
    """Worker entrypoint: one drain item in, ``{"ok", ...}`` out.

    Items travel as canonical-JSON strings (hashable, picklable, unique
    by run id).  Failures are data, not exceptions: a bad spec or a bug
    in one run must not take down the drain cycle (P1 at the edge).
    """
    item = json.loads(item_json)
    try:
        if item["kind"] == "grid-batch":
            return {"ok": True, "result": execute_batch(item["batch"])}
        if item["kind"] == "experiment":
            return {"ok": True, "result": execute_experiment(item["spec"])}
        if item["kind"] == "campaign":
            return {"ok": True, "result": execute_campaign(item["spec"])}
        return {"ok": False, "error": f"unknown item kind {item['kind']!r}"}
    except (Exception, SystemExit) as exc:  # noqa: BLE001 - a typed failure record
        # SystemExit included: CLI-layer helpers exit on bad names, and
        # a forged spec must fail its own run, not the whole drain loop.
        return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}


# ---------------------------------------------------------------------------
# The drain loop
# ---------------------------------------------------------------------------

class ServiceExecutor:
    """Drains the store's pending runs onto worker processes.

    Parameters
    ----------
    store:
        The run store; touched only from :meth:`collect_items` and
        :meth:`record_results` (the event-loop thread).
    workers:
        Process fan-out for independent items; ``1`` runs in-process
        (the deterministic-friendly mode benchmarks use).
    batch_machines / batch_seed / batch_max_time:
        Shape of the pool each grid-job batch runs on.
    """

    def __init__(
        self,
        store: RunStore,
        workers: int = 1,
        batch_machines: int = 8,
        batch_seed: int = 0,
        batch_max_time: float = 1_000_000.0,
    ):
        self.store = store
        self.workers = workers
        self.batch_machines = batch_machines
        self.batch_seed = batch_seed
        self.batch_max_time = batch_max_time

    # -- phase 1: store reads + claim (loop thread) ----------------------
    def collect_items(self) -> list[str]:
        """Claim every pending run; return drain items as JSON strings."""
        pending = self.store.pending_runs()
        if not pending:
            return []
        items: list[dict] = []
        job_entries = [row for row in pending if row["kind"] == "job"]
        if job_entries:
            batch = build_batch_spec(
                job_entries,
                n_machines=self.batch_machines,
                seed=self.batch_seed,
                max_time=self.batch_max_time,
            )
            items.append({
                "kind": "grid-batch",
                "run_ids": [entry["run_id"] for entry in batch["jobs"]],
                "batch": batch,
            })
        for row in pending:
            if row["kind"] in ("experiment", "campaign"):
                items.append({
                    "kind": row["kind"],
                    "run_id": row["run_id"],
                    "spec": row["spec"],
                })
        for row in pending:
            self.store.record_state(row["run_id"], "running")
        return [canonical_json(item) for item in items]

    # -- phase 2: pure execution (safe off-thread) -----------------------
    def execute_items(self, items: list[str]) -> list[dict]:
        """Run the items (fanned over workers); aligned with *items*.

        A worker that crashes or hangs outright surfaces as a failure
        record for every item of this cycle -- explicit, never a
        silently missing result.
        """
        runner = ParallelRunner(execute_item, workers=self.workers)
        try:
            return [outcome.value for outcome in runner.map(items)]
        except WorkerFailure as exc:
            return [{"ok": False, "error": f"worker failure: {exc}"} for _ in items]

    # -- phase 3: store writes (loop thread) -----------------------------
    def record_results(self, items: list[str], results: list[dict]) -> int:
        """Write artifacts and terminal states; return runs finished."""
        finished = 0
        for item_json, outcome in zip(items, results):
            item = json.loads(item_json)
            if item["kind"] == "grid-batch":
                finished += self._record_batch(item, outcome)
            else:
                finished += self._record_single(item, outcome)
        return finished

    def _record_batch(self, item: dict, outcome: dict) -> int:
        if not outcome["ok"]:
            for run_id in item["run_ids"]:
                self.store.record_state(run_id, "failed", detail=outcome["error"])
            return len(item["run_ids"])
        batch_bytes = canonical_dump_bytes(item["batch"])
        by_run = {record["run_id"]: record for record in outcome["result"]["jobs"]}
        for run_id in item["run_ids"]:
            record = by_run[run_id]
            self.store.put_artifact(run_id, "result", canonical_dump_bytes(record))
            self.store.put_artifact(run_id, "batch", batch_bytes)
            self.store.record_state(run_id, "done", detail=record["job_state"])
        return len(item["run_ids"])

    def _record_single(self, item: dict, outcome: dict) -> int:
        run_id = item["run_id"]
        if not outcome["ok"]:
            self.store.record_state(run_id, "failed", detail=outcome["error"])
            return 1
        result = outcome["result"]
        if item["kind"] == "experiment":
            # The result artifact uses the CLI's --json envelope, so a
            # replay via ``python -m repro.harness --json`` is a byte
            # comparison, not a parse-and-compare.
            self.store.put_artifact(run_id, "result", canonical_dump_bytes({
                "seed": result["seed"],
                "experiments": {result["experiment"]: result["data"]},
            }))
            self.store.put_artifact(run_id, "trace", result["trace"].encode())
            self.store.put_artifact(run_id, "metrics", result["metrics"].encode())
            self.store.put_artifact(run_id, "table", result["rendered"].encode())
        else:
            self.store.put_artifact(run_id, "report", canonical_dump_bytes(result))
        self.store.record_state(run_id, "done")
        return 1

    # -- composition -----------------------------------------------------
    def drain_once(self) -> int:
        """One synchronous drain cycle; returns runs finished."""
        items = self.collect_items()
        if not items:
            return 0
        return self.record_results(items, self.execute_items(items))

    async def drain_forever(self, poll_interval: float = 0.05) -> None:
        """The server's background drain task.

        Store access stays on the event-loop thread; only the pure
        execution phase moves to a thread so the loop keeps serving
        requests while the core simulates.
        """
        while True:
            items = self.collect_items()
            if not items:
                await asyncio.sleep(poll_interval)
                continue
            results = await asyncio.to_thread(self.execute_items, items)
            self.record_results(items, results)


# ---------------------------------------------------------------------------
# Replay: the store row is the reproduction
# ---------------------------------------------------------------------------

def replay_run(store: RunStore, run_id: int) -> dict:
    """Re-execute a finished run from its stored spec; compare artifacts.

    Returns ``{"run_id", "kind", "checked": {artifact: bool}, "match"}``.
    ``match`` is True iff every replay-relevant artifact came out
    byte-identical -- the boundary contract made checkable.
    """
    status = store.run_status(run_id)
    if status["state"] != "done":
        raise ValueError(
            f"run {run_id} is {status['state']!r}; only done runs replay"
        )
    kind = status["kind"]
    if kind == "job":
        batch = json.loads(store.get_artifact(run_id, "batch"))
        result = execute_batch(batch)
        by_run = {record["run_id"]: record for record in result["jobs"]}
        fresh = {"result": canonical_dump_bytes(by_run[run_id])}
    elif kind == "experiment":
        result = execute_experiment(status["spec"])
        fresh = {
            "result": canonical_dump_bytes({
                "seed": result["seed"],
                "experiments": {result["experiment"]: result["data"]},
            }),
            "trace": result["trace"].encode(),
            "metrics": result["metrics"].encode(),
        }
    elif kind == "campaign":
        fresh = {"report": canonical_dump_bytes(execute_campaign(status["spec"]))}
    else:
        raise ValueError(f"run {run_id} has unknown kind {kind!r}")
    checked = {
        name: store.get_artifact(run_id, name) == fresh[name]
        for name in REPLAYED_ARTIFACTS[kind]
    }
    return {
        "run_id": run_id,
        "kind": kind,
        "checked": checked,
        "match": all(checked.values()),
    }
