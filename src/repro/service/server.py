"""The asyncio HTTP/1.1 edge: stdlib only, typed rejections, keep-alive.

One :func:`asyncio.start_server` loop per instance.  The protocol
support is deliberately narrow -- ``GET``/``POST``, JSON bodies sized by
``Content-Length``, keep-alive by default -- because the edge's job is
not HTTP completeness but *error completeness*: every way a request can
go wrong (oversized head, oversized body, malformed request line,
unparsable spec, overload) ends in a typed JSON error and a live
connection state the client can reason about, never a hang or a bare
reset (P1 at the service scope).

Concurrency lives here and only here.  The handler calls the
transport-free :class:`~repro.service.api.ServiceApi` synchronously
(store operations are sub-millisecond); long-running work was already
decoupled by the submit/poll shape of the API, and the executor's drain
task moves actual simulation off the loop thread.
"""

from __future__ import annotations

import asyncio
import json
from time import perf_counter_ns

from repro.service.api import ServiceApi
from repro.service.errors import BadRequest, PayloadTooLarge, ServiceError
from repro.service.executor import ServiceExecutor

__all__ = ["MAX_BODY_BYTES", "MAX_HEAD_BYTES", "ServiceServer"]

#: Wall-clock hook (:func:`repro.obs.profile.install_wall`): per-request
#: handling time, measurement only -- never part of any response body.
WALL_PROFILE = None

#: Request-head (request line + headers) byte budget.
MAX_HEAD_BYTES = 32 * 1024
#: Request-body byte budget: specs are small; anything bigger is noise.
MAX_BODY_BYTES = 1 << 20

_CONTENT_TYPES = {
    "json": "application/json",
    "text": "text/plain; charset=utf-8",
    "html": "text/html; charset=utf-8",
}
_STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 401: "Unauthorized",
    403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
}


def _response_bytes(
    status: int, payload: dict | bytes, content_type: str, keep_alive: bool
) -> bytes:
    if isinstance(payload, bytes):
        body = payload
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {_CONTENT_TYPES[content_type]}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode()
    return head + body


class ServiceServer:
    """One service instance: HTTP edge + optional background drain task."""

    def __init__(
        self,
        api: ServiceApi,
        executor: ServiceExecutor | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 2048,
    ):
        self.api = api
        self.executor = executor
        self.host = host
        self.port = port
        self.backlog = backlog
        self.requests_served = 0
        self._server: asyncio.base_events.Server | None = None
        self._drain_task: asyncio.Task | None = None

    # -- lifecycle -------------------------------------------------------
    async def start(self) -> None:
        """Bind and start serving; resolves ``self.port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            backlog=self.backlog,
            limit=MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.executor is not None:
            self._drain_task = asyncio.get_running_loop().create_task(
                self.executor.drain_forever()
            )

    async def stop(self) -> None:
        """Clean shutdown: stop accepting, cancel the drain, close."""
        if self._drain_task is not None:
            self._drain_task.cancel()
            try:
                await self._drain_task
            except asyncio.CancelledError:
                pass
            self._drain_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_until_cancelled(self) -> None:
        """Run until the surrounding task is cancelled, then stop cleanly."""
        try:
            await asyncio.Event().wait()
        finally:
            await self.stop()

    # -- connection handling ---------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass  # client went away between or mid-request
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_head(self, reader: asyncio.StreamReader) -> bytes | None:
        try:
            return await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise BadRequest(
                f"request head exceeds {MAX_HEAD_BYTES} bytes",
                code="HEADERS_TOO_LARGE",
            ) from None
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Read one request, write one response; returns keep-alive."""
        try:
            head = await self._read_head(reader)
        except BadRequest as exc:
            await self._write(writer, 431, exc.to_json(), "json", keep_alive=False)
            return False
        if head is None:
            return False
        try:
            method, path, headers = self._parse_head(head)
        except BadRequest as exc:
            await self._write(writer, exc.http_status, exc.to_json(), "json", False)
            return False
        keep_alive = headers.get("connection", "keep-alive").lower() != "close"
        wall = WALL_PROFILE
        t0 = perf_counter_ns() if wall is not None else 0
        try:
            body = await self._read_body(reader, headers)
            status, payload, content_type = self.api.handle(method, path, headers, body)
        except ServiceError as exc:
            status, payload, content_type = exc.http_status, exc.to_json(), "json"
        except Exception as exc:  # noqa: BLE001 - edge of the process: typed 500
            status, payload, content_type = 500, {
                "error": {"code": "INTERNAL", "message": f"{type(exc).__name__}: {exc}"}
            }, "json"
        if wall is not None:
            wall.add(f"service.request.{method}", perf_counter_ns() - t0)
        self.requests_served += 1
        await self._write(writer, status, payload, content_type, keep_alive)
        return keep_alive

    def _parse_head(self, head: bytes) -> tuple[str, str, dict[str, str]]:
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, version = lines[0].split(" ", 2)
        except ValueError:
            raise BadRequest(f"malformed request line {lines[0]!r}") from None
        if not version.startswith("HTTP/1."):
            raise BadRequest(f"unsupported protocol {version!r}")
        if method not in ("GET", "POST"):
            raise BadRequest(f"unsupported method {method!r}", code="METHOD_NOT_ALLOWED")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise BadRequest(f"malformed header line {line!r}")
            headers[name.strip().lower()] = value.strip()
        return method, path, headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> bytes:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise BadRequest(f"bad Content-Length {length_text!r}") from None
        if length < 0:
            raise BadRequest(f"bad Content-Length {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )
        return await reader.readexactly(length) if length else b""

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict | bytes,
        content_type: str,
        keep_alive: bool,
    ) -> None:
        writer.write(_response_bytes(status, payload, content_type, keep_alive))
        await writer.drain()
