"""The persistent run store: SQLite, schema ``repro-service/1``.

Three tables, two of them append-only:

- ``runs`` -- one row per accepted submission, *inserted once and never
  updated*: the kind, the authenticated tenant, and the canonical-JSON
  spec.  The spec is the replay contract: re-executing it through the
  deterministic core reproduces the run's artifacts byte-for-byte.
- ``run_events`` -- the append-only lifecycle journal: ``submitted``,
  ``running``, ``done`` / ``failed`` rows keyed by a global sequence.
  A run's current state is the latest event, never an overwrite, so the
  full history of every run survives.
- ``artifacts`` -- named result blobs (``result``, ``trace``,
  ``metrics``, ``table``, ``batch``) written exactly once when a run
  finishes.

All access happens on one thread (the service event loop); the executor
bridge runs pure functions in workers and hands results back to the
loop for recording.  Current-state lookups are served from an in-memory
cache rebuilt from the journal on open, so admission control
(``active_count``) costs no query.
"""

from __future__ import annotations

import json
import sqlite3
from typing import Any

from repro.service.errors import NotFound

__all__ = ["STORE_SCHEMA", "RUN_STATES", "RunStore", "StoreSchemaError", "canonical_json"]

STORE_SCHEMA = "repro-service/1"

#: Lifecycle states, in order.  ``submitted`` and ``running`` count as
#: *active* for admission control; ``done`` and ``failed`` are terminal.
RUN_STATES = ("submitted", "running", "done", "failed")

_TABLES = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_id INTEGER PRIMARY KEY,
    kind   TEXT NOT NULL,
    tenant TEXT NOT NULL,
    spec   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS run_events (
    seq    INTEGER PRIMARY KEY,
    run_id INTEGER NOT NULL REFERENCES runs(run_id),
    state  TEXT NOT NULL,
    detail TEXT NOT NULL DEFAULT ''
);
CREATE INDEX IF NOT EXISTS run_events_by_run ON run_events(run_id, seq);
CREATE TABLE IF NOT EXISTS artifacts (
    run_id  INTEGER NOT NULL REFERENCES runs(run_id),
    name    TEXT NOT NULL,
    content BLOB NOT NULL,
    PRIMARY KEY (run_id, name)
);
"""


class StoreSchemaError(RuntimeError):
    """The database on disk speaks a different schema version."""


def canonical_json(obj: Any) -> str:
    """Canonical JSON text: sorted keys, fixed separators, no whitespace.

    Specs are stored and compared in this form, so "same spec" is a
    byte question, not a parse question.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class RunStore:
    """Open (or create) the run store at *path* (``:memory:`` for tests)."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._db = sqlite3.connect(path)
        self._db.executescript(_TABLES)
        row = self._db.execute("SELECT value FROM meta WHERE key='schema'").fetchone()
        if row is None:
            self._db.execute(
                "INSERT INTO meta(key, value) VALUES ('schema', ?)", (STORE_SCHEMA,)
            )
            self._db.commit()
        elif row[0] != STORE_SCHEMA:
            self._db.close()
            raise StoreSchemaError(
                f"store at {path!r} has schema {row[0]!r}, this build speaks {STORE_SCHEMA!r}"
            )
        #: run_id -> current state, rebuilt from the journal on open.
        self._states: dict[int, str] = {}
        for run_id, state in self._db.execute(
            "SELECT run_id, state FROM run_events ORDER BY seq"
        ):
            self._states[run_id] = state

    def close(self) -> None:
        self._db.close()

    # -- submission ------------------------------------------------------
    def submit_run(self, kind: str, tenant: str, spec: dict) -> int:
        """Record an accepted submission; return its run id.

        The runs row and the ``submitted`` journal entry commit together:
        a run either exists with its full replayable spec or not at all.
        """
        cursor = self._db.execute(
            "INSERT INTO runs(kind, tenant, spec) VALUES (?, ?, ?)",
            (kind, tenant, canonical_json(spec)),
        )
        run_id = cursor.lastrowid
        self._db.execute(
            "INSERT INTO run_events(run_id, state) VALUES (?, 'submitted')", (run_id,)
        )
        self._db.commit()
        self._states[run_id] = "submitted"
        return run_id

    # -- lifecycle -------------------------------------------------------
    def record_state(self, run_id: int, state: str, detail: str = "") -> None:
        """Append a lifecycle event (the journal never updates in place)."""
        if state not in RUN_STATES:
            raise ValueError(f"unknown run state {state!r}; want one of {RUN_STATES}")
        if run_id not in self._states:
            raise NotFound(f"no run {run_id}")
        self._db.execute(
            "INSERT INTO run_events(run_id, state, detail) VALUES (?, ?, ?)",
            (run_id, state, detail),
        )
        self._db.commit()
        self._states[run_id] = state

    # -- queries ---------------------------------------------------------
    def run_row(self, run_id: int) -> dict | None:
        row = self._db.execute(
            "SELECT run_id, kind, tenant, spec FROM runs WHERE run_id=?", (run_id,)
        ).fetchone()
        if row is None:
            return None
        return {
            "run_id": row[0],
            "kind": row[1],
            "tenant": row[2],
            "spec": json.loads(row[3]),
        }

    def run_status(self, run_id: int) -> dict:
        """The run's current view: row + state + latest detail."""
        row = self.run_row(run_id)
        if row is None:
            raise NotFound(f"no run {run_id}")
        state, detail = self._db.execute(
            "SELECT state, detail FROM run_events WHERE run_id=? ORDER BY seq DESC LIMIT 1",
            (run_id,),
        ).fetchone()
        row["state"] = state
        row["detail"] = detail
        row["artifacts"] = self.artifact_names(run_id)
        return row

    def pending_runs(self) -> list[dict]:
        """Runs still in ``submitted`` state, in submission (run id) order."""
        return [
            row
            for run_id in sorted(self._states)
            if self._states[run_id] == "submitted"
            if (row := self.run_row(run_id)) is not None
        ]

    def active_count(self) -> int:
        """Submitted + running runs: the admission-control gauge."""
        return sum(1 for state in self._states.values() if state in ("submitted", "running"))

    def queue_stats(self) -> dict:
        """Aggregate queue view: totals by state and by tenant."""
        by_state = dict.fromkeys(RUN_STATES, 0)
        for state in self._states.values():
            by_state[state] += 1
        by_tenant: dict[str, int] = {}
        for tenant, count in self._db.execute(
            "SELECT tenant, COUNT(*) FROM runs GROUP BY tenant ORDER BY tenant"
        ):
            by_tenant[tenant] = count
        return {
            "total": len(self._states),
            "active": self.active_count(),
            "by_state": by_state,
            "by_tenant": by_tenant,
        }

    # -- artifacts -------------------------------------------------------
    def put_artifact(self, run_id: int, name: str, content: bytes) -> None:
        if run_id not in self._states:
            raise NotFound(f"no run {run_id}")
        self._db.execute(
            "INSERT OR REPLACE INTO artifacts(run_id, name, content) VALUES (?, ?, ?)",
            (run_id, name, content),
        )
        self._db.commit()

    def get_artifact(self, run_id: int, name: str) -> bytes:
        row = self._db.execute(
            "SELECT content FROM artifacts WHERE run_id=? AND name=?", (run_id, name)
        ).fetchone()
        if row is None:
            raise NotFound(f"run {run_id} has no artifact {name!r}")
        return bytes(row[0])

    def artifact_names(self, run_id: int) -> list[str]:
        return [
            name
            for (name,) in self._db.execute(
                "SELECT name FROM artifacts WHERE run_id=? ORDER BY name", (run_id,)
            )
        ]

    def event_journal(self, run_id: int) -> list[tuple[str, str]]:
        """The full (state, detail) history -- the append-only evidence."""
        return list(
            self._db.execute(
                "SELECT state, detail FROM run_events WHERE run_id=? ORDER BY seq",
                (run_id,),
            )
        )
