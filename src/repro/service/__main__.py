"""Service entrypoint: ``python -m repro.service``.

Subcommands::

    serve       run the HTTP edge (default command)
    mint-token  mint a bearer token for a user
    replay      re-execute a stored run and verify byte-identity

Examples::

    python -m repro.service serve --port 8071 --db runs.db --secret s3cret
    python -m repro.service mint-token --secret s3cret --user alice
    python -m repro.service replay --db runs.db 7

``serve`` installs SIGINT/SIGTERM handlers for a clean shutdown: stop
accepting, cancel the drain task, close the store, exit 0 -- the CI
smoke job asserts exactly this.  Also reachable as
``python -m repro.harness serve ...``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys
import time

from repro.harness.parallel import positive_worker_count
from repro.service.api import ServiceApi, ServiceConfig
from repro.service.auth import mint_token
from repro.service.executor import ServiceExecutor, replay_run
from repro.service.server import ServiceServer
from repro.service.store import RunStore

__all__ = ["main"]


def _secret_from(args: argparse.Namespace) -> str:
    if args.secret_file:
        with open(args.secret_file, encoding="utf-8") as fh:
            secret = fh.read().strip()
    else:
        secret = args.secret or ""
    if not secret:
        raise SystemExit("a service secret is required: pass --secret or --secret-file")
    return secret


async def _serve(args: argparse.Namespace, secret: str) -> int:
    store = RunStore(args.db)
    api = ServiceApi(
        store,
        ServiceConfig(
            secret=secret,
            queue_limit=args.queue_limit,
            bench_dir=args.bench_dir,
            results_db=None if args.results_db == "none" else args.results_db,
        ),
    )
    executor = ServiceExecutor(
        store,
        workers=args.workers,
        batch_machines=args.machines,
        batch_seed=args.batch_seed,
    )
    server = ServiceServer(api, executor=executor, host=args.host, port=args.port)
    await server.start()
    console = "off" if api.results_web is None else f"/console <- {args.results_db}"
    print(
        f"repro.service listening on http://{server.host}:{server.port} "
        f"(db={args.db}, workers={args.workers}, queue_limit={args.queue_limit}, "
        f"console={console})",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    stopping = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stopping.set)
    await stopping.wait()
    await server.stop()
    store.close()
    print("repro.service stopped cleanly", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Grid-as-a-service edge over the deterministic reproduction.",
    )
    commands = parser.add_subparsers(dest="command")

    serve = commands.add_parser("serve", help="run the HTTP service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8071)
    serve.add_argument("--db", default="repro-service.db",
                       help="SQLite run store path (':memory:' for ephemeral)")
    serve.add_argument("--secret", default=None, help="service secret (or --secret-file)")
    serve.add_argument("--secret-file", default=None,
                       help="file containing the service secret")
    serve.add_argument("--workers", type=positive_worker_count, default=1, metavar="N",
                       help="worker processes for accepted runs (1 = in-process)")
    serve.add_argument("--queue-limit", type=int, default=1000, metavar="N",
                       help="max active (submitted+running) runs before "
                            "submissions are rejected with QUEUE_FULL")
    serve.add_argument("--machines", type=int, default=8, metavar="N",
                       help="pool size for grid-job batches")
    serve.add_argument("--batch-seed", type=int, default=0, metavar="SEED",
                       help="seed for grid-job batch pools")
    serve.add_argument("--bench-dir", default="benchmarks/baseline",
                       help="directory of BENCH_*.json baselines to serve")
    serve.add_argument("--results-db", default="repro-results.db", metavar="PATH",
                       help="results store backing /console and /v1/results "
                            "(default: repro-results.db; 'none' disables)")

    mint = commands.add_parser("mint-token", help="mint a bearer token")
    mint.add_argument("--secret", default=None)
    mint.add_argument("--secret-file", default=None)
    mint.add_argument("--user", required=True)
    mint.add_argument("--ttl", type=int, default=3600, metavar="SECONDS",
                      help="token lifetime from now")

    replay = commands.add_parser(
        "replay", help="re-execute a stored run; verify artifacts byte-identical"
    )
    replay.add_argument("--db", required=True)
    replay.add_argument("run_id", type=int)

    args = parser.parse_args(argv or ["serve"])
    if args.command == "mint-token":
        print(mint_token(_secret_from(args), args.user, int(time.time()) + args.ttl))
        return 0
    if args.command == "replay":
        store = RunStore(args.db)
        try:
            verdict = replay_run(store, args.run_id)
        finally:
            store.close()
        for name, ok in sorted(verdict["checked"].items()):
            print(f"replay run {args.run_id} [{verdict['kind']}] "
                  f"{name}: {'byte-identical' if ok else 'MISMATCH'}")
        return 0 if verdict["match"] else 1
    if args.queue_limit < 1:
        serve.error(f"--queue-limit must be >= 1, got {args.queue_limit}")
    return asyncio.run(_serve(args, _secret_from(args)))


if __name__ == "__main__":
    sys.exit(main())
