"""The asyncio service client (the diracx "client" layer).

One :class:`ServiceClient` owns one keep-alive connection; thousands of
concurrent instances in a single loop is the load-generator benchmark's
whole workload.  Server-side rejections surface as
:class:`ServiceApiError` carrying the typed ``code`` from the error
envelope, so callers dispatch on ``exc.code`` exactly as they would on
a result -- errors are data at this layer too.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass

__all__ = ["ClientResponse", "ServiceApiError", "ServiceClient"]


class ServiceApiError(RuntimeError):
    """A typed (status >= 400) response from the service."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(f"[{status} {code}] {message}")
        self.status = status
        self.code = code
        self.message = message


@dataclass(frozen=True)
class ClientResponse:
    """One raw exchange: status, parsed headers, body bytes."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self):
        return json.loads(self.body)


class ServiceClient:
    """Async client for one service endpoint.

    Usage::

        client = ServiceClient("127.0.0.1", port, token=token)
        try:
            run = await client.submit_job({"work": 5.0})
            status = await client.wait(run["run_id"])
            trace = await client.artifact(run["run_id"], "trace")
        finally:
            await client.close()
    """

    def __init__(self, host: str, port: int, token: str | None = None):
        self.host = host
        self.port = port
        self.token = token
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    # -- connection ------------------------------------------------------
    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
        self._reader = self._writer = None

    # -- raw request -----------------------------------------------------
    async def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> ClientResponse:
        """One HTTP exchange on the client's keep-alive connection.

        Reconnects once if the pooled connection turns out dead (the
        server closed it between requests) -- a retry of an unsent
        request, never a blind resend of one that may have executed.
        """
        if self._reader is None:
            await self._connect()
        try:
            return await self._exchange(method, path, payload)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            await self.close()
            await self._connect()
            return await self._exchange(method, path, payload)

    async def _exchange(
        self, method: str, path: str, payload: dict | None
    ) -> ClientResponse:
        assert self._reader is not None and self._writer is not None
        body = b"" if payload is None else json.dumps(payload).encode()
        head = [f"{method} {path} HTTP/1.1", f"Host: {self.host}:{self.port}"]
        if self.token:
            head.append(f"Authorization: Bearer {self.token}")
        if body:
            head.append("Content-Type: application/json")
        head.append(f"Content-Length: {len(body)}")
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await self._writer.drain()
        status_line = (await self._reader.readuntil(b"\r\n")).decode("latin-1")
        status = int(status_line.split(" ", 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = (await self._reader.readuntil(b"\r\n")).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        content = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status=status, headers=headers, body=content)

    async def _json(self, method: str, path: str, payload: dict | None = None) -> dict:
        response = await self.request(method, path, payload)
        if response.status >= 400:
            try:
                envelope = response.json()["error"]
            except (json.JSONDecodeError, KeyError):
                envelope = {"code": "INTERNAL", "message": response.body.decode(errors="replace")}
            raise ServiceApiError(response.status, envelope["code"], envelope["message"])
        return response.json()

    # -- the API surface -------------------------------------------------
    async def health(self) -> dict:
        return await self._json("GET", "/v1/health")

    async def submit_job(self, spec: dict) -> dict:
        return await self._json("POST", "/v1/jobs", spec)

    async def submit_experiment(self, spec: dict) -> dict:
        return await self._json("POST", "/v1/experiments", spec)

    async def submit_campaign(self, spec: dict) -> dict:
        return await self._json("POST", "/v1/campaigns", spec)

    async def queue(self) -> dict:
        return await self._json("GET", "/v1/queue")

    async def run_status(self, run_id: int) -> dict:
        return await self._json("GET", f"/v1/runs/{run_id}")

    async def artifact(self, run_id: int, name: str) -> bytes:
        response = await self.request("GET", f"/v1/runs/{run_id}/artifacts/{name}")
        if response.status >= 400:
            envelope = response.json()["error"]
            raise ServiceApiError(response.status, envelope["code"], envelope["message"])
        return response.body

    async def bench_baselines(self) -> dict:
        return await self._json("GET", "/v1/bench")

    async def bench_baseline(self, name: str) -> dict:
        return await self._json("GET", f"/v1/bench/{name}")

    async def wait(
        self, run_id: int, timeout: float = 60.0, poll_interval: float = 0.05
    ) -> dict:
        """Poll until the run is terminal; return its final status.

        Raises :class:`TimeoutError` (never returns a half-finished
        status as if it were final) when *timeout* passes first.
        """
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            status = await self.run_status(run_id)
            if status["state"] in ("done", "failed"):
                return status
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"run {run_id} still {status['state']!r} after {timeout}s"
                )
            await asyncio.sleep(poll_interval)
