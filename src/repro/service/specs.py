"""Request-spec validation: payloads in, normalized replayable specs out.

Every POST body is validated here into a *normalized spec* -- the exact
dict the store persists and the executor replays.  Normalization is the
admission half of the boundary contract: nothing under-specified or
operator-hostile reaches the deterministic core, and nothing the client
sends can smuggle an identity (the ``owner`` of every simulated job is
the authenticated tenant; a spec claiming one is rejected outright).

Three run kinds:

- ``job``        -- one simulated grid job (compute + optional ending);
                    batched with other pending jobs into a single
                    deterministic pool run.
- ``experiment`` -- one named paper experiment at a seed; artifacts are
                    the CLI-identical trace/metrics/result.
- ``campaign``   -- a fault-campaign matrix sweep.
"""

from __future__ import annotations

from typing import Any

from repro.campaign.spec import CATALOGUE
from repro.service.errors import BadRequest

__all__ = [
    "BATCH_SCHEMA",
    "EXCEPTION_NAMES",
    "build_batch_spec",
    "normalize_campaign_spec",
    "normalize_experiment_spec",
    "normalize_job_spec",
]

BATCH_SCHEMA = "repro-service-batch/1"

#: Program exceptions a submitted job may end in (the workload
#: generator's set: program-scope results the user wants to see).
EXCEPTION_NAMES = (
    "ArithmeticException",
    "ArrayIndexOutOfBoundsException",
    "NullPointerException",
)

#: Work-seconds cap per job: keeps one tenant's submission from pinning
#: a worker on a week of simulated compute.
MAX_WORK = 10_000.0
MAX_CAMPAIGN_ORDER = 2
MAX_CAMPAIGN_JOBS = 16
MAX_CAMPAIGN_MACHINES = 16

_KIND_NAMES = tuple(info.kind for info in CATALOGUE)


def _require_mapping(payload: Any) -> dict:
    if not isinstance(payload, dict):
        raise BadRequest(f"request body must be a JSON object, got {type(payload).__name__}")
    return payload


def _reject_unknown(payload: dict, allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise BadRequest(
            f"unknown field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


def _int_field(payload: dict, name: str, default: int, lo: int, hi: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{name!r} must be an integer")
    if not lo <= value <= hi:
        raise BadRequest(f"{name!r} must be in [{lo}, {hi}], got {value}")
    return value


def normalize_job_spec(payload: Any) -> dict:
    """Validate a grid-job submission.

    Fields: ``work`` (simulated cpu-seconds, required), and at most one
    of ``exception`` (program exception name) / ``exit_code`` (1..9).
    No ``owner`` field exists on purpose -- identity comes from the
    bearer token alone.
    """
    payload = _require_mapping(payload)
    if "owner" in payload:
        raise BadRequest(
            "'owner' is not a job field: the job owner is the authenticated "
            "user from the bearer token"
        )
    _reject_unknown(payload, ("work", "exception", "exit_code"))
    work = payload.get("work")
    if isinstance(work, bool) or not isinstance(work, (int, float)):
        raise BadRequest("'work' (simulated cpu-seconds) is required and must be a number")
    if not 0.0 < float(work) <= MAX_WORK:
        raise BadRequest(f"'work' must be in (0, {MAX_WORK:g}], got {work!r}")
    exception = payload.get("exception")
    exit_code = payload.get("exit_code", 0)
    if exception is not None and exception not in EXCEPTION_NAMES:
        raise BadRequest(
            f"'exception' must be one of {', '.join(EXCEPTION_NAMES)}, got {exception!r}"
        )
    if isinstance(exit_code, bool) or not isinstance(exit_code, int) or not 0 <= exit_code <= 9:
        raise BadRequest(f"'exit_code' must be an integer in [0, 9], got {exit_code!r}")
    if exception is not None and exit_code:
        raise BadRequest("give 'exception' or 'exit_code', not both")
    return {"work": float(work), "exception": exception, "exit_code": exit_code}


def normalize_experiment_spec(payload: Any) -> dict:
    """Validate an experiment-launch submission: name + seed."""
    # The canonical registry lives with the CLI; imported lazily so the
    # spec layer has no import-time dependency on the harness entrypoint.
    from repro.harness.__main__ import EXPERIMENTS

    payload = _require_mapping(payload)
    _reject_unknown(payload, ("experiment", "seed"))
    name = payload.get("experiment")
    if name not in EXPERIMENTS:
        raise BadRequest(
            f"unknown experiment {name!r}; try one of: {', '.join(sorted(EXPERIMENTS))}"
        )
    seed = _int_field(payload, "seed", default=0, lo=0, hi=2**31 - 1)
    return {"experiment": name, "seed": seed}


def normalize_campaign_spec(payload: Any) -> dict:
    """Validate a campaign-launch submission (bounded matrix sweep)."""
    payload = _require_mapping(payload)
    _reject_unknown(
        payload, ("mode", "seed", "max_order", "kinds", "n_jobs", "n_machines")
    )
    mode = payload.get("mode", "scoped")
    if mode not in ("scoped", "classic", "naive"):
        raise BadRequest(f"'mode' must be scoped, classic, or naive, got {mode!r}")
    kinds = payload.get("kinds")
    if kinds is not None:
        if not isinstance(kinds, list) or not kinds:
            raise BadRequest("'kinds' must be a non-empty list of fault kinds")
        bad = sorted(set(kinds) - set(_KIND_NAMES))
        if bad:
            raise BadRequest(
                f"unknown fault kind(s) {', '.join(map(repr, bad))}; "
                f"catalogue: {', '.join(_KIND_NAMES)}"
            )
        kinds = sorted(set(kinds))
    return {
        "mode": mode,
        "seed": _int_field(payload, "seed", default=0, lo=0, hi=2**31 - 1),
        "max_order": _int_field(payload, "max_order", default=1, lo=1, hi=MAX_CAMPAIGN_ORDER),
        "kinds": kinds,
        "n_jobs": _int_field(payload, "n_jobs", default=4, lo=1, hi=MAX_CAMPAIGN_JOBS),
        "n_machines": _int_field(
            payload, "n_machines", default=3, lo=1, hi=MAX_CAMPAIGN_MACHINES
        ),
    }


def build_batch_spec(
    entries: list[dict],
    n_machines: int,
    seed: int,
    max_time: float,
) -> dict:
    """The deterministic batch spec for a set of pending job runs.

    *entries* are ``{"run_id", "tenant", "spec"}`` in run-id order.
    The batch is fully specified by this dict: replaying it through
    :func:`repro.service.executor.execute_batch` reproduces every
    per-job record byte-for-byte.
    """
    return {
        "schema": BATCH_SCHEMA,
        "seed": seed,
        "n_machines": n_machines,
        "max_time": max_time,
        "jobs": [
            {
                "run_id": entry["run_id"],
                "owner": entry["tenant"],
                "spec": entry["spec"],
            }
            for entry in sorted(entries, key=lambda e: e["run_id"])
        ],
    }
