"""Grid-as-a-service: the concurrent edge over the deterministic core.

The paper's error-scope discipline is a statement about *system
boundaries*: every error is handled at the scope that owns it, and the
layer above sees a clean interface.  This package is that boundary as
code.  Below it sits the byte-deterministic simulation (no wall clock,
no asyncio, no threads); above it sits an ordinary asyncio HTTP/JSON
service that takes heavy concurrent traffic, authenticates tenants,
queues work in a persistent store, and fans accepted runs onto worker
processes.

Layering (diracx-style routers / logic / db / client):

- :mod:`repro.service.server` -- asyncio HTTP/1.1 edge (stdlib only).
- :mod:`repro.service.api`    -- versioned routes and request logic.
- :mod:`repro.service.store`  -- SQLite run/artifact store
  (schema ``repro-service/1``; runs and lifecycle events append-only).
- :mod:`repro.service.auth`   -- per-user HMAC bearer tokens, grown from
  :mod:`repro.chirp.auth`'s shared-secret derivation.
- :mod:`repro.service.executor` -- the only bridge back into the core:
  pure, picklable execute functions fanned over
  :class:`repro.harness.parallel.ParallelRunner`.
- :mod:`repro.service.client` -- asyncio client used by tests, CI, and
  the load-generator benchmark.

The boundary contract (DESIGN.md): every run the service accepts is
recorded with its full spec before execution, and replays bit-identically
through the existing CLI -- real concurrency lives only at the edge.
"""

from repro.service.api import ServiceApi, ServiceConfig
from repro.service.auth import mint_token, verify_token
from repro.service.client import ServiceApiError, ServiceClient
from repro.service.errors import (
    AuthError,
    BadRequest,
    NotFound,
    QueueFull,
    ServiceError,
    WrongTenant,
)
from repro.service.executor import ServiceExecutor, replay_run
from repro.service.server import ServiceServer
from repro.service.store import RunStore

__all__ = [
    "AuthError",
    "BadRequest",
    "NotFound",
    "QueueFull",
    "RunStore",
    "ServiceApi",
    "ServiceApiError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceExecutor",
    "ServiceServer",
    "WrongTenant",
    "mint_token",
    "replay_run",
    "verify_token",
]
