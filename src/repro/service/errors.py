"""Typed service errors: every rejection has a stable code and HTTP status.

The paper's P1 ("a program must not generate an implicit error as a
result of receiving an explicit error") applied to a service edge:
clients never see a hung socket, a bare traceback, or a silently dropped
request.  Every failure the edge can produce is one of these types, and
each serialises to the same JSON envelope::

    {"error": {"code": "QUEUE_FULL", "message": "..."}}

so a client can dispatch on ``code`` without parsing prose.
"""

from __future__ import annotations

__all__ = [
    "AuthError",
    "BadRequest",
    "NotFound",
    "PayloadTooLarge",
    "QueueFull",
    "ServiceError",
    "WrongTenant",
]


class ServiceError(Exception):
    """Base of every typed rejection the service produces."""

    #: Stable machine-readable code; subclasses set a default and
    #: callers may narrow it (e.g. ``TOKEN_EXPIRED`` under 401).
    code = "INTERNAL"
    http_status = 500

    def __init__(self, message: str, code: str | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    @property
    def message(self) -> str:
        return self.args[0] if self.args else ""

    def to_json(self) -> dict:
        """The wire envelope for this rejection."""
        return {"error": {"code": self.code, "message": self.message}}


class BadRequest(ServiceError):
    """The request is malformed: bad JSON, bad spec, bad parameter."""

    code = "BAD_REQUEST"
    http_status = 400


class AuthError(ServiceError):
    """The caller is not authenticated.

    ``code`` narrows the reason: ``UNAUTHENTICATED`` (no credentials),
    ``TOKEN_INVALID`` (garbled, wrong signature, wrong service secret),
    ``TOKEN_EXPIRED`` (signature fine, lifetime over).
    """

    code = "UNAUTHENTICATED"
    http_status = 401


class WrongTenant(ServiceError):
    """Authenticated, but the resource belongs to another tenant."""

    code = "WRONG_TENANT"
    http_status = 403


class NotFound(ServiceError):
    """No such route, run, or artifact."""

    code = "NOT_FOUND"
    http_status = 404


class PayloadTooLarge(ServiceError):
    """The request body exceeds the service's byte budget."""

    code = "PAYLOAD_TOO_LARGE"
    http_status = 413


class QueueFull(ServiceError):
    """Graceful rejection under load: the admission queue is at capacity.

    The resilience-pattern reading: rejecting at admission with a typed
    error is the service-scope handler for overload; accepting and then
    failing implicitly would push the error into the client's scope in
    unrecognisable clothing.
    """

    code = "QUEUE_FULL"
    http_status = 429
