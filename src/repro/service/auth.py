"""Per-user HMAC bearer tokens, grown from the Chirp shared secret.

:mod:`repro.chirp.auth` derives one shared secret per execution and
reveals it through the local file system -- "secure to the same degree
as the local system".  The service edge needs more: many users, over the
network, with expiry.  The growth path keeps the same shape:

1. The operator holds one *service secret* (the analogue of the local
   file system's trust root).
2. Each user gets a derived secret, ``HMAC(service_secret, user)`` --
   per-user, deterministic, never stored.
3. A bearer token is ``sv1.<user>.<expires_at>.<signature>`` where the
   signature is ``HMAC(user_secret, "sv1.<user>.<expires_at>")``.

Verification recomputes the signature from the presented user name and
compares with :func:`repro.chirp.auth.secrets_equal` (constant time),
so a token minted under a different service secret -- or for a
different user -- is indistinguishable from garbage: ``TOKEN_INVALID``.
The authenticated user name is what the executor writes into each
simulated job's ``owner`` ClassAd attribute, which is exactly the
identity the matchmaker's fair share keys off -- multi-tenant fair
share flows from the token, not from anything the client claims in a
request body.

Wall-clock time exists only up here at the edge: ``verify_token`` takes
``now`` explicitly and the deterministic core below never sees it.
"""

from __future__ import annotations

import hashlib
import hmac
import re

from repro.chirp.auth import secrets_equal
from repro.service.errors import AuthError, BadRequest

__all__ = [
    "TOKEN_VERSION",
    "bearer_user",
    "derive_user_secret",
    "mint_token",
    "verify_token",
]

TOKEN_VERSION = "sv1"

#: User names are tenant identifiers and ClassAd ``owner`` values; keep
#: them to a shell- and ad-safe charset.  Dots are allowed (token
#: parsing splits from the right), colons and whitespace are not.
_USER_RE = re.compile(r"^[a-z0-9][a-z0-9_.-]{0,63}$")


def derive_user_secret(service_secret: str, user: str) -> str:
    """The per-user secret: ``HMAC(service_secret, user)``, hex.

    Deterministic and never persisted -- the store holds no credential
    material, so there is nothing to leak from a copied database.
    """
    return hmac.new(
        ("service:" + service_secret).encode(),
        ("user:" + user).encode(),
        hashlib.sha256,
    ).hexdigest()


def _signature(service_secret: str, user: str, expires_at: int) -> str:
    payload = f"{TOKEN_VERSION}.{user}.{expires_at}"
    return hmac.new(
        derive_user_secret(service_secret, user).encode(),
        payload.encode(),
        hashlib.sha256,
    ).hexdigest()


def mint_token(service_secret: str, user: str, expires_at: int) -> str:
    """Mint a bearer token for *user* valid until *expires_at* (unix s)."""
    if not _USER_RE.match(user):
        raise BadRequest(
            f"invalid user name {user!r}: want lowercase [a-z0-9][a-z0-9_.-]*, "
            f"at most 64 characters"
        )
    expires_at = int(expires_at)
    return f"{TOKEN_VERSION}.{user}.{expires_at}.{_signature(service_secret, user, expires_at)}"


def verify_token(service_secret: str, token: str, now: float) -> str:
    """Verify *token*; return the authenticated user name.

    Raises :class:`AuthError` with code ``TOKEN_INVALID`` for anything
    structurally or cryptographically wrong (garbled, truncated, wrong
    user, wrong service secret) and ``TOKEN_EXPIRED`` only once the
    signature itself has checked out.
    """
    invalid = AuthError("bearer token is not valid", code="TOKEN_INVALID")
    head, _, signature = token.rpartition(".")
    head, _, expires_text = head.rpartition(".")
    version, _, user = head.partition(".")
    if version != TOKEN_VERSION or not _USER_RE.match(user):
        raise invalid
    try:
        expires_at = int(expires_text)
    except ValueError:
        raise invalid from None
    if not secrets_equal(signature, _signature(service_secret, user, expires_at)):
        raise invalid
    if now > expires_at:
        raise AuthError(
            f"bearer token for {user!r} expired at {expires_at}", code="TOKEN_EXPIRED"
        )
    return user


def bearer_user(service_secret: str, authorization: str | None, now: float) -> str:
    """Authenticate an ``Authorization`` header; return the user name."""
    if not authorization:
        raise AuthError(
            "missing Authorization header; send 'Authorization: Bearer <token>'",
            code="UNAUTHENTICATED",
        )
    scheme, _, token = authorization.partition(" ")
    if scheme.lower() != "bearer" or not token.strip():
        raise AuthError(
            "malformed Authorization header; want 'Bearer <token>'",
            code="TOKEN_INVALID",
        )
    return verify_token(service_secret, token.strip(), now)
