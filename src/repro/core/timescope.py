"""Time-dependent scope resolution (paper §5).

    "The appropriate response to an error may be unclear if its scope is
    indeterminate. ... A failure to communicate for one second may be of
    network scope, but a failure to communicate for a year likely has
    larger scope.  To distinguish between the two, a system must be given
    some guidance in the form of timeouts or other resource constraints
    from the user or administrator."

:class:`TimeScopeEscalator` implements that guidance: it watches repeated
failures against one target and answers "what scope should we assign this
failure *now*?", escalating through a user-supplied ladder of
``(elapsed_seconds, scope)`` rungs as the outage persists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.scope import ErrorScope

__all__ = ["EscalationLadder", "TimeScopeEscalator"]

#: The default ladder: a blip is process scope (retry the call); a
#: minutes-long outage means the resource is gone (retry elsewhere); an
#: hours-long outage means this job's whole arrangement is suspect.
DEFAULT_LADDER: tuple[tuple[float, ErrorScope], ...] = (
    (0.0, ErrorScope.PROCESS),
    (60.0, ErrorScope.REMOTE_RESOURCE),
    (3600.0, ErrorScope.JOB),
)


@dataclass(frozen=True)
class EscalationLadder:
    """An ordered sequence of (minimum outage duration, scope) rungs."""

    rungs: tuple[tuple[float, ErrorScope], ...] = DEFAULT_LADDER

    def __post_init__(self) -> None:
        durations = [d for d, _ in self.rungs]
        if not durations or durations[0] != 0.0:
            raise ValueError("ladder must start at duration 0.0")
        if durations != sorted(durations):
            raise ValueError("ladder durations must be non-decreasing")
        scopes = [s for _, s in self.rungs]
        if scopes != sorted(scopes):
            raise ValueError("ladder scopes must widen monotonically")

    def scope_for(self, outage_duration: float) -> ErrorScope:
        """The scope assigned to a failure *outage_duration* seconds in."""
        chosen = self.rungs[0][1]
        for min_duration, scope in self.rungs:
            if outage_duration >= min_duration:
                chosen = scope
        return chosen


@dataclass
class _TargetState:
    first_failure: float | None = None
    failures: int = 0


class TimeScopeEscalator:
    """Tracks failures per target and assigns time-escalated scopes."""

    def __init__(self, ladder: EscalationLadder | None = None):
        self.ladder = ladder or EscalationLadder()
        self._targets: dict[str, _TargetState] = {}

    def record_failure(self, target: str, now: float) -> ErrorScope:
        """One more failure against *target* at time *now*; returns the
        scope the failure should currently be assigned."""
        state = self._targets.setdefault(target, _TargetState())
        if state.first_failure is None:
            state.first_failure = now
        state.failures += 1
        return self.ladder.scope_for(now - state.first_failure)

    def record_success(self, target: str) -> None:
        """Contact restored: the outage clock for *target* resets."""
        self._targets.pop(target, None)

    def outage_duration(self, target: str, now: float) -> float:
        """Seconds since *target* first started failing (0 if healthy)."""
        state = self._targets.get(target)
        if state is None or state.first_failure is None:
            return 0.0
        return now - state.first_failure

    def failures(self, target: str) -> int:
        state = self._targets.get(target)
        return state.failures if state else 0
