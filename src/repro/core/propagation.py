"""Scope managers and the propagation engine (Principle 3).

    "An error must be propagated to the program that manages its scope."

A :class:`ManagementChain` is an ordered sequence of :class:`ScopeManager`
objects, innermost first -- for the Java Universe: program, wrapper, jvm,
starter, shadow, schedd, user (Figure 3).  ``propagate()`` walks an error
outward from its discoverer until it reaches the first manager whose
scope set contains the error's scope.  That manager *handles* the error:
it may **mask** it (apply fault tolerance: retry, pick another replica),
or **report** it outward as a new explicit error at its own level --
never let it continue in its raw form.

Every step is recorded in a :class:`PropagationTrace`, the input to the
principle auditor and to the experiment metrics.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.errors import GridError
from repro.core.scope import ErrorScope

__all__ = [
    "Action",
    "ManagementChain",
    "PropagationTrace",
    "ScopeManager",
    "TraceEvent",
]


class Action(enum.Enum):
    """What a manager decides to do with an error delivered to it."""

    MASK = "mask"  # absorbed: retry / replica / ignore; invisible above
    REPORT = "report"  # handled: re-presented outward at this manager's level
    ESCALATE = "escalate"  # not mine: pass to the next manager out


class EventType(enum.Enum):
    """What happened to an error at one step of its journey."""

    DISCOVERED = "discovered"
    ESCALATED = "escalated"
    DELIVERED = "delivered"  # reached the manager of its scope
    MASKED = "masked"
    REPORTED = "reported"
    MISHANDLED = "mishandled"  # consumed by a manager that does NOT manage it
    UNMANAGED = "unmanaged"  # fell off the outer end of the chain
    CONVERTED = "converted"  # explicit -> escaping at an interface


@dataclass(frozen=True)
class TraceEvent:
    """One step in an error's journey through the chain."""

    time: float
    event: EventType
    manager: str
    error: GridError

    def __str__(self) -> str:
        return f"t={self.time:.3f} {self.event.value:>10} @{self.manager}: {self.error}"


class PropagationTrace:
    """An append-only record of propagation steps across a whole run."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def record(self, time: float, event: EventType, manager: str, error: GridError) -> None:
        self.events.append(TraceEvent(time, event, manager, error))

    # -- queries ---------------------------------------------------------
    def for_error(self, error: GridError) -> list[TraceEvent]:
        """All events for *error* (matched by stable ``error_id``)."""
        return [e for e in self.events if e.error.error_id == error.error_id]

    def terminal(self, error: GridError) -> TraceEvent | None:
        """The final event of *error*'s journey, if it has ended."""
        journey = self.for_error(error)
        for ev in reversed(journey):
            if ev.event in (
                EventType.MASKED,
                EventType.REPORTED,
                EventType.MISHANDLED,
                EventType.UNMANAGED,
            ):
                return ev
        return None

    def count(self, event: EventType) -> int:
        return sum(1 for e in self.events if e.event is event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def render(self) -> str:
        """A human-readable dump of the whole trace."""
        return "\n".join(str(e) for e in self.events)


#: Decides MASK vs REPORT once an error is delivered to its manager.
#: Receives (manager, error); returning None means REPORT.
HandlerPolicy = Callable[["ScopeManager", GridError], Action | None]


class ScopeManager:
    """One program in the chain, responsible for a set of scopes.

    *scopes* is the set of :class:`ErrorScope` values this program
    manages -- e.g. the starter manages ``REMOTE_RESOURCE`` (and
    ``CLUSTER``); the schedd manages ``LOCAL_RESOURCE`` and ``JOB``.

    *policy* decides, for a delivered error, whether to mask it or report
    it outward; the default reports everything (no fault tolerance).
    """

    def __init__(
        self,
        name: str,
        scopes: set[ErrorScope] | frozenset[ErrorScope],
        policy: HandlerPolicy | None = None,
    ):
        self.name = name
        self.scopes = frozenset(scopes)
        self.policy = policy
        self.handled: list[tuple[GridError, Action]] = []

    def manages(self, scope: ErrorScope) -> bool:
        """True if errors of *scope* belong to this manager."""
        return scope in self.scopes

    def decide(self, error: GridError) -> Action:
        """MASK or REPORT a delivered error (never ESCALATE from here)."""
        action: Action | None = None
        if self.policy is not None:
            action = self.policy(self, error)
        if action is None or action is Action.ESCALATE:
            action = Action.REPORT
        self.handled.append((error, action))
        return action

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ScopeManager {self.name} scopes={sorted(s.name for s in self.scopes)}>"


@dataclass
class PropagationOutcome:
    """The result of propagating one error through the chain."""

    error: GridError
    handler: str | None  # manager that finally handled it (None = unmanaged)
    action: Action | None
    hops: int  # managers traversed after discovery

    @property
    def masked(self) -> bool:
        return self.action is Action.MASK


class ManagementChain:
    """An ordered chain of scope managers, innermost first."""

    def __init__(self, managers: list[ScopeManager], trace: PropagationTrace | None = None):
        if not managers:
            raise ValueError("a chain needs at least one manager")
        names = [m.name for m in managers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate manager names in {names}")
        self.managers = list(managers)
        self.trace = trace if trace is not None else PropagationTrace()
        #: Optional telemetry sink (duck-typed: ``.active`` + ``.emit``);
        #: a Pool attaches its bus here.  One ERROR-topic event per hop.
        self.bus = None
        #: error_id -> dense per-chain id.  GridError ids come from a
        #: process-global counter; interning them keeps exported traces
        #: identical across runs within one process (DESIGN.md §6).
        self._obs_ids: dict[int, int] = {}

    def _note(self, time: float, event: EventType, manager: str, error: GridError) -> None:
        self.trace.record(time, event, manager, error)
        bus = self.bus
        if bus is not None and bus.active:
            obs_id = self._obs_ids.setdefault(error.error_id, len(self._obs_ids) + 1)
            bus.emit(
                time,
                "error",
                event.value,
                error_id=obs_id,
                error=error.name,
                scope=error.scope.name,
                kind=error.kind.value,
                detail=error.detail,
                manager=manager,
            )

    def __getitem__(self, name: str) -> ScopeManager:
        for m in self.managers:
            if m.name == name:
                return m
        raise KeyError(name)

    def index(self, name: str) -> int:
        for i, m in enumerate(self.managers):
            if m.name == name:
                return i
        raise KeyError(name)

    def manager_for(self, scope: ErrorScope) -> ScopeManager | None:
        """The innermost manager that manages *scope*, if any."""
        for m in self.managers:
            if m.manages(scope):
                return m
        return None

    def propagate(
        self,
        error: GridError,
        discovered_by: str,
        time: float = 0.0,
    ) -> PropagationOutcome:
        """Carry *error* outward from *discovered_by* to its scope manager.

        Correct (Principle-3) routing: every manager between the
        discoverer and the scope's manager records an ESCALATED event;
        the scope's manager records DELIVERED then MASKED or REPORTED.
        An error whose scope nobody manages is UNMANAGED at the outer end
        (it reaches the user raw -- the failure mode of naive systems).
        """
        self._note(time, EventType.DISCOVERED, discovered_by, error)
        start = self.index(discovered_by)
        hops = 0
        for manager in self.managers[start:]:
            if manager.manages(error.scope):
                self._note(time, EventType.DELIVERED, manager.name, error)
                action = manager.decide(error)
                self._note(
                    time,
                    EventType.MASKED if action is Action.MASK else EventType.REPORTED,
                    manager.name,
                    error,
                )
                return PropagationOutcome(error, manager.name, action, hops)
            self._note(time, EventType.ESCALATED, manager.name, error)
            hops += 1
        self._note(time, EventType.UNMANAGED, self.managers[-1].name, error)
        return PropagationOutcome(error, None, None, hops)

    def misdeliver(self, error: GridError, consumed_by: str, time: float = 0.0) -> None:
        """Record that *consumed_by* swallowed an error it does not manage.

        Naive configurations call this; the auditor charges it as a
        Principle-3 violation.
        """
        self._note(time, EventType.MISHANDLED, consumed_by, error)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ManagementChain {' -> '.join(m.name for m in self.managers)}>"
