"""Classification of raw failures into error scopes (the wrapper's table).

The paper's wrapper "examines the exception type, and then produces a
result file describing the program result and the scope of any errors
discovered" (§4).  This module is that examination: a registry mapping
``(namespace, error name)`` to a scope and a canonical name.

Namespaces keep the substrates' vocabularies apart:

- ``java`` -- simulated Java throwables (Figure 4's rows);
- ``fs`` -- errno-style codes from :mod:`repro.sim.filesystem`;
- ``net`` -- codes from :mod:`repro.sim.network`;
- ``chirp`` -- Chirp protocol result codes;
- ``condor`` -- conditions discovered by the daemons themselves.

Unknown names fall back to namespace-specific heuristics that mirror how
the real wrapper had to behave: an unknown Java ``...Error`` is assumed to
invalidate the virtual machine, an unknown ``...Exception`` is assumed to
be a program result (the program's own business), and anything else gets
the namespace's conservative default.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.scope import ErrorScope

__all__ = ["Classification", "ExceptionClassifier", "DEFAULT_CLASSIFIER"]


@dataclass(frozen=True)
class Classification:
    """Scope plus canonical name for one raw failure."""

    scope: ErrorScope
    canonical: str
    known: bool = True


class ExceptionClassifier:
    """Registry from (namespace, raw name) to :class:`Classification`."""

    def __init__(self) -> None:
        self._table: dict[tuple[str, str], Classification] = {}

    def register(
        self, namespace: str, name: str, scope: ErrorScope, canonical: str | None = None
    ) -> None:
        """Map *namespace*:*name* to *scope* (canonical name defaults to *name*)."""
        self._table[(namespace, name)] = Classification(scope, canonical or name)

    def classify(self, namespace: str, name: str) -> Classification:
        """Look up *name*, falling back to the namespace heuristic."""
        hit = self._table.get((namespace, name))
        if hit is not None:
            return hit
        return self._heuristic(namespace, name)

    @staticmethod
    def _heuristic(namespace: str, name: str) -> Classification:
        if namespace == "java":
            if name.endswith("Error"):
                return Classification(ErrorScope.VIRTUAL_MACHINE, name, known=False)
            return Classification(ErrorScope.PROGRAM, name, known=False)
        if namespace == "net":
            return Classification(ErrorScope.PROCESS, name, known=False)
        if namespace == "fs":
            return Classification(ErrorScope.LOCAL_RESOURCE, name, known=False)
        if namespace == "chirp":
            return Classification(ErrorScope.LOCAL_RESOURCE, name, known=False)
        return Classification(ErrorScope.JOB, name, known=False)

    def knows(self, namespace: str, name: str) -> bool:
        """True if *name* is explicitly registered (not heuristic)."""
        return (namespace, name) in self._table


def _build_default() -> ExceptionClassifier:
    c = ExceptionClassifier()

    # -- Java throwables (Figure 4 and §2.3) ------------------------------
    prog = [
        "ArrayIndexOutOfBoundsException",
        "NullPointerException",
        "ArithmeticException",
        "ClassCastException",
        "IllegalArgumentException",
        "IllegalStateException",
        "NumberFormatException",
        "RuntimeException",
        "Exception",
        # Uncaught I/O results are still the program's own business:
        "FileNotFoundException",
        "AccessDeniedException",
        "EOFException",
        "DiskFullException",
    ]
    for name in prog:
        c.register("java", name, ErrorScope.PROGRAM)

    vm = [
        "OutOfMemoryError",
        "StackOverflowError",
        "VirtualMachineError",
        "InternalError",
        "UnknownError",
    ]
    for name in vm:
        c.register("java", name, ErrorScope.VIRTUAL_MACHINE)

    remote = [
        # "The Java installation is misconfigured" (Figure 4)
        "NoClassDefFoundError",
        "UnsatisfiedLinkError",
        "JvmMisconfiguredError",
        "ClassLibraryMissingError",
    ]
    for name in remote:
        c.register("java", name, ErrorScope.REMOTE_RESOURCE)

    local = [
        # "The home file system was offline" (Figure 4)
        "ConnectionTimedOutException",
        "RemoteIoUnavailableError",
        "CredentialExpiredError",
        "ChirpConnectionLostError",
    ]
    for name in local:
        c.register("java", name, ErrorScope.LOCAL_RESOURCE)

    job = [
        # "The program image was corrupt" (Figure 4)
        "ClassFormatError",
        "NoSuchMethodError",
        "CorruptImageError",
        "MissingInputError",
    ]
    for name in job:
        c.register("java", name, ErrorScope.JOB)

    # -- file-system codes ----------------------------------------------------
    c.register("fs", "ENOENT", ErrorScope.FILE, "FileNotFound")
    c.register("fs", "EACCES", ErrorScope.FILE, "AccessDenied")
    c.register("fs", "EISDIR", ErrorScope.FILE, "IsADirectory")
    c.register("fs", "ENOTDIR", ErrorScope.FILE, "NotADirectory")
    c.register("fs", "EEXIST", ErrorScope.FILE, "FileExists")
    c.register("fs", "EINVAL", ErrorScope.FILE, "InvalidArgument")
    c.register("fs", "EBADF", ErrorScope.PROCESS, "BadFileHandle")
    c.register("fs", "ENOSPC", ErrorScope.FILE, "DiskFull")
    c.register("fs", "EIO", ErrorScope.LOCAL_RESOURCE, "FilesystemOffline")
    c.register("fs", "ETIMEDOUT", ErrorScope.LOCAL_RESOURCE, "FilesystemTimeout")

    # -- network codes -------------------------------------------------------
    # "A failure in remote procedure call has process scope." (§3.3)
    c.register("net", "ECONNRESET", ErrorScope.PROCESS, "ConnectionLost")
    c.register("net", "ETIMEDOUT", ErrorScope.PROCESS, "ConnectionTimedOut")
    c.register("net", "ECONNREFUSED", ErrorScope.PROCESS, "ConnectionRefused")
    c.register("net", "EHOSTUNREACH", ErrorScope.PROCESS, "HostUnreachable")

    # -- Chirp result codes ---------------------------------------------------
    c.register("chirp", "NOT_FOUND", ErrorScope.FILE, "FileNotFound")
    c.register("chirp", "NOT_AUTHORIZED", ErrorScope.FILE, "AccessDenied")
    c.register("chirp", "NO_SPACE", ErrorScope.FILE, "DiskFull")
    c.register("chirp", "BAD_FD", ErrorScope.PROCESS, "BadFileHandle")
    c.register("chirp", "INVALID_REQUEST", ErrorScope.PROCESS, "ProtocolError")
    c.register("chirp", "AUTH_FAILED", ErrorScope.REMOTE_RESOURCE, "ProxyAuthFailed")
    c.register("chirp", "SERVER_DOWN", ErrorScope.LOCAL_RESOURCE, "RemoteIoUnavailable")
    c.register("chirp", "CREDENTIAL_EXPIRED", ErrorScope.LOCAL_RESOURCE, "CredentialExpired")
    c.register("chirp", "TIMED_OUT", ErrorScope.LOCAL_RESOURCE, "RemoteIoTimeout")

    # -- daemon-discovered conditions ----------------------------------------
    c.register("condor", "MissingInputFile", ErrorScope.JOB)
    c.register("condor", "CorruptProgramImage", ErrorScope.JOB)
    c.register("condor", "BadSubmitDescription", ErrorScope.JOB)
    c.register("condor", "JvmMisconfigured", ErrorScope.REMOTE_RESOURCE)
    c.register("condor", "JvmBinaryMissing", ErrorScope.REMOTE_RESOURCE)
    c.register("condor", "ScratchDiskFull", ErrorScope.REMOTE_RESOURCE)
    c.register("condor", "MachineCrashed", ErrorScope.REMOTE_RESOURCE)
    c.register("condor", "ClaimLost", ErrorScope.REMOTE_RESOURCE)
    c.register("condor", "Evicted", ErrorScope.REMOTE_RESOURCE)
    # "A node failure in PVM has cluster scope." (§3.3)
    c.register("condor", "PvmNodeFailed", ErrorScope.CLUSTER)
    c.register("condor", "HomeFilesystemOffline", ErrorScope.LOCAL_RESOURCE)
    c.register("condor", "ShadowDied", ErrorScope.LOCAL_RESOURCE)
    c.register("condor", "MatchmakerUnreachable", ErrorScope.POOL)
    # Federation: one flock link dead is a pool-scope condition (that
    # pool is invalid for this job, others may serve); every pool dead
    # widens to grid scope -- the whole community is unreachable.
    c.register("condor", "FlockLinkDown", ErrorScope.POOL)
    c.register("condor", "GridUnreachable", ErrorScope.GRID)
    return c


#: The classification table the scoped (fixed) Java Universe uses.
DEFAULT_CLASSIFIER = _build_default()
