"""The principle auditor: mechanically checking Principles 1-4.

Given the artifacts of a run -- the propagation trace, the error
interfaces, and the per-job outcomes with injected ground truth -- the
auditor reports every detectable violation:

- **P1** ("a program must not generate an implicit error as a result of
  receiving an explicit error"): a job whose ground truth is an
  environmental error (scope wider than PROGRAM) but that was presented
  to the user as a valid program result.  The canonical instance is the
  JVM collapsing a misconfiguration into exit code 1 (Figure 4).
- **P2** ("an escaping error must be used to convert a potential implicit
  error into an explicit error at a higher level"): an out-of-contract
  error that crossed an interface as an ordinary explicit result instead
  of escaping -- only possible through a generic operation.
- **P3** ("an error must be propagated to the program that manages its
  scope"): MISHANDLED trace events (a manager consumed an error outside
  its scope) and UNMANAGED events (an error fell off the chain raw).
- **P4** ("error interfaces must be concise and finite"): every crossing
  of a generic (open-ended) operation by an undocumented error name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import GridError
from repro.core.interfaces import ErrorInterface
from repro.core.propagation import EventType, PropagationTrace
from repro.core.scope import ErrorScope

__all__ = [
    "JobGroundTruth",
    "PrincipleAuditor",
    "Violation",
    "check_crossing",
    "check_hop",
    "check_outcome",
]


@dataclass(frozen=True)
class Violation:
    """One detected violation of one principle."""

    principle: int
    description: str
    subject: str = ""  # job id, interface.operation, or manager name

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"P{self.principle}{where}: {self.description}"


@dataclass
class JobGroundTruth:
    """What actually happened to a job vs. what the user was told.

    - *truth_scope*: the widest scope of any injected/environmental error
      that affected the decisive execution (None = clean run).
    - *claimed_program_result*: the system presented the outcome to the
      user as a valid program result (completion or program exception).
    """

    job_id: str
    truth_scope: ErrorScope | None
    claimed_program_result: bool
    detail: str = ""


# -- the shared checks -------------------------------------------------
#
# Each principle's judgement is a pure function over primitive facts, so
# the post-hoc auditor (reading run artifacts) and the live sanitizer
# (reading telemetry events) produce *identical* Violation objects for
# the same occurrence -- the property the cross-check tests pin down.


def check_outcome(outcome: JobGroundTruth) -> Violation | None:
    """P1: an environmental error presented as a valid program result."""
    if (
        outcome.truth_scope is not None
        and not outcome.truth_scope.within_program_contract
        and outcome.claimed_program_result
    ):
        return Violation(
            1,
            f"environmental error of {outcome.truth_scope} scope "
            f"presented as a valid program result"
            + (f" ({outcome.detail})" if outcome.detail else ""),
            subject=outcome.job_id,
        )
    return None


def check_crossing(
    op_text: str,
    error_name: str,
    scope: ErrorScope,
    generic: bool,
    declared: bool,
    documented: bool,
) -> list[Violation]:
    """P4 (and P2) for one interface crossing.

    A generic operation that let an undocumented error through as a
    declared result is a P4 violation; if that error was additionally
    out of the program contract, the crossing should have escaped -- P2.
    """
    found: list[Violation] = []
    if generic and declared and not documented:
        found.append(
            Violation(
                4,
                f"undocumented error {error_name!r} passed "
                f"through generic interface",
                subject=op_text,
            )
        )
        if not scope.within_program_contract:
            found.append(
                Violation(
                    2,
                    f"out-of-contract error {error_name!r} "
                    f"({scope} scope) presented as an "
                    f"explicit result instead of escaping",
                    subject=op_text,
                )
            )
    return found


def check_hop(hop: str, manager: str, error_text: str, scope_text: str) -> Violation | None:
    """P3 for one management-chain hop (by event name)."""
    if hop == EventType.MISHANDLED.value:
        return Violation(
            3,
            f"{error_text} consumed by {manager!r}, which does "
            f"not manage {scope_text} scope",
            subject=manager,
        )
    if hop == EventType.UNMANAGED.value:
        return Violation(
            3,
            f"{error_text} reached the end of the chain with no "
            f"manager for {scope_text} scope",
            subject=manager,
        )
    return None


class PrincipleAuditor:
    """Collects run artifacts and reports violations of Principles 1-4."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    # -- P1 ------------------------------------------------------------
    def audit_outcomes(self, outcomes: list[JobGroundTruth]) -> list[Violation]:
        """Check every job outcome for P1 violations."""
        found = [v for v in map(check_outcome, outcomes) if v is not None]
        self.violations.extend(found)
        return found

    # -- P2 and P4 ----------------------------------------------------------
    def audit_interfaces(self, interfaces: list[ErrorInterface]) -> list[Violation]:
        """Check recorded interface crossings for P2 and P4 violations."""
        found = []
        for iface in interfaces:
            for crossing in iface.crossings:
                op = crossing.operation
                found.extend(
                    check_crossing(
                        str(op),
                        crossing.error.name,
                        crossing.error.scope,
                        op.generic,
                        crossing.declared,
                        crossing.error.name in op.errors,
                    )
                )
        self.violations.extend(found)
        return found

    # -- P3 ---------------------------------------------------------------
    def audit_trace(self, trace: PropagationTrace) -> list[Violation]:
        """Check the propagation trace for P3 violations."""
        found = []
        for event in trace:
            violation = check_hop(
                event.event.value, event.manager, str(event.error), str(event.error.scope)
            )
            if violation is not None:
                found.append(violation)
        self.violations.extend(found)
        return found

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict[int, int]:
        """Violation counts keyed by principle number (1-4, always present)."""
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for violation in self.violations:
            counts[violation.principle] += 1
        return counts

    def render(self) -> str:
        """Human-readable report."""
        if not self.violations:
            return "no principle violations detected"
        lines = [f"{len(self.violations)} principle violations:"]
        lines += [f"  {v}" for v in self.violations]
        counts = self.summary()
        lines.append(
            "summary: " + "  ".join(f"P{p}={n}" for p, n in counts.items())
        )
        return "\n".join(lines)
