"""The principle auditor: mechanically checking Principles 1-4.

Given the artifacts of a run -- the propagation trace, the error
interfaces, and the per-job outcomes with injected ground truth -- the
auditor reports every detectable violation:

- **P1** ("a program must not generate an implicit error as a result of
  receiving an explicit error"): a job whose ground truth is an
  environmental error (scope wider than PROGRAM) but that was presented
  to the user as a valid program result.  The canonical instance is the
  JVM collapsing a misconfiguration into exit code 1 (Figure 4).
- **P2** ("an escaping error must be used to convert a potential implicit
  error into an explicit error at a higher level"): an out-of-contract
  error that crossed an interface as an ordinary explicit result instead
  of escaping -- only possible through a generic operation.
- **P3** ("an error must be propagated to the program that manages its
  scope"): MISHANDLED trace events (a manager consumed an error outside
  its scope) and UNMANAGED events (an error fell off the chain raw).
- **P4** ("error interfaces must be concise and finite"): every crossing
  of a generic (open-ended) operation by an undocumented error name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import GridError
from repro.core.interfaces import ErrorInterface
from repro.core.propagation import EventType, PropagationTrace
from repro.core.scope import ErrorScope

__all__ = ["JobGroundTruth", "PrincipleAuditor", "Violation"]


@dataclass(frozen=True)
class Violation:
    """One detected violation of one principle."""

    principle: int
    description: str
    subject: str = ""  # job id, interface.operation, or manager name

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"P{self.principle}{where}: {self.description}"


@dataclass
class JobGroundTruth:
    """What actually happened to a job vs. what the user was told.

    - *truth_scope*: the widest scope of any injected/environmental error
      that affected the decisive execution (None = clean run).
    - *claimed_program_result*: the system presented the outcome to the
      user as a valid program result (completion or program exception).
    """

    job_id: str
    truth_scope: ErrorScope | None
    claimed_program_result: bool
    detail: str = ""


class PrincipleAuditor:
    """Collects run artifacts and reports violations of Principles 1-4."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []

    # -- P1 ------------------------------------------------------------
    def audit_outcomes(self, outcomes: list[JobGroundTruth]) -> list[Violation]:
        """Check every job outcome for P1 violations."""
        found = []
        for outcome in outcomes:
            if (
                outcome.truth_scope is not None
                and not outcome.truth_scope.within_program_contract
                and outcome.claimed_program_result
            ):
                found.append(
                    Violation(
                        1,
                        f"environmental error of {outcome.truth_scope} scope "
                        f"presented as a valid program result"
                        + (f" ({outcome.detail})" if outcome.detail else ""),
                        subject=outcome.job_id,
                    )
                )
        self.violations.extend(found)
        return found

    # -- P2 and P4 ----------------------------------------------------------
    def audit_interfaces(self, interfaces: list[ErrorInterface]) -> list[Violation]:
        """Check recorded interface crossings for P2 and P4 violations."""
        found = []
        for iface in interfaces:
            for crossing in iface.crossings:
                op = crossing.operation
                undocumented = crossing.error.name not in op.errors
                if op.generic and crossing.declared and undocumented:
                    found.append(
                        Violation(
                            4,
                            f"undocumented error {crossing.error.name!r} passed "
                            f"through generic interface",
                            subject=str(op),
                        )
                    )
                    if not crossing.error.scope.within_program_contract:
                        found.append(
                            Violation(
                                2,
                                f"out-of-contract error {crossing.error.name!r} "
                                f"({crossing.error.scope} scope) presented as an "
                                f"explicit result instead of escaping",
                                subject=str(op),
                            )
                        )
        self.violations.extend(found)
        return found

    # -- P3 ---------------------------------------------------------------
    def audit_trace(self, trace: PropagationTrace) -> list[Violation]:
        """Check the propagation trace for P3 violations."""
        found = []
        for event in trace:
            if event.event is EventType.MISHANDLED:
                found.append(
                    Violation(
                        3,
                        f"{event.error} consumed by {event.manager!r}, which does "
                        f"not manage {event.error.scope} scope",
                        subject=event.manager,
                    )
                )
            elif event.event is EventType.UNMANAGED:
                found.append(
                    Violation(
                        3,
                        f"{event.error} reached the end of the chain with no "
                        f"manager for {event.error.scope} scope",
                        subject=event.manager,
                    )
                )
        self.violations.extend(found)
        return found

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict[int, int]:
        """Violation counts keyed by principle number (1-4, always present)."""
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for violation in self.violations:
            counts[violation.principle] += 1
        return counts

    def render(self) -> str:
        """Human-readable report."""
        if not self.violations:
            return "no principle violations detected"
        lines = [f"{len(self.violations)} principle violations:"]
        lines += [f"  {v}" for v in self.violations]
        counts = self.summary()
        lines.append(
            "summary: " + "  ".join(f"P{p}={n}" for p, n in counts.items())
        )
        return "\n".join(lines)
