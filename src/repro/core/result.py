"""The wrapper's result file (paper §4).

    "The wrapper locates the program, attempts to execute it, and catches
    any exceptions it may throw.  It examines the exception type, and then
    produces a result file describing the program result and the scope of
    any errors discovered.  The starter examines this result file and
    ignores the JVM result entirely."

The result file is the paper's example of an *indirect channel* carrying
an error to the manager of its scope (§3.3).  It distinguishes the three
things a bare exit code conflates (Figure 4): a normal program exit, a
program exception, and an environmental error with a scope.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.scope import ErrorScope

__all__ = ["ResultFile", "ResultStatus"]


class ResultStatus(enum.Enum):
    """The three distinguishable outcomes of a wrapped execution."""

    COMPLETED = "completed"  # main returned or System.exit(x): code is the result
    EXCEPTION = "exception"  # the program threw: the exception is the result
    ENVIRONMENT = "environment"  # the environment failed: scope + name describe it


@dataclass(frozen=True)
class ResultFile:
    """What the wrapper writes and the starter reads."""

    status: ResultStatus
    exit_code: int = 0
    exception_name: str = ""
    scope: ErrorScope = ErrorScope.PROGRAM
    error_name: str = ""
    detail: str = ""

    # -- constructors ----------------------------------------------------
    @classmethod
    def completed(cls, exit_code: int) -> "ResultFile":
        """A normal completion with *exit_code* as the program result."""
        return cls(ResultStatus.COMPLETED, exit_code=exit_code)

    @classmethod
    def exception(cls, name: str, detail: str = "") -> "ResultFile":
        """A program-scope exception: a result the user wants to see."""
        return cls(ResultStatus.EXCEPTION, exception_name=name, detail=detail)

    @classmethod
    def environment(cls, scope: ErrorScope, name: str, detail: str = "") -> "ResultFile":
        """An environmental error of *scope*: not a program result."""
        return cls(ResultStatus.ENVIRONMENT, scope=scope, error_name=name, detail=detail)

    # -- predicates ----------------------------------------------------------
    @property
    def is_program_result(self) -> bool:
        """True when the content belongs to the user (Figure 3's inner scopes)."""
        return self.status in (ResultStatus.COMPLETED, ResultStatus.EXCEPTION)

    def same_outcome(self, other: "ResultFile | None") -> bool:
        """Semantic equality: same outcome, ignoring free-text detail."""
        if other is None:
            return False
        return (
            self.status is other.status
            and self.exit_code == other.exit_code
            and self.exception_name == other.exception_name
            and self.scope is other.scope
            and self.error_name == other.error_name
        )

    # -- the indirect channel ----------------------------------------------
    def serialize(self) -> bytes:
        """Encode for the scratch-directory file the starter reads."""
        lines = [f"status={self.status.value}"]
        if self.status is ResultStatus.COMPLETED:
            lines.append(f"exit_code={self.exit_code}")
        elif self.status is ResultStatus.EXCEPTION:
            lines.append(f"exception={self.exception_name}")
            if self.detail:
                lines.append(f"detail={self.detail}")
        else:
            lines.append(f"scope={self.scope.name}")
            lines.append(f"error={self.error_name}")
            if self.detail:
                lines.append(f"detail={self.detail}")
        return ("\n".join(lines) + "\n").encode()

    @classmethod
    def parse(cls, data: bytes) -> "ResultFile":
        """Decode a serialized result file.

        Raises :class:`ValueError` on malformed input -- a corrupt result
        file must surface as an error, never as a silently-wrong result.
        """
        fields: dict[str, str] = {}
        for line in data.decode(errors="strict").splitlines():
            line = line.strip()
            if not line:
                continue
            if "=" not in line:
                raise ValueError(f"malformed result-file line {line!r}")
            key, _, value = line.partition("=")
            fields[key] = value
        try:
            status = ResultStatus(fields["status"])
        except (KeyError, ValueError) as exc:
            raise ValueError(f"missing or bad status in result file: {fields}") from exc
        if status is ResultStatus.COMPLETED:
            return cls.completed(int(fields.get("exit_code", "0")))
        if status is ResultStatus.EXCEPTION:
            return cls.exception(fields.get("exception", ""), fields.get("detail", ""))
        try:
            scope = ErrorScope[fields["scope"]]
        except KeyError as exc:
            raise ValueError(f"missing or bad scope in result file: {fields}") from exc
        return cls.environment(scope, fields.get("error", ""), fields.get("detail", ""))

    def __str__(self) -> str:
        if self.status is ResultStatus.COMPLETED:
            return f"completed(exit={self.exit_code})"
        if self.status is ResultStatus.EXCEPTION:
            return f"exception({self.exception_name})"
        return f"environment({self.error_name}@{self.scope})"
