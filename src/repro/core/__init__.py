"""The paper's contribution: a theory of error propagation.

- :mod:`repro.core.scope` -- the *error scope* abstraction: the portion of
  a system an error invalidates, ordered from FILE to POOL, each with a
  managing program.
- :mod:`repro.core.errors` -- the implicit / explicit / escaping taxonomy
  as concrete objects with provenance.
- :mod:`repro.core.interfaces` -- concise, finite error interfaces
  (Principle 4) with automatic explicit-to-escaping conversion for
  out-of-contract errors (Principle 2).
- :mod:`repro.core.propagation` -- scope managers and the propagation
  engine that routes each error to the manager of its scope (Principle 3).
- :mod:`repro.core.principles` -- the auditor that checks propagation
  traces for violations of Principles 1-4.
- :mod:`repro.core.classify` -- the wrapper's classification table from
  (simulated) Java throwables and substrate error codes to scopes.
- :mod:`repro.core.result` -- the wrapper's result file: the indirect
  channel that carries a program result or an error scope to the starter.
"""

from repro.core.errors import (
    ErrorKind,
    EscapingError,
    GridError,
    escaping,
    explicit,
    implicit,
)
from repro.core.interfaces import ErrorInterface, InterfaceViolation, Operation
from repro.core.classify import ExceptionClassifier, DEFAULT_CLASSIFIER
from repro.core.principles import PrincipleAuditor, Violation
from repro.core.propagation import (
    Action,
    ManagementChain,
    PropagationTrace,
    ScopeManager,
    TraceEvent,
)
from repro.core.result import ResultFile, ResultStatus
from repro.core.scope import ErrorScope, JAVA_UNIVERSE_CHAIN

__all__ = [
    "Action",
    "DEFAULT_CLASSIFIER",
    "ErrorInterface",
    "ErrorKind",
    "ErrorScope",
    "EscapingError",
    "ExceptionClassifier",
    "GridError",
    "InterfaceViolation",
    "JAVA_UNIVERSE_CHAIN",
    "ManagementChain",
    "Operation",
    "PrincipleAuditor",
    "PropagationTrace",
    "ResultFile",
    "ResultStatus",
    "ScopeManager",
    "TraceEvent",
    "Violation",
    "escaping",
    "explicit",
    "implicit",
]
