"""The error-scope abstraction (paper §3.3).

    "The scope of an error is the portion of a system which it
    invalidates."

Scopes form a total order by containment: an error of a wider scope
invalidates everything a narrower one does and more.  The order used here
merges the paper's generic examples (file < function < process < cluster)
with the Java Universe scopes of Figure 3 (program < virtual machine <
remote resource < local resource < job), positioned according to the
portion of the system each invalidates:

- ``FILE`` -- one named file cannot be used (``FileNotFound``);
- ``FUNCTION`` -- one function invocation is invalid;
- ``PROGRAM`` -- the user program's own execution is invalid: its
  exceptions and exit codes are *results* that belong to the user;
- ``PROCESS`` -- the mechanism of function call within a process has
  broken (a failed RPC has process scope, §3.3);
- ``VIRTUAL_MACHINE`` -- the JVM's current conditions are invalid
  (``OutOfMemoryError``): the job cannot run *in the current conditions*;
- ``CLUSTER`` -- a whole cluster of cooperating processes is invalid
  (a PVM node failure, §3.3);
- ``REMOTE_RESOURCE`` -- the execution site is invalid (misconfigured
  JVM): the job cannot run *on the given host*;
- ``LOCAL_RESOURCE`` -- the submission site's resources are invalid
  (home file system offline): the job cannot run *right now*;
- ``JOB`` -- the job itself is invalid (corrupt program image): it can
  never run anywhere;
- ``POOL`` -- the whole pool is invalid (matchmaker gone);
- ``GRID`` -- the pool-of-pools is invalid: the local pool *and* every
  flocked remote pool are unreachable, so no schedd anywhere can place
  the job.  A federated schedd masks POOL-scope errors by flocking the
  job to another pool; only when that defense is exhausted does the
  error widen to GRID scope and reach the user.

Per the schedd's "last line of defense" (paper §4): PROGRAM scope means
the job is complete; JOB scope means the job is unexecutable; anything in
between is logged and the job is retried at a new site.
"""

from __future__ import annotations

import enum

__all__ = ["ErrorScope", "JAVA_UNIVERSE_CHAIN", "GENERIC_CHAIN"]


class ErrorScope(enum.IntEnum):
    """Total order of scopes; larger values invalidate more of the system."""

    FILE = 10
    FUNCTION = 20
    PROGRAM = 30
    PROCESS = 40
    VIRTUAL_MACHINE = 50
    CLUSTER = 60
    REMOTE_RESOURCE = 70
    LOCAL_RESOURCE = 80
    JOB = 90
    POOL = 100
    GRID = 110

    # -- containment ---------------------------------------------------
    def contains(self, other: "ErrorScope") -> bool:
        """True if an error of this scope also invalidates *other*'s portion."""
        return self >= other

    def expand(self, other: "ErrorScope") -> "ErrorScope":
        """The least scope containing both (join in the containment order).

        Used when an error "gains significance as it travels up through
        layers of software" (§3.3).
        """
        return max(self, other)

    # -- Java Universe semantics (Figure 3 / §4) -----------------------------
    @property
    def managing_program(self) -> str:
        """The program responsible for handling errors of this scope.

        The Figure-3 mapping: each scope has exactly one handler that
        either masks the error or reports it to the next scope out.
        """
        return _MANAGERS[self]

    @property
    def within_program_contract(self) -> bool:
        """True if errors of this scope are legitimate *program results*.

        File- and function-scope errors (``FileNotFound``) and the
        program's own exceptions are results the user wants to see;
        everything wider is an accident of the environment.
        """
        return self <= ErrorScope.PROGRAM

    @property
    def retry_elsewhere(self) -> bool:
        """True if the schedd should log the error and try another site.

        "Anything in between causes it to log the error and then attempt
        to execute the program at a new site." (§4)
        """
        return ErrorScope.PROGRAM < self < ErrorScope.JOB

    @property
    def terminal_for_job(self) -> bool:
        """True if the schedd must return the job to the user.

        PROGRAM scope (or narrower) -> the job is *complete*;
        JOB scope (or wider) -> the job is *unexecutable*.
        """
        return self <= ErrorScope.PROGRAM or self >= ErrorScope.JOB

    def __str__(self) -> str:
        return self.name.lower().replace("_", "-")


_MANAGERS: dict[ErrorScope, str] = {
    ErrorScope.FILE: "program",
    ErrorScope.FUNCTION: "program",
    ErrorScope.PROGRAM: "wrapper",
    ErrorScope.PROCESS: "wrapper",
    ErrorScope.VIRTUAL_MACHINE: "starter",
    ErrorScope.CLUSTER: "starter",
    ErrorScope.REMOTE_RESOURCE: "shadow",
    ErrorScope.LOCAL_RESOURCE: "schedd",
    ErrorScope.JOB: "schedd",
    ErrorScope.POOL: "user",
    ErrorScope.GRID: "user",
}

#: The chain of scope managers in the Java Universe, innermost first
#: (Figure 3): the program runs under the wrapper, inside the JVM, under
#: the starter (remote resources), served by the shadow (local
#: resources), on behalf of the schedd (the job), owned by the user.
JAVA_UNIVERSE_CHAIN: tuple[str, ...] = (
    "program",
    "wrapper",
    "jvm",
    "starter",
    "shadow",
    "schedd",
    "user",
)

#: The generic chain of §3.3's examples.
GENERIC_CHAIN: tuple[str, ...] = ("function", "process", "cluster", "system")
