"""Error objects: the implicit / explicit / escaping taxonomy (paper §3.1).

- An **implicit** error is "a result that a routine presents as valid, but
  is otherwise determined to be false."  By nature it travels as ordinary
  data; we represent one *after detection* (or as ground truth for the
  auditor) with ``kind=IMPLICIT``.
- An **explicit** error is "a result that describes an inability to carry
  out the requested action" -- a value conforming to the interface.
  Explicit errors here are :class:`GridError` *values*, passed and
  returned like any result.
- An **escaping** error is "a result accompanied by a change in control
  flow."  We implement it as the Python exception :class:`EscapingError`
  wrapping a :class:`GridError`, because a Python exception *is* a change
  of control flow -- the theory maps onto the mechanism exactly.

Every :class:`GridError` records provenance: where it was discovered, the
chain of causes, and the scope assigned to it.  The auditor compares this
record against ground truth from the fault injector.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace

from repro.core.scope import ErrorScope

__all__ = [
    "ErrorKind",
    "EscapingError",
    "GridError",
    "escaping",
    "explicit",
    "format_error",
    "implicit",
]

_ids = itertools.count(1)


def format_error(name: str, scope: str, kind: str, detail: str = "") -> str:
    """The canonical one-line rendering of an error.

    Shared by :meth:`GridError.__str__` and the live sanitizer (which
    reconstructs the same text from telemetry attributes), so live and
    post-hoc violation reports are textually identical.
    """
    extra = f": {detail}" if detail else ""
    return f"{name}[{scope}/{kind}]{extra}"


class ErrorKind(enum.Enum):
    """How an error is communicated (paper §3.1)."""

    IMPLICIT = "implicit"
    EXPLICIT = "explicit"
    ESCAPING = "escaping"


@dataclass(frozen=True)
class GridError:
    """One error, with scope, kind and provenance.

    Instances are immutable; transformations (rescoping, conversion to
    escaping form) produce new objects linked through ``cause`` so the
    full history of an error as it crosses layers is preserved.
    """

    name: str
    scope: ErrorScope
    kind: ErrorKind
    detail: str = ""
    origin: str = ""
    time: float = 0.0
    cause: "GridError | None" = None
    #: Stable identity for tracing; preserved across transformations.
    error_id: int = field(default_factory=lambda: next(_ids))

    # -- transformations -------------------------------------------------
    def rescoped(self, scope: ErrorScope, by: str = "") -> "GridError":
        """A copy with a (usually wider) scope, caused by this error.

        Models §3.3: "an error's scope may be re-considered at many
        layers.  It may gain significance, or expand its scope, as it
        travels up through layers of software."
        """
        return replace(self, scope=scope, origin=by or self.origin, cause=self)

    def as_escaping(self, by: str = "") -> "GridError":
        """A copy marked ESCAPING, caused by this error (Principle 2)."""
        if self.kind is ErrorKind.ESCAPING:
            return self
        return replace(self, kind=ErrorKind.ESCAPING, origin=by or self.origin, cause=self)

    def as_explicit(self, by: str = "") -> "GridError":
        """A copy marked EXPLICIT -- an escaping error caught and re-presented
        "as an explicit error at a higher level of abstraction" (§3.2)."""
        if self.kind is ErrorKind.EXPLICIT:
            return self
        return replace(self, kind=ErrorKind.EXPLICIT, origin=by or self.origin, cause=self)

    def renamed(self, name: str, by: str = "") -> "GridError":
        """A copy translated to another vocabulary (e.g. errno -> Java)."""
        return replace(self, name=name, origin=by or self.origin, cause=self)

    # -- inspection -----------------------------------------------------
    def root_cause(self) -> "GridError":
        """Follow the cause chain to the originally discovered error."""
        err = self
        while err.cause is not None:
            err = err.cause
        return err

    def chain(self) -> list["GridError"]:
        """The full provenance chain, this error first."""
        out: list[GridError] = []
        err: GridError | None = self
        while err is not None:
            out.append(err)
            err = err.cause
        return out

    def __str__(self) -> str:
        return format_error(self.name, str(self.scope), self.kind.value, self.detail)


class EscapingError(Exception):
    """The control-flow vehicle for an escaping error.

    "An escaping error is necessary when a routine is unable to perform
    its action and is also unable to represent the error in the range of
    its results." (§3.1)
    """

    def __init__(self, error: GridError):
        super().__init__(str(error))
        if error.kind is not ErrorKind.ESCAPING:
            error = error.as_escaping()
        self.error = error

    @property
    def scope(self) -> ErrorScope:
        return self.error.scope


# -- convenience constructors ---------------------------------------------

def explicit(
    name: str,
    scope: ErrorScope,
    detail: str = "",
    origin: str = "",
    time: float = 0.0,
    cause: GridError | None = None,
) -> GridError:
    """Build an explicit :class:`GridError` value."""
    return GridError(name, scope, ErrorKind.EXPLICIT, detail, origin, time, cause)


def implicit(
    name: str,
    scope: ErrorScope,
    detail: str = "",
    origin: str = "",
    time: float = 0.0,
    cause: GridError | None = None,
) -> GridError:
    """Build an implicit :class:`GridError` (ground truth / post-detection)."""
    return GridError(name, scope, ErrorKind.IMPLICIT, detail, origin, time, cause)


def escaping(
    name: str,
    scope: ErrorScope,
    detail: str = "",
    origin: str = "",
    time: float = 0.0,
    cause: GridError | None = None,
) -> EscapingError:
    """Build an :class:`EscapingError` ready to raise."""
    return EscapingError(
        GridError(name, scope, ErrorKind.ESCAPING, detail, origin, time, cause)
    )
