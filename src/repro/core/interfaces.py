"""Concise, finite error interfaces (Principle 4) with automatic
escaping-error conversion (Principle 2).

The paper's prescription::

    class FileWriter {
        FileWriter( File f ) throws FileNotFound, AccessDenied;
        void write( int )    throws DiskFull;
    }

An :class:`ErrorInterface` declares, per operation, the *finite* set of
explicit errors the caller must be prepared for.  At runtime the interface
is the checkpoint between implementation and caller:

- a declared error passes through as an ordinary explicit result;
- an undeclared error "represents the mismatch between an interface and an
  implementation" (§3.2) and is converted to an :class:`EscapingError`
  (Principle 2) rather than smuggled through (which would eventually cause
  an implicit error, violating Principle 1).

A *generic* operation (``generic=True``) models the ``IOException``
anti-pattern: an open-ended error set that lets anything through.  The
naive Java Universe configuration uses generic interfaces; the principle
auditor charges P4 violations to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ErrorKind, EscapingError, GridError

__all__ = ["ErrorInterface", "InterfaceViolation", "Operation"]


class InterfaceViolation(Exception):
    """Raised for misuse of the interface machinery itself (a coding bug,
    not a simulated error)."""


@dataclass(frozen=True)
class Operation:
    """One operation of an interface and its declared error set."""

    interface: str
    name: str
    errors: frozenset[str]
    generic: bool = False

    def declares(self, error_name: str) -> bool:
        """True if *error_name* is within this operation's contract."""
        return self.generic or error_name in self.errors

    def __str__(self) -> str:
        decl = "..." if self.generic else ", ".join(sorted(self.errors))
        return f"{self.interface}.{self.name} throws {decl or 'nothing'}"


@dataclass
class _Crossing:
    """Record of one error presented at an interface (for the auditor)."""

    operation: Operation
    error: GridError
    declared: bool
    converted_to_escaping: bool
    time: float = 0.0


class ErrorInterface:
    """A named collection of operations with finite error sets.

    >>> iface = ErrorInterface("FileWriter")
    >>> iface.operation("open", {"FileNotFound", "AccessDenied"})
    >>> iface.operation("write", {"DiskFull"})

    ``vet()`` is called by an implementation that has discovered an
    explicit error and wants to present it to its caller through this
    interface.
    """

    def __init__(self, name: str):
        self.name = name
        self._operations: dict[str, Operation] = {}
        self.crossings: list[_Crossing] = []
        #: Optional telemetry sink (duck-typed: ``.active`` + ``.emit``);
        #: the I/O library wires the pool bus here so every crossing is
        #: also published as an INTERFACE-topic event for live auditing.
        self.bus = None

    def operation(
        self, name: str, errors: set[str] | frozenset[str] = frozenset(), generic: bool = False
    ) -> Operation:
        """Declare operation *name* with its finite error set.

        ``generic=True`` declares an open-ended (IOException-style) set;
        *errors* then lists only the documented instances.
        """
        if name in self._operations:
            raise InterfaceViolation(f"operation {name!r} already declared on {self.name}")
        op = Operation(self.name, name, frozenset(errors), generic)
        self._operations[name] = op
        return op

    def __getitem__(self, name: str) -> Operation:
        try:
            return self._operations[name]
        except KeyError:
            raise InterfaceViolation(f"{self.name} has no operation {name!r}") from None

    def operations(self) -> list[Operation]:
        """All declared operations."""
        return list(self._operations.values())

    def _record(self, op: Operation, error: GridError, declared: bool,
                converted: bool, time: float) -> None:
        self.crossings.append(_Crossing(op, error, declared, converted, time))
        bus = self.bus
        if bus is not None and bus.active:
            bus.emit(
                time,
                "interface",
                "crossing",
                interface=self.name,
                op=str(op),
                error=error.name,
                scope=error.scope.name,
                kind=error.kind.value,
                generic=op.generic,
                declared=declared,
                documented=error.name in op.errors,
                converted=converted,
            )

    # -- the runtime checkpoint -------------------------------------------
    def vet(self, op_name: str, error: GridError, time: float = 0.0) -> GridError:
        """Present explicit *error* at operation *op_name*.

        Returns the error unchanged when it is within the operation's
        contract.  Raises :class:`EscapingError` when it is not --
        Principle 2's conversion -- recording the crossing either way.
        """
        op = self[op_name]
        if error.kind is ErrorKind.ESCAPING:
            # Escaping errors never pass through an interface as results;
            # re-raise so they keep climbing.
            self._record(op, error, False, True, time)
            raise EscapingError(error)
        declared = op.declares(error.name)
        self._record(op, error, declared, not declared, time)
        if declared:
            return error
        raise EscapingError(error.as_escaping(by=f"{self.name}.{op_name}"))

    # -- metrics ---------------------------------------------------------
    def generic_passes(self) -> int:
        """How many errors crossed only because an operation was generic."""
        return sum(
            1
            for c in self.crossings
            if c.declared and c.operation.generic and c.error.name not in c.operation.errors
        )

    def conversions(self) -> int:
        """How many explicit errors were converted to escaping here."""
        return sum(1 for c in self.crossings if c.converted_to_escaping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ErrorInterface {self.name} ops={sorted(self._operations)}>"
