"""The PVM cluster program model."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.jvm.program import JavaProgram

__all__ = ["PvmProgram"]


@dataclass
class PvmProgram:
    """A parallel job: one behavioural program per node.

    Nodes run concurrently on the execution machine's slots-worth of
    resources under a single starter.  The cluster's result is the master
    node's result (node 0), but only if *every* node completes cleanly --
    any node failure fails the whole cluster (§3.3).
    """

    name: str = "pvm-job"
    nodes: list[JavaProgram] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a PVM program needs at least one node")
