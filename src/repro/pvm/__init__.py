"""The PVM universe: parallel jobs and *cluster scope* (paper §3.3).

    "A node failure in PVM has cluster scope.  If one node crashes, then
    the whole cluster of nodes is obliged to fail. ...  The creator of a
    PVM cluster is capable of handling an error of cluster scope."

A :class:`PvmProgram` bundles node programs that run concurrently under
one starter (the cluster's creator, and hence the manager of cluster
scope).  One node's failure invalidates the whole cluster: the starter
kills the survivors and reports a cluster-scope error, which the schedd
retries at a new site -- the node's own exception never masquerades as a
program result for the cluster.
"""

from repro.pvm.program import PvmProgram

__all__ = ["PvmProgram"]
