#!/usr/bin/env python3
"""Two extensions the paper points at but does not build (§2.1, §5):

1. Standard Universe checkpointing under an eviction storm -- Condor's
   "transparent checkpointing" measured as re-executed work saved;
2. the end-to-end layer above Condor catching *implicit* errors (silent
   network corruption) that no layer below the application can see.

Run:  python examples/checkpointing_and_e2e.py
"""

from repro.harness.experiments import run_checkpoint_ablation, run_end_to_end


def main() -> None:
    print(run_checkpoint_ablation().table().render())
    print()
    ckpt = run_checkpoint_ablation()
    saved = ckpt.row(False).reexecuted_steps - ckpt.row(True).reexecuted_steps
    print(f"Checkpointing saved {saved} re-executed steps under the same "
          "eviction schedule.")
    print()
    result = run_end_to_end()
    print(result.table().render())
    print()
    bare = result.row("no end-to-end layer")
    print(f"Without output analysis, {bare.wrong_outputs_delivered} corrupted "
          "outputs were delivered as success --")
    print("\"the ultimate responsibility for detecting such errors lies with "
          "a higher level of software.\" (§5)")


if __name__ == "__main__":
    main()
