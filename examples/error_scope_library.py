#!/usr/bin/env python3
"""Using the error-scope theory as a standalone library.

The core abstractions -- scopes, the implicit/explicit/escaping taxonomy,
finite error interfaces, scope-manager chains, and the principle auditor
-- are independent of the Condor simulation.  This example applies them
to the paper's running examples: the FileWriter interface of §3.4 and the
virtual-memory system of §3.2.

Run:  python examples/error_scope_library.py
"""

from repro.core import (
    ErrorInterface,
    ErrorScope,
    EscapingError,
    ManagementChain,
    PrincipleAuditor,
    ScopeManager,
    explicit,
)


def revised_file_writer() -> ErrorInterface:
    """The paper's §3.4 prescription, verbatim:

        class FileWriter {
            FileWriter( File f ) throws FileNotFound, AccessDenied;
            void write( int )    throws DiskFull;
        }
    """
    iface = ErrorInterface("FileWriter")
    iface.operation("open", {"FileNotFound", "AccessDenied"})
    iface.operation("write", {"DiskFull"})
    return iface


def main() -> None:
    # -- Principle 4: concise, finite interfaces --------------------------
    writer = revised_file_writer()
    print("interface:", *(str(op) for op in writer.operations()), sep="\n  ")
    print()

    # A declared error passes through as an ordinary explicit result:
    err = explicit("DiskFull", ErrorScope.FILE, detail="/home/user/out")
    returned = writer.vet("write", err)
    print(f"write -> explicit {returned}")

    # An out-of-contract error is converted to an escaping error (P2):
    lost = explicit("ConnectionLost", ErrorScope.PROCESS, detail="avian carrier down")
    try:
        writer.vet("write", lost)
    except EscapingError as esc:
        print(f"write -> ESCAPING {esc.error} (converted at the interface)")
    print()

    # -- Principle 3: propagate to the manager of the scope -----------------
    chain = ManagementChain([
        ScopeManager("function", {ErrorScope.FILE, ErrorScope.FUNCTION}),
        ScopeManager("process", {ErrorScope.PROGRAM, ErrorScope.PROCESS}),
        ScopeManager("cluster", {ErrorScope.CLUSTER, ErrorScope.REMOTE_RESOURCE}),
        ScopeManager("system", {ErrorScope.LOCAL_RESOURCE, ErrorScope.JOB, ErrorScope.POOL}),
    ])
    outcome = chain.propagate(lost.rescoped(ErrorScope.PROCESS), discovered_by="function")
    print(f"ConnectionLost routed to: {outcome.handler} (hops: {outcome.hops})")
    print()
    print("trace:")
    print(chain.trace.render())
    print()

    # -- The auditor --------------------------------------------------------
    auditor = PrincipleAuditor()
    auditor.audit_interfaces([writer])
    auditor.audit_trace(chain.trace)
    print(auditor.render())


if __name__ == "__main__":
    main()
