#!/usr/bin/env python3
"""The NFS hard/soft mount dilemma (§5), plus the mechanism NFS lacks.

"Both users and administrators routinely comment how both of these
choices are unsavory, as they offer no mechanism for a single program to
choose its own failure criteria."  The third mode below -- a
per-operation deadline -- is that mechanism.

Run:  python examples/nfs_mount_dilemma.py
"""

from repro.harness.experiments import run_nfs_mounts


def main() -> None:
    result = run_nfs_mounts(outages=(5.0, 60.0, 600.0, 3600.0),
                            soft_timeout=30.0, deadline=120.0)
    print(result.table().render())
    print()
    print("hard mounts hide every outage inside elapsed time;")
    print("soft mounts expose even outages the program could have survived;")
    print("a per-operation deadline puts the crossover where the program wants it.")


if __name__ == "__main__":
    main()
