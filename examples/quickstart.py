#!/usr/bin/env python3
"""Quickstart: submit Java jobs to a simulated Condor pool and watch them run.

Builds a four-machine pool, submits three jobs (a clean one, one that
calls System.exit, one that throws), runs the simulation, and prints the
user log plus each job's delivered result.

Run:  python examples/quickstart.py
"""

from repro.condor import Job, Pool, PoolConfig, ProgramImage, Universe
from repro.jvm.program import JavaProgram, Step


def main() -> None:
    pool = Pool(PoolConfig(n_machines=4, seed=42))

    # A well-behaved job: compute for 20 simulated CPU-seconds.
    clean = Job(
        "1.0",
        owner="alice",
        universe=Universe.JAVA,
        image=ProgramImage("clean.class", program=JavaProgram(steps=[Step.compute(20.0)])),
    )

    # A job that exits with a code -- a result the user wants verbatim.
    coder = Job(
        "1.1",
        owner="alice",
        universe=Universe.JAVA,
        image=ProgramImage(
            "coder.class",
            program=JavaProgram(steps=[Step.compute(5.0), Step.exit(3)]),
        ),
    )

    # A buggy job: "users wanted to see program generated errors such as
    # an ArrayIndexOutOfBoundsException" (paper §2.3).
    buggy = Job(
        "1.2",
        owner="alice",
        universe=Universe.JAVA,
        image=ProgramImage(
            "buggy.class",
            program=JavaProgram(
                steps=[Step.compute(2.0), Step.throw("ArrayIndexOutOfBoundsException")]
            ),
        ),
    )

    for job in (clean, coder, buggy):
        pool.submit(job)

    pool.run_until_done(max_time=10_000)

    print("=== user log ===")
    print(pool.userlog.render())
    print()
    print("=== delivered results ===")
    for job in (clean, coder, buggy):
        print(f"  {job.job_id}: {job.state.value:<10} {job.final_result}")
        site = job.attempts[0].site if job.attempts else "-"
        print(f"        ran on {site}, {job.attempt_count} attempt(s)")


if __name__ == "__main__":
    main()
