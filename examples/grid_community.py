#!/usr/bin/env python3
"""A whole grid community in one script (§2.1's "community of computers").

Puts every subsystem on stage at once:

- a heterogeneous pool: PC-cluster machines plus one 4-slot SMP;
- two submission sites (two schedds) with fair-share negotiation;
- jobs written in the Condor submit language;
- one prized machine whose owner prefers (and preempts for) one user;
- a misconfigured machine caught by the startd self-test;
- operator views: condor_status, condor_q, the error-scope report, and
  trace analytics.

Run:  python examples/grid_community.py
"""

from repro.analysis import analyze_trace
from repro.condor import Pool, PoolConfig
from repro.condor.daemons.config import CondorConfig
from repro.condor.submit import parse_submit
from repro.condor.tools import condor_q, condor_status, error_scope_report, timeline
from repro.jvm.program import JavaProgram, Step
from repro.sim.machine import JavaInstallation, OwnerPolicy

MB = 2**20


def main() -> None:
    condor = CondorConfig(
        error_mode="scoped",
        startd_self_test=True,
        schedd_avoidance=True,
        fair_share=True,
        preemption=True,
    )
    pool = Pool(PoolConfig(n_machines=3, condor=condor))
    pool.add_machine("bigsmp", slots=4, memory=2048 * MB, cpu_speed=2.0)
    pool.add_machine(
        "prized",
        policy=OwnerPolicy(rank_expr='ifThenElse(TARGET.owner == "carol", 10, 1)'),
    )
    pool.add_machine("brokenjvm", java=JavaInstallation(classpath_ok=False))

    # Alice's sweep, written as a submit file.
    sweep = JavaProgram(steps=[Step.compute(30.0)])
    alice_jobs = parse_submit(
        """
        universe     = java
        executable   = Sweep.class
        owner        = alice
        rank         = TARGET.cpuspeed
        queue 8
        """,
        cluster=1,
        programs={"Sweep.class": sweep},
    )
    for job in alice_jobs:
        pool.submit(job)

    # Bob submits from his own site, a bit later.
    bob_schedd = pool.add_schedd("bobs-site")
    bob_jobs = parse_submit(
        "universe = java\nexecutable = B.class\nowner = bob\nqueue 3\n",
        cluster=2,
        programs={"B.class": JavaProgram(steps=[Step.compute(20.0)])},
    )
    for job in bob_jobs:
        pool.sim.call_at(60.0, lambda j=job: bob_schedd.submit(j))

    # Carol's urgent job preempts whatever squats on her prized machine.
    carol_jobs = parse_submit(
        """
        universe = java
        executable = Urgent.class
        owner = carol
        requirements = TARGET.machine == "prized"
        queue 1
        """,
        cluster=3,
        programs={"Urgent.class": JavaProgram(steps=[Step.compute(15.0)])},
    )
    for job in carol_jobs:
        pool.sim.call_at(90.0, lambda j=job: pool.submit(j))

    pool.run_until_done(max_time=100_000, expected_jobs=12)

    print(condor_status(pool))
    print()
    print(condor_q(pool))
    print()
    print("bob's queue:")
    for job in bob_jobs:
        print(f"  {job.job_id}: {job.state.value} {job.final_result}")
    print()
    print(error_scope_report(pool))
    print()
    print(timeline(pool, width=60))
    print()
    print(analyze_trace(pool.trace).table().render())
    print()
    evicted = any(
        a.error_name.startswith("Evicted")
        for schedd in pool.schedds.values()
        for job in schedd.jobs.values()
        for a in job.attempts
    )
    print("notes:")
    print(" - brokenjvm advertised no Java capability (self-test), so no job died there;")
    if evicted:
        print(" - carol's job preempted the squatter on 'prized';")
    else:
        print(" - 'prized' happened to be free when carol arrived (no preemption needed);")
    print(" - bob's small batch was not starved by alice's sweep (fair share).")


if __name__ == "__main__":
    main()
