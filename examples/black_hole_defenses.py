#!/usr/bin/env python3
"""Black-hole machines and the §5 defenses.

"A small number of misconfigured machines in our Condor pool attracted a
continuous stream of jobs that would attempt to execute, fail, and be
returned to the schedd."  This example measures that waste and the two
defenses the paper discusses: the startd's Autoconf-style self-test, and
schedd-side chronic-failure avoidance.

Run:  python examples/black_hole_defenses.py
"""

from repro.harness.experiments import run_black_hole


def main() -> None:
    result = run_black_hole(seed=3, n_jobs=16, n_machines=6, n_black_holes=2)
    print(result.table().render())
    print()
    none = result.row("none")
    selftest = result.row("self-test")
    print(f"Undefended, the pool wasted {none.wasted_attempts} executions and "
          f"{none.network_bytes - selftest.network_bytes} extra network bytes.")
    print("With the startd self-test, the black holes simply stopped "
          "advertising Java capability -- zero waste.")


if __name__ == "__main__":
    main()
