#!/usr/bin/env python3
"""The paper's before/after: the same faulty pool, naive vs scope-aware.

Reproduces the §2.3 experience ("nearly any failure in a component of the
system would cause the job to be returned to the user with an error
message") and the §4 fix ("the hailstorm of error messages abated"), then
audits both runs against the four principles.

Run:  python examples/java_universe_faults.py
"""

from repro.harness.experiments import run_naive_vs_scoped


def main() -> None:
    result = run_naive_vs_scoped(seed=7, n_jobs=24, n_machines=6)
    print(result.table().render())
    print()
    naive, scoped = result.naive, result.scoped
    print("The naive system exposed", naive.user_visible_incidental,
          "environmental errors to the user;")
    print("the scope-aware system exposed", scoped.user_visible_incidental,
          "-- it absorbed them with", scoped.wasted_attempts, "retries instead.")
    print()
    print("Principle violations (naive / scoped):")
    for p in (1, 2, 3, 4):
        print(f"  P{p}: {result.naive_violations[p]} / {result.scoped_violations[p]}")


if __name__ == "__main__":
    main()
