"""Property-based pinning of ``Injection.active_during`` boundary semantics.

The decided semantics (see the ``Injection`` docstring): the injection
window is the **closed** interval ``[at, until]`` (``[at, inf)`` when
open-ended), an attempt occupies the closed interval ``[start, end]``,
and the injection is active iff the intervals intersect.  Closed-closed
is deliberate: at a shared boundary instant the arm/disarm callback and
the attempt event carry the same timestamp, so the attempt *may* have
observed the armed fault, and ground truth must err toward blaming the
fault rather than the program.

The cases the old half-open test (``start < hi and end > lo``) silently
dropped -- zero-length attempts, instantaneous faults, and exact
boundary hits -- are each pinned here, by property and by example.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.faults.faults import Fault
from repro.faults.injector import Injection

TIMES = st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False)


@st.composite
def intervals(draw):
    a, b = sorted((draw(TIMES), draw(TIMES)))
    return a, b


def injection(at: float, until: float | None) -> Injection:
    return Injection(Fault(), at=at, until=until)


def model(at: float, until: float | None, start: float, end: float) -> bool:
    """Closed-interval intersection, the reference semantics."""
    hi = float("inf") if until is None else until
    return end >= at and start <= hi


class TestClosedIntervalModel:
    @given(window=intervals(), attempt=intervals())
    def test_bounded_window_matches_model(self, window, attempt):
        at, until = window
        start, end = attempt
        assert injection(at, until).active_during(
            None, "1.0", start, end
        ) == model(at, until, start, end)

    @given(at=TIMES, attempt=intervals())
    def test_open_ended_window_matches_model(self, at, attempt):
        start, end = attempt
        assert injection(at, None).active_during(
            None, "1.0", start, end
        ) == model(at, None, start, end)


class TestPinnedBoundaries:
    @given(window=intervals(), t=TIMES)
    def test_zero_length_attempt_counts_iff_inside_window(self, window, t):
        """start == end: active exactly when the instant is in the window."""
        at, until = window
        assert injection(at, until).active_during(
            None, "1.0", t, t
        ) == (at <= t <= until)

    @given(at=TIMES, attempt=intervals())
    def test_instantaneous_fault_counts_iff_attempt_contains_it(self, at, attempt):
        """at == until: an empty-by-half-open window still blames attempts
        spanning the arm instant (arm runs before disarm at the same time)."""
        start, end = attempt
        assert injection(at, at).active_during(
            None, "1.0", start, end
        ) == (start <= at <= end)

    def test_boundary_table(self):
        """The exact cases the old ``start < hi and end > lo`` test dropped."""
        window = injection(100.0, 200.0)
        # Attempt ending exactly at the arm instant: now counts.
        assert window.active_during(None, "1.0", 50.0, 100.0)
        # Attempt starting exactly at the disarm instant: now counts.
        assert window.active_during(None, "1.0", 200.0, 250.0)
        # Strictly outside on either side: still inactive.
        assert not window.active_during(None, "1.0", 0.0, 99.9)
        assert not window.active_during(None, "1.0", 200.1, 300.0)
        # Zero-length attempt at each boundary and in the middle.
        assert window.active_during(None, "1.0", 100.0, 100.0)
        assert window.active_during(None, "1.0", 150.0, 150.0)
        assert window.active_during(None, "1.0", 200.0, 200.0)
        assert not window.active_during(None, "1.0", 99.0, 99.0)
        # Instantaneous fault: active only for attempts containing it.
        instant = injection(100.0, 100.0)
        assert instant.active_during(None, "1.0", 90.0, 110.0)
        assert instant.active_during(None, "1.0", 100.0, 100.0)
        assert not instant.active_during(None, "1.0", 100.5, 110.0)
        # Open-ended window: active from the arm instant forever.
        forever = injection(100.0, None)
        assert forever.active_during(None, "1.0", 100.0, 100.0)
        assert forever.active_during(None, "1.0", 1e9, 2e9)
        assert not forever.active_during(None, "1.0", 0.0, 99.0)


class TestTargetFilters:
    @given(attempt=intervals())
    def test_site_fault_only_blames_its_site(self, attempt):
        start, end = attempt
        inj = Injection(Fault(site="exec000"), at=0.0, until=None)
        assert not inj.active_during("exec001", "1.0", start, end)
        assert inj.active_during("exec000", "1.0", start, end) == (end >= 0.0)

    @given(attempt=intervals())
    def test_job_fault_only_blames_its_job(self, attempt):
        start, end = attempt
        inj = Injection(Fault(job_id="1.0"), at=0.0, until=None)
        assert not inj.active_during("exec000", "1.1", start, end)
        assert inj.active_during("exec000", "1.0", start, end) == (end >= 0.0)
