"""Tests for the classification table and the result file."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classify import DEFAULT_CLASSIFIER, ExceptionClassifier
from repro.core.result import ResultFile, ResultStatus
from repro.core.scope import ErrorScope


class TestClassifier:
    def test_figure_4_rows(self):
        """The five exceptional rows of Figure 4, via the wrapper's table."""
        c = DEFAULT_CLASSIFIER
        # "The program de-referenced a null pointer." -> Program
        assert c.classify("java", "NullPointerException").scope is ErrorScope.PROGRAM
        # "There was not enough memory for the program." -> Virtual Machine
        assert c.classify("java", "OutOfMemoryError").scope is ErrorScope.VIRTUAL_MACHINE
        # "The Java installation is misconfigured." -> Remote Resource
        assert (
            c.classify("condor", "JvmMisconfigured").scope is ErrorScope.REMOTE_RESOURCE
        )
        # "The home file system was offline." -> Local Resource
        assert (
            c.classify("java", "ConnectionTimedOutException").scope
            is ErrorScope.LOCAL_RESOURCE
        )
        # "The program image was corrupt." -> Job
        assert c.classify("java", "ClassFormatError").scope is ErrorScope.JOB

    def test_section_2_3_examples(self):
        c = DEFAULT_CLASSIFIER
        assert (
            c.classify("java", "ArrayIndexOutOfBoundsException").scope
            is ErrorScope.PROGRAM
        )
        assert c.classify("java", "VirtualMachineError").scope is ErrorScope.VIRTUAL_MACHINE

    def test_fs_code_mapping(self):
        c = DEFAULT_CLASSIFIER
        assert c.classify("fs", "ENOENT").canonical == "FileNotFound"
        assert c.classify("fs", "ENOENT").scope is ErrorScope.FILE
        assert c.classify("fs", "EIO").scope is ErrorScope.LOCAL_RESOURCE
        assert c.classify("fs", "ENOSPC").canonical == "DiskFull"

    def test_net_codes_are_process_scope(self):
        """'A failure in remote procedure call has process scope.' (§3.3)"""
        c = DEFAULT_CLASSIFIER
        for code in ("ECONNRESET", "ETIMEDOUT", "ECONNREFUSED"):
            assert c.classify("net", code).scope is ErrorScope.PROCESS

    def test_chirp_codes(self):
        c = DEFAULT_CLASSIFIER
        assert c.classify("chirp", "NOT_FOUND").canonical == "FileNotFound"
        assert (
            c.classify("chirp", "CREDENTIAL_EXPIRED").scope is ErrorScope.LOCAL_RESOURCE
        )

    def test_unknown_java_error_heuristic(self):
        got = DEFAULT_CLASSIFIER.classify("java", "SomeNovelError")
        assert got.scope is ErrorScope.VIRTUAL_MACHINE
        assert not got.known

    def test_unknown_java_exception_heuristic(self):
        got = DEFAULT_CLASSIFIER.classify("java", "UserDefinedException")
        assert got.scope is ErrorScope.PROGRAM
        assert not got.known

    def test_unknown_namespace_conservative(self):
        got = DEFAULT_CLASSIFIER.classify("mystery", "Whatever")
        assert got.scope is ErrorScope.JOB and not got.known

    def test_custom_registration_overrides_heuristic(self):
        c = ExceptionClassifier()
        c.register("java", "PigeonLostError", ErrorScope.LOCAL_RESOURCE, "PigeonLost")
        got = c.classify("java", "PigeonLostError")
        assert got.scope is ErrorScope.LOCAL_RESOURCE
        assert got.canonical == "PigeonLost"
        assert c.knows("java", "PigeonLostError")
        assert not c.knows("java", "Other")


class TestResultFile:
    def test_completed_round_trip(self):
        rf = ResultFile.completed(7)
        parsed = ResultFile.parse(rf.serialize())
        assert parsed == rf
        assert parsed.is_program_result

    def test_exception_round_trip(self):
        rf = ResultFile.exception("NullPointerException", detail="at Main.java:3")
        parsed = ResultFile.parse(rf.serialize())
        assert parsed == rf
        assert parsed.is_program_result

    def test_environment_round_trip(self):
        rf = ResultFile.environment(
            ErrorScope.REMOTE_RESOURCE, "JvmMisconfigured", "bad classpath"
        )
        parsed = ResultFile.parse(rf.serialize())
        assert parsed == rf
        assert not parsed.is_program_result

    def test_environment_is_never_program_result(self):
        for scope in ErrorScope:
            rf = ResultFile.environment(scope, "E")
            assert not rf.is_program_result

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ResultFile.parse(b"not a result file")
        with pytest.raises(ValueError):
            ResultFile.parse(b"status=nonsense\n")
        with pytest.raises(ValueError):
            ResultFile.parse(b"exit_code=1\n")

    def test_parse_rejects_bad_scope(self):
        with pytest.raises(ValueError):
            ResultFile.parse(b"status=environment\nerror=X\n")

    def test_str_forms(self):
        assert "exit=3" in str(ResultFile.completed(3))
        assert "NullPointerException" in str(ResultFile.exception("NullPointerException"))
        assert "remote-resource" in str(
            ResultFile.environment(ErrorScope.REMOTE_RESOURCE, "X")
        )

    @given(st.integers(min_value=0, max_value=255))
    def test_property_exit_codes_round_trip(self, code):
        assert ResultFile.parse(ResultFile.completed(code).serialize()).exit_code == code

    @given(
        st.sampled_from(list(ErrorScope)),
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126, exclude_characters="="),
            min_size=1,
            max_size=30,
        ),
    )
    def test_property_environment_round_trip(self, scope, name):
        rf = ResultFile.environment(scope, name)
        parsed = ResultFile.parse(rf.serialize())
        assert parsed.scope is scope and parsed.error_name == name
