"""Tests for scope managers and the propagation engine (Principle 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import explicit
from repro.core.propagation import (
    Action,
    EventType,
    ManagementChain,
    PropagationTrace,
    ScopeManager,
)
from repro.core.scope import ErrorScope


def java_universe_chain(policies=None):
    """Build the Figure-3 chain; *policies* maps manager name -> policy."""
    policies = policies or {}
    spec = [
        ("program", {ErrorScope.FILE, ErrorScope.FUNCTION}),
        ("wrapper", {ErrorScope.PROGRAM, ErrorScope.PROCESS}),
        ("starter", {ErrorScope.VIRTUAL_MACHINE, ErrorScope.CLUSTER}),
        ("shadow", {ErrorScope.REMOTE_RESOURCE}),
        ("schedd", {ErrorScope.LOCAL_RESOURCE, ErrorScope.JOB}),
        ("user", {ErrorScope.POOL}),
    ]
    return ManagementChain(
        [ScopeManager(name, scopes, policies.get(name)) for name, scopes in spec]
    )


def test_error_delivered_to_scope_manager():
    chain = java_universe_chain()
    err = explicit("OutOfMemoryError", ErrorScope.VIRTUAL_MACHINE)
    outcome = chain.propagate(err, discovered_by="wrapper", time=1.0)
    assert outcome.handler == "starter"
    assert outcome.action is Action.REPORT
    assert outcome.hops == 1  # escalated past the wrapper only


def test_file_scope_handled_by_program():
    chain = java_universe_chain()
    err = explicit("FileNotFound", ErrorScope.FILE)
    outcome = chain.propagate(err, discovered_by="program")
    assert outcome.handler == "program"
    assert outcome.hops == 0


def test_job_scope_reaches_schedd():
    chain = java_universe_chain()
    err = explicit("CorruptImageError", ErrorScope.JOB)
    outcome = chain.propagate(err, discovered_by="wrapper")
    assert outcome.handler == "schedd"


def test_propagation_only_travels_outward():
    """A LOCAL_RESOURCE error discovered at the shadow must go out to the
    schedd, never back in to the program."""
    chain = java_universe_chain()
    err = explicit("HomeFilesystemOffline", ErrorScope.LOCAL_RESOURCE)
    outcome = chain.propagate(err, discovered_by="shadow")
    assert outcome.handler == "schedd"
    escalated = [e.manager for e in chain.trace if e.event is EventType.ESCALATED]
    assert escalated == ["shadow"]


def test_mask_policy_absorbs():
    chain = java_universe_chain(
        policies={"starter": lambda mgr, err: Action.MASK}
    )
    err = explicit("OutOfMemoryError", ErrorScope.VIRTUAL_MACHINE)
    outcome = chain.propagate(err, discovered_by="wrapper")
    assert outcome.masked
    assert chain.trace.count(EventType.MASKED) == 1
    assert chain.trace.count(EventType.REPORTED) == 0


def test_policy_returning_none_reports():
    chain = java_universe_chain(policies={"schedd": lambda mgr, err: None})
    err = explicit("CorruptImageError", ErrorScope.JOB)
    assert chain.propagate(err, "wrapper").action is Action.REPORT


def test_policy_cannot_escalate_from_delivery():
    chain = java_universe_chain(policies={"schedd": lambda mgr, err: Action.ESCALATE})
    err = explicit("CorruptImageError", ErrorScope.JOB)
    assert chain.propagate(err, "wrapper").action is Action.REPORT


def test_unmanaged_error_recorded():
    chain = ManagementChain(
        [ScopeManager("only", {ErrorScope.FILE})]
    )
    err = explicit("MatchmakerGone", ErrorScope.POOL)
    outcome = chain.propagate(err, discovered_by="only")
    assert outcome.handler is None
    assert chain.trace.count(EventType.UNMANAGED) == 1


def test_misdeliver_recorded_as_mishandled():
    chain = java_universe_chain()
    err = explicit("OutOfMemoryError", ErrorScope.VIRTUAL_MACHINE)
    chain.misdeliver(err, consumed_by="user", time=2.0)
    events = chain.trace.for_error(err)
    assert [e.event for e in events] == [EventType.MISHANDLED]


def test_trace_journey_order():
    chain = java_universe_chain()
    err = explicit("JvmMisconfigured", ErrorScope.REMOTE_RESOURCE)
    chain.propagate(err, discovered_by="starter", time=5.0)
    kinds = [e.event for e in chain.trace.for_error(err)]
    assert kinds == [
        EventType.DISCOVERED,
        EventType.ESCALATED,  # starter does not manage remote-resource
        EventType.DELIVERED,  # shadow does
        EventType.REPORTED,
    ]


def test_trace_terminal():
    chain = java_universe_chain()
    err = explicit("X", ErrorScope.JOB)
    chain.propagate(err, "program")
    terminal = chain.trace.terminal(err)
    assert terminal is not None and terminal.event is EventType.REPORTED
    fresh = explicit("Y", ErrorScope.JOB)
    assert chain.trace.terminal(fresh) is None


def test_manager_handled_log():
    chain = java_universe_chain()
    err = explicit("X", ErrorScope.VIRTUAL_MACHINE)
    chain.propagate(err, "wrapper")
    starter = chain["starter"]
    assert starter.handled == [(err, Action.REPORT)]


def test_manager_for():
    chain = java_universe_chain()
    assert chain.manager_for(ErrorScope.JOB).name == "schedd"
    chain_small = ManagementChain([ScopeManager("m", {ErrorScope.FILE})])
    assert chain_small.manager_for(ErrorScope.POOL) is None


def test_chain_validation():
    with pytest.raises(ValueError):
        ManagementChain([])
    with pytest.raises(ValueError):
        ManagementChain(
            [ScopeManager("a", {ErrorScope.FILE}), ScopeManager("a", {ErrorScope.JOB})]
        )


def test_unknown_manager_lookup():
    chain = java_universe_chain()
    with pytest.raises(KeyError):
        chain["nobody"]
    with pytest.raises(KeyError):
        chain.index("nobody")


def test_trace_render_mentions_events():
    chain = java_universe_chain()
    chain.propagate(explicit("X", ErrorScope.JOB), "program")
    text = chain.trace.render()
    assert "discovered" in text and "reported" in text


scopes = st.sampled_from(list(ErrorScope))
starts = st.sampled_from(["program", "wrapper", "starter", "shadow", "schedd", "user"])


@given(scopes, starts)
def test_property_delivery_matches_scope(scope, start):
    """For any scope and discovery point, the handler (if any) manages the
    scope, and no manager inside the discovery point is visited."""
    chain = java_universe_chain()
    err = explicit("E", scope)
    outcome = chain.propagate(err, discovered_by=start)
    if outcome.handler is not None:
        handler = chain[outcome.handler]
        assert handler.manages(scope)
        # handler must not be inside the discovery point
        assert chain.index(outcome.handler) >= chain.index(start)
    else:
        # nobody outward of start manages this scope
        for mgr in chain.managers[chain.index(start):]:
            assert not mgr.manages(scope)


@given(scopes, starts)
def test_property_trace_starts_with_discovery(scope, start):
    chain = java_universe_chain()
    err = explicit("E", scope)
    chain.propagate(err, discovered_by=start)
    journey = chain.trace.for_error(err)
    assert journey[0].event is EventType.DISCOVERED
    assert journey[0].manager == start
