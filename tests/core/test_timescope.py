"""Tests for time-dependent scope resolution (§5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.scope import ErrorScope
from repro.core.timescope import DEFAULT_LADDER, EscalationLadder, TimeScopeEscalator


class TestLadder:
    def test_default_ladder_valid(self):
        ladder = EscalationLadder()
        assert ladder.scope_for(0.0) is ErrorScope.PROCESS
        assert ladder.scope_for(59.9) is ErrorScope.PROCESS
        assert ladder.scope_for(60.0) is ErrorScope.REMOTE_RESOURCE
        assert ladder.scope_for(3600.0) is ErrorScope.JOB

    def test_ladder_must_start_at_zero(self):
        with pytest.raises(ValueError):
            EscalationLadder(((5.0, ErrorScope.PROCESS),))

    def test_ladder_durations_monotone(self):
        with pytest.raises(ValueError):
            EscalationLadder(
                ((0.0, ErrorScope.PROCESS), (50.0, ErrorScope.JOB),
                 (10.0, ErrorScope.REMOTE_RESOURCE))
            )

    def test_ladder_scopes_must_widen(self):
        with pytest.raises(ValueError):
            EscalationLadder(
                ((0.0, ErrorScope.JOB), (60.0, ErrorScope.PROCESS))
            )

    @given(st.floats(min_value=0.0, max_value=10**6, allow_nan=False))
    def test_scope_monotone_in_duration(self, duration):
        ladder = EscalationLadder()
        assert ladder.scope_for(duration + 1.0) >= ladder.scope_for(duration)


class TestEscalator:
    def test_first_failure_is_narrow(self):
        esc = TimeScopeEscalator()
        assert esc.record_failure("svc", now=100.0) is ErrorScope.PROCESS

    def test_persistent_failure_escalates(self):
        esc = TimeScopeEscalator()
        esc.record_failure("svc", now=0.0)
        assert esc.record_failure("svc", now=61.0) is ErrorScope.REMOTE_RESOURCE
        assert esc.record_failure("svc", now=4000.0) is ErrorScope.JOB

    def test_success_resets_the_clock(self):
        esc = TimeScopeEscalator()
        esc.record_failure("svc", now=0.0)
        esc.record_success("svc")
        assert esc.record_failure("svc", now=100.0) is ErrorScope.PROCESS
        assert esc.outage_duration("svc", now=100.0) == 0.0

    def test_targets_independent(self):
        esc = TimeScopeEscalator()
        esc.record_failure("a", now=0.0)
        assert esc.record_failure("b", now=200.0) is ErrorScope.PROCESS
        assert esc.record_failure("a", now=200.0) is ErrorScope.REMOTE_RESOURCE

    def test_failure_count(self):
        esc = TimeScopeEscalator()
        for t in (0.0, 1.0, 2.0):
            esc.record_failure("svc", now=t)
        assert esc.failures("svc") == 3
        assert esc.failures("other") == 0

    def test_outage_duration_healthy_target(self):
        assert TimeScopeEscalator().outage_duration("never-seen", now=42.0) == 0.0
