"""Tests for finite error interfaces (Principle 4) and the conversion
checkpoint (Principle 2)."""

import pytest

from repro.core.errors import ErrorKind, EscapingError, explicit
from repro.core.interfaces import ErrorInterface, InterfaceViolation
from repro.core.scope import ErrorScope


@pytest.fixture
def file_writer():
    """The paper's revised FileWriter interface (§3.4)."""
    iface = ErrorInterface("FileWriter")
    iface.operation("open", {"FileNotFound", "AccessDenied"})
    iface.operation("write", {"DiskFull"})
    return iface


@pytest.fixture
def generic_writer():
    """The paper's criticized IOException-style interface (§3.4)."""
    iface = ErrorInterface("GenericFileWriter")
    iface.operation("open", {"FileNotFound", "EndOfFile"}, generic=True)
    iface.operation("write", {"FileNotFound", "EndOfFile"}, generic=True)
    return iface


def test_declared_error_passes(file_writer):
    err = explicit("FileNotFound", ErrorScope.FILE)
    assert file_writer.vet("open", err) is err


def test_undeclared_error_escapes(file_writer):
    """'Would it be reasonable for write to throw a FileNotFound? Of course
    not!' -- so it must escape (P2)."""
    err = explicit("FileNotFound", ErrorScope.FILE)
    with pytest.raises(EscapingError) as exc:
        file_writer.vet("write", err)
    assert exc.value.error.kind is ErrorKind.ESCAPING
    assert exc.value.error.cause is err


def test_connection_lost_escapes_everywhere(file_writer):
    """'...a new type of fault, such as ConnectionLost ... must be
    communicated with an escaping error according to Principle 2.'"""
    err = explicit("ConnectionLost", ErrorScope.PROCESS)
    for op in ("open", "write"):
        with pytest.raises(EscapingError):
            file_writer.vet(op, err)


def test_escaping_error_reraised_not_returned(file_writer):
    esc = explicit("DiskFull", ErrorScope.FILE).as_escaping()
    with pytest.raises(EscapingError):
        file_writer.vet("write", esc)


def test_generic_interface_lets_anything_through(generic_writer):
    """The IOException anti-pattern: undocumented errors pass as results."""
    err = explicit("CredentialExpired", ErrorScope.LOCAL_RESOURCE)
    assert generic_writer.vet("write", err) is err
    assert generic_writer.generic_passes() == 1


def test_generic_pass_not_counted_for_documented(generic_writer):
    err = explicit("FileNotFound", ErrorScope.FILE)
    generic_writer.vet("open", err)
    assert generic_writer.generic_passes() == 0


def test_conversion_counter(file_writer):
    err = explicit("ConnectionLost", ErrorScope.PROCESS)
    with pytest.raises(EscapingError):
        file_writer.vet("open", err)
    with pytest.raises(EscapingError):
        file_writer.vet("write", err)
    assert file_writer.conversions() == 2


def test_crossings_recorded(file_writer):
    err = explicit("FileNotFound", ErrorScope.FILE)
    file_writer.vet("open", err, time=3.5)
    assert len(file_writer.crossings) == 1
    crossing = file_writer.crossings[0]
    assert crossing.declared and not crossing.converted_to_escaping
    assert crossing.time == 3.5


def test_unknown_operation_is_a_bug(file_writer):
    with pytest.raises(InterfaceViolation):
        file_writer.vet("fsync", explicit("X", ErrorScope.FILE))


def test_duplicate_operation_is_a_bug(file_writer):
    with pytest.raises(InterfaceViolation):
        file_writer.operation("open", set())


def test_operation_str(file_writer, generic_writer):
    assert "FileWriter.open throws AccessDenied, FileNotFound" == str(file_writer["open"])
    assert str(generic_writer["open"]).endswith("...")


def test_operations_listing(file_writer):
    assert sorted(op.name for op in file_writer.operations()) == ["open", "write"]


def test_empty_error_set_operation():
    iface = ErrorInterface("Clock")
    iface.operation("now")
    assert "throws nothing" in str(iface["now"])
    err = explicit("Anything", ErrorScope.FILE)
    with pytest.raises(EscapingError):
        iface.vet("now", err)
