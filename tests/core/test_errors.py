"""Tests for the error taxonomy objects."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import (
    ErrorKind,
    EscapingError,
    GridError,
    escaping,
    explicit,
    implicit,
)
from repro.core.scope import ErrorScope


def test_explicit_constructor():
    err = explicit("FileNotFound", ErrorScope.FILE, detail="/etc/none", origin="fs")
    assert err.kind is ErrorKind.EXPLICIT
    assert err.scope is ErrorScope.FILE
    assert err.detail == "/etc/none"
    assert err.cause is None


def test_implicit_constructor():
    err = implicit("SilentCorruption", ErrorScope.FILE)
    assert err.kind is ErrorKind.IMPLICIT


def test_escaping_constructor_is_raisable():
    exc = escaping("ConnectionLost", ErrorScope.PROCESS)
    assert isinstance(exc, Exception)
    assert exc.error.kind is ErrorKind.ESCAPING
    assert exc.scope is ErrorScope.PROCESS
    with pytest.raises(EscapingError):
        raise exc


def test_escaping_error_wraps_and_upgrades():
    plain = explicit("DiskFull", ErrorScope.FILE)
    exc = EscapingError(plain)
    assert exc.error.kind is ErrorKind.ESCAPING
    assert exc.error.cause is plain


def test_rescoped_links_cause_and_widens():
    low = explicit("ConnectionLost", ErrorScope.PROCESS, origin="rpc")
    high = low.rescoped(ErrorScope.LOCAL_RESOURCE, by="shadow")
    assert high.scope is ErrorScope.LOCAL_RESOURCE
    assert high.cause is low
    assert high.origin == "shadow"
    assert high.error_id == low.error_id  # identity preserved for tracing


def test_as_escaping_idempotent():
    err = explicit("X", ErrorScope.JOB)
    esc = err.as_escaping()
    assert esc.kind is ErrorKind.ESCAPING
    assert esc.as_escaping() is esc


def test_as_explicit_round_trip():
    err = explicit("X", ErrorScope.JOB)
    esc = err.as_escaping(by="iface")
    back = esc.as_explicit(by="starter")
    assert back.kind is ErrorKind.EXPLICIT
    assert back.cause is esc
    assert err.as_explicit() is err


def test_renamed_translates_vocabulary():
    fs_err = explicit("ENOENT", ErrorScope.FILE, origin="fs")
    java = fs_err.renamed("FileNotFoundException", by="io-library")
    assert java.name == "FileNotFoundException"
    assert java.cause is fs_err


def test_root_cause_and_chain():
    a = explicit("A", ErrorScope.FILE)
    b = a.rescoped(ErrorScope.PROCESS)
    c = b.as_escaping()
    assert c.root_cause() is a
    assert c.chain() == [c, b, a]


def test_error_ids_unique():
    ids = {explicit("E", ErrorScope.FILE).error_id for _ in range(100)}
    assert len(ids) == 100


def test_str_is_informative():
    err = explicit("DiskFull", ErrorScope.FILE, detail="quota")
    s = str(err)
    assert "DiskFull" in s and "file" in s and "explicit" in s and "quota" in s


def test_frozen():
    err = explicit("E", ErrorScope.FILE)
    with pytest.raises(AttributeError):
        err.name = "other"  # type: ignore[misc]


scopes = st.sampled_from(list(ErrorScope))


@given(scopes, scopes)
def test_rescope_then_rescope_preserves_root(a, b):
    root = explicit("R", a)
    twice = root.rescoped(b).rescoped(a.expand(b))
    assert twice.root_cause() is root
    assert len(twice.chain()) == 3


@given(st.text(min_size=1, max_size=20), scopes)
def test_escaping_factory_always_escapes(name, scope):
    exc = escaping(name, scope)
    assert exc.error.kind is ErrorKind.ESCAPING
    assert exc.error.name == name
