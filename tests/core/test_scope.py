"""Tests for the error-scope lattice, including hypothesis property tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.scope import GENERIC_CHAIN, JAVA_UNIVERSE_CHAIN, ErrorScope

scopes = st.sampled_from(list(ErrorScope))


def test_total_order_matches_paper():
    assert ErrorScope.FILE < ErrorScope.FUNCTION < ErrorScope.PROGRAM
    assert ErrorScope.PROGRAM < ErrorScope.PROCESS < ErrorScope.VIRTUAL_MACHINE
    assert ErrorScope.VIRTUAL_MACHINE < ErrorScope.CLUSTER < ErrorScope.REMOTE_RESOURCE
    assert ErrorScope.REMOTE_RESOURCE < ErrorScope.LOCAL_RESOURCE < ErrorScope.JOB
    assert ErrorScope.JOB < ErrorScope.POOL
    assert ErrorScope.POOL < ErrorScope.GRID  # the pool-of-pools, above §3's ladder


def test_contains_is_order():
    assert ErrorScope.JOB.contains(ErrorScope.FILE)
    assert not ErrorScope.FILE.contains(ErrorScope.JOB)
    assert ErrorScope.PROGRAM.contains(ErrorScope.PROGRAM)


@given(scopes, scopes)
def test_expand_is_join(a, b):
    joined = a.expand(b)
    assert joined.contains(a) and joined.contains(b)
    assert joined in (a, b)  # join of a chain is one of the operands


@given(scopes, scopes)
def test_expand_commutative(a, b):
    assert a.expand(b) == b.expand(a)


@given(scopes, scopes, scopes)
def test_expand_associative(a, b, c):
    assert a.expand(b).expand(c) == a.expand(b.expand(c))


@given(scopes)
def test_expand_idempotent(a):
    assert a.expand(a) == a


@given(scopes, scopes)
def test_contains_antisymmetric(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b


@given(scopes, scopes, scopes)
def test_contains_transitive(a, b, c):
    if a.contains(b) and b.contains(c):
        assert a.contains(c)


def test_program_contract_boundary():
    """Scopes up to PROGRAM are legitimate program results (paper §3.3)."""
    assert ErrorScope.FILE.within_program_contract
    assert ErrorScope.FUNCTION.within_program_contract
    assert ErrorScope.PROGRAM.within_program_contract
    assert not ErrorScope.VIRTUAL_MACHINE.within_program_contract
    assert not ErrorScope.JOB.within_program_contract


def test_schedd_last_line_of_defense():
    """Program scope -> complete; job scope -> unexecutable; between -> retry."""
    assert ErrorScope.PROGRAM.terminal_for_job
    assert ErrorScope.JOB.terminal_for_job
    assert ErrorScope.POOL.terminal_for_job
    for scope in (
        ErrorScope.PROCESS,
        ErrorScope.VIRTUAL_MACHINE,
        ErrorScope.CLUSTER,
        ErrorScope.REMOTE_RESOURCE,
        ErrorScope.LOCAL_RESOURCE,
    ):
        assert scope.retry_elsewhere
        assert not scope.terminal_for_job


@given(scopes)
def test_retry_and_terminal_partition(scope):
    """Every scope is exactly one of: retryable-elsewhere or terminal."""
    assert scope.retry_elsewhere != scope.terminal_for_job


def test_managing_programs_follow_figure_3():
    assert ErrorScope.VIRTUAL_MACHINE.managing_program == "starter"
    assert ErrorScope.REMOTE_RESOURCE.managing_program == "shadow"
    assert ErrorScope.LOCAL_RESOURCE.managing_program == "schedd"
    assert ErrorScope.JOB.managing_program == "schedd"
    assert ErrorScope.POOL.managing_program == "user"
    assert ErrorScope.GRID.managing_program == "user"


@given(scopes)
def test_every_scope_has_a_manager(scope):
    assert isinstance(scope.managing_program, str) and scope.managing_program


def test_chains_are_orderly():
    assert JAVA_UNIVERSE_CHAIN[0] == "program"
    assert JAVA_UNIVERSE_CHAIN[-1] == "user"
    assert len(set(JAVA_UNIVERSE_CHAIN)) == len(JAVA_UNIVERSE_CHAIN)
    assert len(set(GENERIC_CHAIN)) == len(GENERIC_CHAIN)


def test_str_form():
    assert str(ErrorScope.VIRTUAL_MACHINE) == "virtual-machine"
    assert str(ErrorScope.FILE) == "file"
