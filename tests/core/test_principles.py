"""Tests for the principle auditor."""

from repro.core.errors import explicit
from repro.core.interfaces import ErrorInterface
from repro.core.principles import JobGroundTruth, PrincipleAuditor
from repro.core.propagation import ManagementChain, ScopeManager
from repro.core.scope import ErrorScope


def test_p1_flags_environment_error_sold_as_result():
    auditor = PrincipleAuditor()
    outcomes = [
        JobGroundTruth("job1", ErrorScope.VIRTUAL_MACHINE, claimed_program_result=True),
        JobGroundTruth("job2", None, claimed_program_result=True),
        JobGroundTruth("job3", ErrorScope.JOB, claimed_program_result=False),
    ]
    found = auditor.audit_outcomes(outcomes)
    assert len(found) == 1
    assert found[0].principle == 1
    assert found[0].subject == "job1"


def test_p1_allows_program_scope_results():
    """Program exceptions are results the user wants to see (§2.3)."""
    auditor = PrincipleAuditor()
    outcomes = [
        JobGroundTruth("job", ErrorScope.PROGRAM, claimed_program_result=True),
        JobGroundTruth("job2", ErrorScope.FILE, claimed_program_result=True),
    ]
    assert auditor.audit_outcomes(outcomes) == []


def test_p2_p4_flag_generic_interface_passes():
    iface = ErrorInterface("JavaIO")
    iface.operation("write", {"FileNotFound"}, generic=True)
    # Environmental error smuggled through the generic op: both P4 and P2.
    iface.vet("write", explicit("CredentialExpired", ErrorScope.LOCAL_RESOURCE))
    # Program-contract error undocumented: P4 only.
    iface.vet("write", explicit("DiskFull", ErrorScope.FILE))
    auditor = PrincipleAuditor()
    found = auditor.audit_interfaces([iface])
    principles = sorted(v.principle for v in found)
    assert principles == [2, 4, 4]


def test_finite_interface_produces_no_violations():
    iface = ErrorInterface("FileWriter")
    iface.operation("write", {"DiskFull"})
    iface.vet("write", explicit("DiskFull", ErrorScope.FILE))
    try:
        iface.vet("write", explicit("CredentialExpired", ErrorScope.LOCAL_RESOURCE))
    except Exception:
        pass  # converted to escaping -- the correct behaviour
    auditor = PrincipleAuditor()
    assert auditor.audit_interfaces([iface]) == []


def test_p3_flags_mishandled_and_unmanaged():
    chain = ManagementChain([ScopeManager("only", {ErrorScope.FILE})])
    err_pool = explicit("MatchmakerGone", ErrorScope.POOL)
    chain.propagate(err_pool, "only")  # -> unmanaged
    err_vm = explicit("OutOfMemoryError", ErrorScope.VIRTUAL_MACHINE)
    chain.misdeliver(err_vm, consumed_by="only")
    auditor = PrincipleAuditor()
    found = auditor.audit_trace(chain.trace)
    assert sorted(v.principle for v in found) == [3, 3]


def test_p3_clean_propagation_no_violations():
    chain = ManagementChain(
        [
            ScopeManager("wrapper", {ErrorScope.PROGRAM}),
            ScopeManager("schedd", {ErrorScope.JOB}),
        ]
    )
    chain.propagate(explicit("E", ErrorScope.JOB), "wrapper")
    auditor = PrincipleAuditor()
    assert auditor.audit_trace(chain.trace) == []


def test_summary_counts_all_principles():
    auditor = PrincipleAuditor()
    auditor.audit_outcomes(
        [JobGroundTruth("j", ErrorScope.JOB, claimed_program_result=True)]
    )
    summary = auditor.summary()
    assert summary == {1: 1, 2: 0, 3: 0, 4: 0}


def test_render_empty_and_nonempty():
    auditor = PrincipleAuditor()
    assert "no principle violations" in auditor.render()
    auditor.audit_outcomes(
        [JobGroundTruth("j", ErrorScope.JOB, claimed_program_result=True)]
    )
    text = auditor.render()
    assert "P1" in text and "summary" in text


def test_violation_str():
    from repro.core.principles import Violation

    v = Violation(2, "something", subject="iface.op")
    assert str(v).startswith("P2 [iface.op]")
