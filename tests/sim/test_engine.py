"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Interrupted,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(5.0)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [5.0]


def test_zero_delay_timeout_fires():
    sim = Simulator()
    seen = []

    def proc(sim):
        yield sim.timeout(0.0)
        seen.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert seen == [0.0]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1.0)


def test_timeout_carries_value():
    sim = Simulator()
    got = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="ding")
        got.append(value)

    sim.spawn(proc(sim))
    sim.run()
    assert got == ["ding"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def waiter(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.spawn(waiter(sim, 3.0, "c"))
    sim.spawn(waiter(sim, 1.0, "a"))
    sim.spawn(waiter(sim, 2.0, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fifo():
    """Events at the same instant run in schedule order (determinism)."""
    sim = Simulator()
    order = []
    for i in range(20):
        sim.call_at(1.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(20))


def test_run_until_stops_clock():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(100.0)

    sim.spawn(proc(sim))
    t = sim.run(until=10.0)
    assert t == 10.0
    assert sim.now == 10.0
    # Remaining event still queued.
    assert sim.peek() == 100.0


def test_run_until_past_queue_advances_clock():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_cannot_schedule_in_past():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(5.0)
        sim.call_at(1.0, lambda: None)

    sim.spawn(proc(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_process_return_value_propagates():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(2.0)
        return 42

    def parent(sim):
        value = yield sim.spawn(child(sim))
        results.append((sim.now, value))

    sim.spawn(parent(sim))
    sim.run()
    assert results == [(2.0, 42)]


def test_waiting_on_finished_process_returns_immediately():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(1.0)
        return "done"

    def parent(sim, proc):
        yield sim.timeout(5.0)
        value = yield proc
        results.append((sim.now, value))

    proc = sim.spawn(child(sim))
    sim.spawn(parent(sim, proc))
    sim.run()
    assert results == [(5.0, "done")]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()
    caught = []

    class Boom(Exception):
        pass

    def child(sim):
        yield sim.timeout(1.0)
        raise Boom("bang")

    def parent(sim):
        try:
            yield sim.spawn(child(sim))
        except Boom as exc:
            caught.append(str(exc))

    sim.spawn(parent(sim))
    sim.run()
    assert caught == ["bang"]


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    class Boom(Exception):
        pass

    def child(sim):
        yield sim.timeout(1.0)
        raise Boom()

    sim.spawn(child(sim))
    with pytest.raises(Boom):
        sim.run()


def test_defused_failure_does_not_raise():
    sim = Simulator()

    class Boom(Exception):
        pass

    def child(sim):
        yield sim.timeout(1.0)
        raise Boom()

    sim.spawn(child(sim)).defuse()
    sim.run()


def test_event_succeed_wakes_waiters():
    sim = Simulator()
    gate = sim.event()
    woken = []

    def waiter(sim, tag):
        value = yield gate
        woken.append((tag, sim.now, value))

    def opener(sim):
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.spawn(waiter(sim, "w1"))
    sim.spawn(waiter(sim, "w2"))
    sim.spawn(opener(sim))
    sim.run()
    assert woken == [("w1", 3.0, "open"), ("w2", 3.0, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_fail_requires_exception():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.event().fail("not an exception")  # type: ignore[arg-type]


def test_any_of_first_wins():
    sim = Simulator()
    results = []

    def proc(sim):
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(10.0, value="slow")
        outcome = yield sim.any_of([fast, slow])
        results.append((sim.now, list(outcome.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    results = []

    def proc(sim):
        a = sim.timeout(1.0, value="a")
        b = sim.timeout(5.0, value="b")
        outcome = yield sim.all_of([a, b])
        results.append((sim.now, sorted(outcome.values())))

    sim.spawn(proc(sim))
    sim.run()
    assert results == [(5.0, ["a", "b"])]


def test_empty_conditions_trigger_immediately():
    sim = Simulator()
    assert AnyOf(sim, []).triggered
    assert AllOf(sim, []).triggered


def test_interrupt_waiting_process():
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
            log.append("overslept")
        except Interrupted as intr:
            log.append((sim.now, intr.cause))

    def killer(sim, victim):
        yield sim.timeout(2.0)
        victim.interrupt("wake up")

    victim = sim.spawn(sleeper(sim))
    sim.spawn(killer(sim, victim))
    sim.run()
    assert log == [(2.0, "wake up")]


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(1.0)

    proc = sim.spawn(quick(sim))
    sim.run()
    proc.interrupt("too late")  # must not raise
    sim.run()


def test_interrupted_escaping_terminates_process_with_cause():
    sim = Simulator()

    def stubborn(sim):
        yield sim.timeout(50.0)

    def killer(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt("killed")

    victim = sim.spawn(stubborn(sim))
    sim.spawn(killer(sim, victim))
    sim.run()
    assert victim.triggered and victim.ok
    assert victim.value == "killed"


def test_stale_wakeup_after_interrupt_is_ignored():
    """A process interrupted out of a wait must not be resumed again by
    the original event when it eventually fires."""
    sim = Simulator()
    log = []

    def sleeper(sim):
        try:
            yield sim.timeout(10.0)
            log.append("timeout fired into process")
        except Interrupted:
            log.append("interrupted")
            yield sim.timeout(100.0)
            log.append("second sleep done")

    def killer(sim, victim):
        yield sim.timeout(1.0)
        victim.interrupt()

    victim = sim.spawn(sleeper(sim))
    sim.spawn(killer(sim, victim))
    sim.run()
    assert log == ["interrupted", "second sleep done"]


def test_spawn_requires_generator():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_yield_non_event_is_error():
    sim = Simulator()

    def bad(sim):
        yield 42

    sim.spawn(bad(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_yield_non_event_recovery_continues_waiting():
    """A generator that catches the kernel's SimulationError and yields a
    fresh event must keep running on that event (the recovery yield used
    to be silently dropped, hanging the process forever)."""
    sim = Simulator()
    log = []

    def resilient(sim):
        try:
            yield "not an event"
        except SimulationError:
            log.append("caught")
            yield sim.timeout(3.0)
            log.append(sim.now)
        return "recovered"

    proc = sim.spawn(resilient(sim))
    sim.run()
    assert log == ["caught", 3.0]
    assert proc.triggered and proc.ok and proc.value == "recovered"


def test_yield_non_event_then_return_terminates_process():
    """A generator that catches the kernel's SimulationError and returns
    must terminate its process normally (the StopIteration used to escape
    into the event loop uncaught)."""
    sim = Simulator()

    def quitter(sim):
        try:
            yield object()
        except SimulationError:
            return "bailed"

    proc = sim.spawn(quitter(sim))
    sim.run()
    assert proc.triggered and proc.ok and proc.value == "bailed"


def test_cross_simulator_yield_recovery():
    """The same send/throw routing applies to the cross-simulator check."""
    sim, other = Simulator(), Simulator()
    log = []

    def resilient(sim):
        try:
            yield other.event()
        except SimulationError:
            yield sim.timeout(1.0)
            log.append(sim.now)

    sim.spawn(resilient(sim))
    sim.run()
    assert log == [1.0]


def test_cross_simulator_event_rejected():
    sim1 = Simulator()
    sim2 = Simulator()

    def bad(sim):
        yield sim2.event()

    sim1.spawn(bad(sim1))
    with pytest.raises(SimulationError):
        sim1.run()


def test_nested_spawn_runs_in_order():
    sim = Simulator()
    order = []

    def inner(sim, tag):
        order.append(("start", tag, sim.now))
        yield sim.timeout(1.0)
        order.append(("end", tag, sim.now))

    def outer(sim):
        sim.spawn(inner(sim, "x"))
        sim.spawn(inner(sim, "y"))
        yield sim.timeout(0.5)
        order.append(("outer", "", sim.now))

    sim.spawn(outer(sim))
    sim.run()
    assert order == [
        ("start", "x", 0.0),
        ("start", "y", 0.0),
        ("outer", "", 0.5),
        ("end", "x", 1.0),
        ("end", "y", 1.0),
    ]


def test_run_is_not_reentrant():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0.0)
        sim.run()

    sim.spawn(proc(sim))
    with pytest.raises(SimulationError):
        sim.run()
