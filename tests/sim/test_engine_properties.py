"""Property-based tests of the simulation kernel's core guarantees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=40))
@settings(max_examples=60, deadline=None)
def test_determinism_same_schedule_same_order(delays):
    """Two runs of the same schedule produce identical event orders."""

    def run():
        sim = Simulator()
        order = []
        for i, delay in enumerate(delays):
            sim.call_at(delay, lambda i=i: order.append((sim.now, i)))
        sim.run()
        return order

    assert run() == run()


@given(st.lists(st.floats(min_value=0.0, max_value=1000.0, allow_nan=False), max_size=40))
@settings(max_examples=60, deadline=None)
def test_clock_is_monotone(delays):
    sim = Simulator()
    times = []
    for delay in delays:
        sim.call_at(delay, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert sim.now == (max(delays) if delays else 0.0)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                  st.integers(min_value=0, max_value=5)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=60, deadline=None)
def test_processes_sleep_exactly_their_delays(plan):
    """Each spawned process wakes at the cumulative sum of its sleeps."""
    sim = Simulator()
    results = {}

    def sleeper(sim, pid, naps):
        for nap in naps:
            yield sim.timeout(nap)
        results[pid] = sim.now

    expected = {}
    for pid, (nap, count) in enumerate(plan):
        naps = [nap] * count
        expected[pid] = sum(naps)
        sim.spawn(sleeper(sim, pid, naps))
    sim.run()
    assert results == expected


@given(st.integers(min_value=1, max_value=30))
@settings(max_examples=30, deadline=None)
def test_fifo_at_same_instant(n):
    """Same-time events fire in schedule order, regardless of count."""
    sim = Simulator()
    order = []
    for i in range(n):
        sim.call_at(5.0, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(n))


@given(st.lists(st.floats(min_value=0.001, max_value=50.0, allow_nan=False),
                min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_any_of_fires_at_minimum(delays):
    sim = Simulator()
    winner = []

    def proc(sim):
        events = [sim.timeout(d) for d in delays]
        yield sim.any_of(events)
        winner.append(sim.now)

    sim.spawn(proc(sim))
    sim.run(until=max(delays) + 1)
    assert winner[0] == min(delays)


@given(st.lists(st.floats(min_value=0.001, max_value=50.0, allow_nan=False),
                min_size=1, max_size=15))
@settings(max_examples=40, deadline=None)
def test_all_of_fires_at_maximum(delays):
    sim = Simulator()
    done = []

    def proc(sim):
        events = [sim.timeout(d) for d in delays]
        yield sim.all_of(events)
        done.append(sim.now)

    sim.spawn(proc(sim))
    sim.run()
    assert done[0] == max(delays)
