"""Tests for the simulated network."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (
    BrokenConnection,
    ConnectionRefused,
    ConnectionTimedOut,
    HostUnreachable,
    Network,
)


def run(sim, gen):
    """Spawn *gen*, run the sim, and return the process result."""
    proc = sim.spawn(gen)
    sim.run()
    assert proc.triggered and proc.ok, proc.value
    return proc.value


def make_net(**kw):
    sim = Simulator()
    net = Network(sim, **kw)
    return sim, net


def test_connect_and_echo():
    sim, net = make_net()
    listener = net.listen("server", 80)

    def server(sim):
        conn = yield from listener.accept()
        msg = yield from conn.recv()
        conn.send(("echo", msg))

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        conn.send("hello")
        reply = yield from conn.recv()
        return reply

    sim.spawn(server(sim))
    assert run(sim, client(sim)) == ("echo", "hello")


def test_connect_unknown_host_unreachable():
    sim, net = make_net()
    net.register_host("client")

    def client(sim):
        try:
            yield from net.connect("client", "nowhere", 80)
        except HostUnreachable as exc:
            return exc.code

    assert run(sim, client(sim)) == "EHOSTUNREACH"


def test_connect_no_listener_refused():
    sim, net = make_net()
    net.register_host("server")

    def client(sim):
        try:
            yield from net.connect("client", "server", 81)
        except ConnectionRefused as exc:
            return exc.code

    assert run(sim, client(sim)) == "ECONNREFUSED"


def test_closed_listener_refuses():
    sim, net = make_net()
    listener = net.listen("server", 80)
    listener.close()

    def client(sim):
        try:
            yield from net.connect("client", "server", 80)
        except ConnectionRefused:
            return "refused"

    assert run(sim, client(sim)) == "refused"


def test_connect_to_down_host_times_out():
    sim, net = make_net()
    net.listen("server", 80)
    net.set_host_down("server")

    def client(sim):
        try:
            yield from net.connect("client", "server", 80, timeout=3.0)
        except ConnectionTimedOut:
            return sim.now

    assert run(sim, client(sim)) == 3.0


def test_partition_times_out_connect():
    sim, net = make_net()
    net.listen("server", 80)
    net.partition("client", "server")

    def client(sim):
        try:
            yield from net.connect("client", "server", 80, timeout=2.0)
        except ConnectionTimedOut:
            return "timeout"

    assert run(sim, client(sim)) == "timeout"


def test_heal_restores_connectivity():
    sim, net = make_net()
    listener = net.listen("server", 80)
    net.partition("client", "server")
    net.heal("client", "server")

    def server(sim):
        yield from listener.accept()

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        return conn is not None

    sim.spawn(server(sim))
    assert run(sim, client(sim)) is True


def test_messages_dropped_during_partition_recv_times_out():
    sim, net = make_net()
    listener = net.listen("server", 80)
    got = []

    def server(sim):
        conn = yield from listener.accept()
        try:
            yield from conn.recv(timeout=5.0)
        except ConnectionTimedOut:
            got.append("server-timeout")

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        net.partition("client", "server")
        conn.send("lost")
        return True

    sim.spawn(server(sim))
    run(sim, client(sim))
    assert got == ["server-timeout"]


def test_break_delivers_broken_connection_to_peer():
    """Breaking the connection is the wire form of an escaping error."""
    sim, net = make_net()
    listener = net.listen("server", 80)
    events = []

    def server(sim):
        conn = yield from listener.accept()
        try:
            yield from conn.recv()
        except BrokenConnection:
            events.append("peer saw break")

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        yield sim.timeout(1.0)
        conn.break_()
        return True

    sim.spawn(server(sim))
    run(sim, client(sim))
    assert events == ["peer saw break"]


def test_send_on_broken_connection_raises():
    sim, net = make_net()
    listener = net.listen("server", 80)

    def server(sim):
        yield from listener.accept()

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        conn.break_()
        try:
            conn.send("x")
        except BrokenConnection:
            return "raised"

    sim.spawn(server(sim))
    assert run(sim, client(sim)) == "raised"


def test_recv_timeout_then_late_message_not_lost():
    sim, net = make_net()
    listener = net.listen("server", 80)
    log = []

    def server(sim):
        conn = yield from listener.accept()
        try:
            yield from conn.recv(timeout=0.5)
        except ConnectionTimedOut:
            log.append("first timed out")
        msg = yield from conn.recv(timeout=10.0)
        log.append(msg)

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        yield sim.timeout(2.0)
        conn.send("late")
        return True

    sim.spawn(server(sim))
    run(sim, client(sim))
    assert log == ["first timed out", "late"]


def test_latency_applies_to_messages():
    sim, net = make_net(default_latency=0.5)
    listener = net.listen("server", 80)
    times = []

    def server(sim):
        conn = yield from listener.accept()
        yield from conn.recv()
        times.append(sim.now)

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        sent_at = sim.now
        conn.send("m")
        return sent_at

    sim.spawn(server(sim))
    sent_at = run(sim, client(sim))
    assert times[0] == pytest.approx(sent_at + 0.5)


def test_traffic_accounting():
    sim, net = make_net()
    listener = net.listen("server", 80)

    def server(sim):
        conn = yield from listener.accept()
        yield from conn.recv()

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        conn.send("payload", size=1000)
        return True

    sim.spawn(server(sim))
    run(sim, client(sim))
    assert net.traffic_bytes[("client", "server")] == 1000
    assert net.total_traffic() == 1000


def test_message_loss_probability():
    from repro.sim.rng import RngRegistry

    rng = RngRegistry(1).stream("loss")
    sim = Simulator()
    net = Network(sim, loss_probability=1.0, rng=rng)
    listener = net.listen("server", 80)
    got = []

    def server(sim):
        conn = yield from listener.accept()
        try:
            yield from conn.recv(timeout=1.0)
            got.append("received")
        except ConnectionTimedOut:
            got.append("lost")

    def client(sim):
        conn = yield from net.connect("client", "server", 80)
        conn.send("doomed")
        return True

    sim.spawn(server(sim))
    run(sim, client(sim))
    assert got == ["lost"]


def test_duplicate_listen_rejected():
    _, net = make_net()
    net.listen("h", 1)
    with pytest.raises(ValueError):
        net.listen("h", 1)


def test_loopback_has_zero_latency():
    _, net = make_net(default_latency=0.7)
    assert net.latency("h", "h") == 0.0
    assert net.latency("a", "b") == 0.7


def test_latency_override():
    _, net = make_net()
    net.set_latency("a", "b", 2.5)
    assert net.latency("a", "b") == 2.5
    assert net.latency("b", "a") == 2.5
