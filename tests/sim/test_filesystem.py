"""Tests for simulated file systems and NFS mount semantics."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError, LocalFileSystem, NfsClient


@pytest.fixture
def fs():
    fs = LocalFileSystem(capacity=1000)
    fs.mkdir("/home")
    return fs


class TestLocalFileSystem:
    def test_write_and_read(self, fs):
        fs.write_file("/home/a.txt", b"hello")
        assert fs.read_file("/home/a.txt") == b"hello"

    def test_read_missing_is_enoent(self, fs):
        with pytest.raises(FsError) as err:
            fs.read_file("/home/missing")
        assert err.value.code == "ENOENT"

    def test_write_into_missing_dir_is_enoent(self, fs):
        with pytest.raises(FsError) as err:
            fs.write_file("/nodir/x", b"")
        assert err.value.code == "ENOENT"

    def test_permission_denied_read(self, fs):
        fs.write_file("/home/secret", b"x")
        fs.chmod("/home/secret", readable=False)
        with pytest.raises(FsError) as err:
            fs.read_file("/home/secret")
        assert err.value.code == "EACCES"

    def test_permission_denied_write(self, fs):
        fs.write_file("/home/ro", b"x")
        fs.chmod("/home/ro", writable=False)
        with pytest.raises(FsError) as err:
            fs.write_file("/home/ro", b"y")
        assert err.value.code == "EACCES"

    def test_disk_full_is_enospc(self, fs):
        with pytest.raises(FsError) as err:
            fs.write_file("/home/big", b"x" * 2000)
        assert err.value.code == "ENOSPC"

    def test_quota_freed_on_unlink(self, fs):
        fs.write_file("/home/a", b"x" * 900)
        fs.unlink("/home/a")
        fs.write_file("/home/b", b"y" * 900)  # must not raise
        assert fs.read_file("/home/b") == b"y" * 900

    def test_overwrite_frees_old_space(self, fs):
        fs.write_file("/home/a", b"x" * 900)
        fs.write_file("/home/a", b"y" * 900)
        assert fs.used == 900

    def test_open_dir_is_eisdir(self, fs):
        with pytest.raises(FsError) as err:
            fs.open("/home", "r")
        assert err.value.code == "EISDIR"

    def test_mkdir_and_listdir(self, fs):
        fs.mkdir("/home/user")
        fs.write_file("/home/user/f1", b"")
        fs.write_file("/home/user/f2", b"")
        assert fs.listdir("/home/user") == ["f1", "f2"]
        assert fs.listdir("/home") == ["user"]

    def test_mkdir_parents(self, fs):
        fs.mkdir("/a/b/c", parents=True)
        assert fs.isdir("/a/b/c")

    def test_mkdir_without_parents_fails(self, fs):
        with pytest.raises(FsError):
            fs.mkdir("/a/b/c")

    def test_mkdir_over_file_is_eexist(self, fs):
        fs.write_file("/home/f", b"")
        with pytest.raises(FsError) as err:
            fs.mkdir("/home/f")
        assert err.value.code == "EEXIST"

    def test_offline_fs_is_eio(self, fs):
        fs.write_file("/home/a", b"x")
        fs.set_online(False)
        with pytest.raises(FsError) as err:
            fs.read_file("/home/a")
        assert err.value.code == "EIO"
        fs.set_online(True)
        assert fs.read_file("/home/a") == b"x"

    def test_open_handle_survives_unlink(self, fs):
        """Once open, reads do not raise namespace errors (paper §3.4)."""
        fs.write_file("/home/a", b"data")
        handle = fs.open("/home/a", "r")
        fs.unlink("/home/a")
        assert handle.read() == b"data"

    def test_handle_offline_mid_read_is_eio(self, fs):
        fs.write_file("/home/a", b"data")
        handle = fs.open("/home/a", "r")
        fs.set_online(False)
        with pytest.raises(FsError) as err:
            handle.read()
        assert err.value.code == "EIO"

    def test_closed_handle_is_ebadf(self, fs):
        fs.write_file("/home/a", b"data")
        handle = fs.open("/home/a", "r")
        handle.close()
        with pytest.raises(FsError) as err:
            handle.read()
        assert err.value.code == "EBADF"

    def test_write_on_readonly_handle_is_ebadf(self, fs):
        fs.write_file("/home/a", b"data")
        handle = fs.open("/home/a", "r")
        with pytest.raises(FsError) as err:
            handle.write(b"x")
        assert err.value.code == "EBADF"

    def test_append_mode(self, fs):
        fs.write_file("/home/a", b"one")
        handle = fs.open("/home/a", "a")
        handle.write(b"two")
        handle.close()
        assert fs.read_file("/home/a") == b"onetwo"

    def test_seek_and_partial_read(self, fs):
        fs.write_file("/home/a", b"abcdef")
        handle = fs.open("/home/a", "r")
        handle.seek(2)
        assert handle.read(3) == b"cde"
        assert handle.read() == b"f"

    def test_negative_seek_is_einval(self, fs):
        fs.write_file("/home/a", b"abc")
        handle = fs.open("/home/a", "r")
        with pytest.raises(FsError) as err:
            handle.seek(-1)
        assert err.value.code == "EINVAL"

    def test_corruption_is_silent_but_verifiable(self, fs):
        """Corruption models an implicit error: reads succeed, data is wrong."""
        fs.write_file("/home/a", b"precious")
        assert fs.verify("/home/a")
        fs.corrupt("/home/a")
        data = fs.read_file("/home/a")  # no exception!
        assert data != b"precious"
        assert not fs.verify("/home/a")

    def test_corrupt_missing_file(self, fs):
        with pytest.raises(FsError):
            fs.corrupt("/home/none")

    def test_stat(self, fs):
        fs.write_file("/home/a", b"xyz")
        assert fs.stat("/home/a").data == b"xyz"
        with pytest.raises(FsError):
            fs.stat("/home/none")

    def test_path_normalization(self, fs):
        fs.write_file("/home//a", b"x")
        assert fs.read_file("/home/a") == b"x"
        assert fs.exists("/home/a/")


class TestNfsMounts:
    def _run(self, sim, gen):
        proc = sim.spawn(gen)
        sim.run()
        assert proc.ok, proc.value
        return proc.value

    def _server(self, sim):
        server = LocalFileSystem("server", sim=sim)
        server.mkdir("/export")
        server.write_file("/export/data", b"payload")
        return server

    def test_hard_mount_blocks_through_outage(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="hard", retry_interval=1.0)
        server.set_online(False)
        sim.call_at(10.0, lambda: server.set_online(True))

        def job(sim):
            data = yield from mount.read_file("/export/data")
            return (sim.now, data)

        t, data = self._run(sim, job(sim))
        assert data == b"payload"
        assert t >= 10.0  # blocked through the outage
        assert mount.stats.retries > 0
        assert mount.stats.timeouts == 0

    def test_soft_mount_times_out(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="soft", soft_timeout=5.0, retry_interval=1.0)
        server.set_online(False)

        def job(sim):
            try:
                yield from mount.read_file("/export/data")
            except FsError as err:
                return (sim.now, err.code)

        t, code = self._run(sim, job(sim))
        assert code == "ETIMEDOUT"
        assert t >= 5.0
        assert mount.stats.timeouts == 1

    def test_soft_mount_succeeds_when_online(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="soft", soft_timeout=5.0)

        def job(sim):
            data = yield from mount.read_file("/export/data")
            return data

        assert self._run(sim, job(sim)) == b"payload"

    def test_per_operation_deadline_overrides_hard_mount(self):
        """The per-program failure criterion the paper says NFS lacks."""
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="hard", retry_interval=1.0)
        server.set_online(False)

        def job(sim):
            try:
                yield from mount.read_file("/export/data", deadline=3.0)
            except FsError as err:
                return (sim.now, err.code)

        t, code = self._run(sim, job(sim))
        assert code == "ETIMEDOUT"
        assert 3.0 <= t < 10.0

    def test_remote_errors_pass_through(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="soft")

        def job(sim):
            try:
                yield from mount.read_file("/export/missing")
            except FsError as err:
                return err.code

        assert self._run(sim, job(sim)) == "ENOENT"

    def test_remote_write(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="hard")

        def job(sim):
            yield from mount.write_file("/export/out", b"result")
            listing = yield from mount.listdir("/export")
            return listing

        assert self._run(sim, job(sim)) == ["data", "out"]
        assert server.read_file("/export/out") == b"result"

    def test_invalid_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            NfsClient(sim, LocalFileSystem(), mode="medium")

    def test_blocked_time_accounting(self):
        sim = Simulator()
        server = self._server(sim)
        mount = NfsClient(sim, server, mode="hard", retry_interval=1.0)
        server.set_online(False)
        sim.call_at(4.0, lambda: server.set_online(True))

        def job(sim):
            yield from mount.read_file("/export/data")

        self._run(sim, job(sim))
        assert mount.stats.blocked_time >= 4.0
