"""Tests for the OS-process model and machines."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.machine import JavaInstallation, Machine, MemoryError_
from repro.sim.process import ExitStatus, ProcessExit, ProcessTable, Signal


def run(sim, gen):
    proc = sim.spawn(gen)
    sim.run()
    assert proc.ok, proc.value
    return proc.value


class TestProcesses:
    def test_normal_exit_code_zero(self):
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(1.0)
            return "result"

        def parent(sim):
            proc = table.spawn("child", body())
            status = yield from proc.wait()
            return (status, proc.result)

        status, result = run(sim, parent(sim))
        assert status == ExitStatus(code=0)
        assert status.exited_normally
        assert result == "result"

    def test_explicit_exit_code(self):
        """System.exit(x)-style termination (Figure 4, row 2)."""
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(1.0)
            raise ProcessExit(3)

        def parent(sim):
            proc = table.spawn("child", body())
            status = yield from proc.wait()
            return status

        assert run(sim, parent(sim)) == ExitStatus(code=3)

    def test_crash_is_signal_death(self):
        """The parent sees only a signal, not the Python traceback."""
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(1.0)
            raise RuntimeError("invisible detail")

        def parent(sim):
            proc = table.spawn("child", body())
            status = yield from proc.wait()
            return status

        status = run(sim, parent(sim))
        assert not status.exited_normally
        assert status.signal == Signal.SIGSEGV

    def test_kill_delivers_signal(self):
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(100.0)

        def parent(sim):
            proc = table.spawn("victim", body())
            yield sim.timeout(1.0)
            proc.kill(Signal.SIGTERM)
            status = yield from proc.wait()
            return (sim.now, status)

        t, status = run(sim, parent(sim))
        assert t == 1.0
        assert status.signal == Signal.SIGTERM

    def test_wait_on_dead_process_is_immediate(self):
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(1.0)

        def parent(sim):
            proc = table.spawn("child", body())
            yield sim.timeout(5.0)
            status = yield from proc.wait()
            return (sim.now, status)

        t, status = run(sim, parent(sim))
        assert t == 5.0
        assert status.code == 0

    def test_pids_unique_and_increasing(self):
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(1.0)

        pids = [table.spawn(f"p{i}", body()).pid for i in range(5)]
        assert pids == [1, 2, 3, 4, 5]

    def test_living_and_kill_all(self):
        sim = Simulator()
        table = ProcessTable(sim)

        def body():
            yield sim.timeout(100.0)

        for i in range(3):
            table.spawn(f"p{i}", body())
        assert len(table.living()) == 3
        table.kill_all()
        sim.run()
        assert table.living() == []
        assert all(
            p.status is not None and p.status.signal == Signal.SIGKILL
            for p in table.processes.values()
        )

    def test_exit_status_str(self):
        assert str(ExitStatus(code=2)) == "exit code 2"
        assert "signal 9" in str(ExitStatus(signal=9))


class TestMachine:
    def test_memory_accounting(self):
        sim = Simulator()
        m = Machine(sim, "host", memory=100)
        m.alloc(60)
        assert m.memory_free == 40
        m.free(30)
        assert m.memory_free == 70

    def test_overcommit_raises(self):
        sim = Simulator()
        m = Machine(sim, "host", memory=100)
        m.alloc(80)
        with pytest.raises(MemoryError_) as err:
            m.alloc(40)
        assert err.value.available == 20

    def test_negative_alloc_rejected(self):
        m = Machine(Simulator(), "host")
        with pytest.raises(ValueError):
            m.alloc(-1)

    def test_free_never_goes_negative(self):
        m = Machine(Simulator(), "host", memory=100)
        m.free(50)
        assert m.memory_used == 0

    def test_cpu_time_scales_with_speed(self):
        fast = Machine(Simulator(), "fast", cpu_speed=2.0)
        slow = Machine(Simulator(), "slow", cpu_speed=0.5)
        assert fast.cpu_time(10.0) == 5.0
        assert slow.cpu_time(10.0) == 20.0

    def test_scratch_fs_exists(self):
        m = Machine(Simulator(), "host")
        m.scratch.write_file("/scratch/f", b"x")
        assert m.scratch.read_file("/scratch/f") == b"x"

    def test_crash_kills_processes(self):
        sim = Simulator()
        m = Machine(sim, "host")

        def body():
            yield sim.timeout(100.0)

        m.processes.spawn("daemon", body())
        m.crash()
        sim.run()
        assert not m.online
        assert m.processes.living() == []

    def test_boot_resets_memory(self):
        sim = Simulator()
        m = Machine(sim, "host", memory=100)
        m.alloc(80)
        m.crash()
        m.boot()
        assert m.online
        assert m.memory_used == 0

    def test_java_installation_health(self):
        good = JavaInstallation()
        assert good.healthy
        assert not JavaInstallation(binary_ok=False).healthy
        assert not JavaInstallation(classpath_ok=False).healthy
