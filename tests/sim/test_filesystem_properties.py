"""Property-based tests for file systems and NFS mount invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.filesystem import FsError, LocalFileSystem, NfsClient

names = st.text(alphabet="abcdefgh", min_size=1, max_size=8)
payloads = st.binary(max_size=200)


@given(st.lists(st.tuples(names, payloads), max_size=15))
@settings(max_examples=60, deadline=None)
def test_write_read_round_trip(files):
    fs = LocalFileSystem(capacity=10**6)
    fs.mkdir("/d")
    expected: dict[str, bytes] = {}
    for name, data in files:
        fs.write_file(f"/d/{name}", data)
        expected[name] = data  # later writes win
    for name, data in expected.items():
        assert fs.read_file(f"/d/{name}") == data
    assert fs.listdir("/d") == sorted(expected)


@given(st.lists(st.tuples(names, payloads), min_size=1, max_size=15))
@settings(max_examples=60, deadline=None)
def test_used_bytes_equals_live_content(files):
    """The quota accounting never drifts from the actual content."""
    fs = LocalFileSystem(capacity=10**6)
    fs.mkdir("/d")
    live: dict[str, bytes] = {}
    for i, (name, data) in enumerate(files):
        if i % 3 == 2 and live:
            victim = sorted(live)[0]
            fs.unlink(f"/d/{victim}")
            del live[victim]
        else:
            fs.write_file(f"/d/{name}", data)
            live[name] = data
    assert fs.used == sum(len(d) for d in live.values())


@given(payloads.filter(bool), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=60, deadline=None)
def test_corruption_always_detected_by_verify(data, flip_at):
    fs = LocalFileSystem()
    fs.write_file("/f", data)
    assert fs.verify("/f")
    fs.corrupt("/f", flip_byte=flip_at)
    assert not fs.verify("/f")


@given(st.floats(min_value=0.5, max_value=200.0),
       st.floats(min_value=1.0, max_value=50.0))
@settings(max_examples=40, deadline=None)
def test_soft_mount_timeout_bounded(outage, soft_timeout):
    """A soft mount either succeeds (outage ended) or fails within one
    retry interval of its window -- never hangs."""
    sim = Simulator()
    server = LocalFileSystem(sim=sim)
    server.write_file("/x", b"d")
    mount = NfsClient(sim, server, mode="soft", soft_timeout=soft_timeout,
                      retry_interval=1.0)
    server.set_online(False)
    sim.call_at(outage, lambda: server.set_online(True))
    outcome = []

    def job():
        try:
            yield from mount.read_file("/x")
            outcome.append(("ok", sim.now))
        except FsError as exc:
            outcome.append((exc.code, sim.now))

    sim.spawn(job())
    sim.run(until=outage + soft_timeout + 10.0)
    assert outcome, "the operation must terminate"
    kind, when = outcome[0]
    if kind == "ok":
        assert when >= min(outage, 0.0)
    else:
        assert kind == "ETIMEDOUT"
        # Each retry costs retry_interval plus one rpc_latency (0.002s),
        # so the failure lands within one retry of the window plus the
        # accumulated per-iteration latency.
        max_iterations = soft_timeout / 1.0 + 2
        assert when <= soft_timeout + 1.0 + 0.002 * max_iterations + 1e-6


@given(st.floats(min_value=0.5, max_value=100.0))
@settings(max_examples=40, deadline=None)
def test_hard_mount_always_succeeds_after_heal(outage):
    sim = Simulator()
    server = LocalFileSystem(sim=sim)
    server.write_file("/x", b"d")
    mount = NfsClient(sim, server, mode="hard", retry_interval=1.0)
    server.set_online(False)
    sim.call_at(outage, lambda: server.set_online(True))
    outcome = []

    def job():
        data = yield from mount.read_file("/x")
        outcome.append((data, sim.now))

    sim.spawn(job())
    sim.run(until=outage + 10.0)
    assert outcome and outcome[0][0] == b"d"
    assert outcome[0][1] >= outage
