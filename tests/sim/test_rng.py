"""Tests for named, seeded random streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_independent():
    rngs = RngRegistry(7)
    a = [rngs.stream("a").random() for _ in range(5)]
    b = [rngs.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    rngs = RngRegistry(0)
    assert rngs.stream("s") is rngs.stream("s")


def test_creation_order_does_not_matter():
    r1 = RngRegistry(9)
    r1.stream("first")
    x1 = r1.stream("second").random()
    r2 = RngRegistry(9)
    x2 = r2.stream("second").random()
    assert x1 == x2


def test_numpy_stream_deterministic():
    a = RngRegistry(3).numpy_stream("n").random(4)
    b = RngRegistry(3).numpy_stream("n").random(4)
    assert (a == b).all()


def test_numpy_and_plain_streams_are_separate():
    rngs = RngRegistry(3)
    rngs.stream("n").random()
    # Using the plain stream must not perturb the numpy stream.
    a = rngs.numpy_stream("n").random()
    b = RngRegistry(3).numpy_stream("n").random()
    assert a == b


def test_fork_is_independent_namespace():
    rngs = RngRegistry(5)
    child1 = rngs.fork("rep0")
    child2 = rngs.fork("rep1")
    assert child1.stream("x").random() != child2.stream("x").random()
    # Fork is itself deterministic.
    again = RngRegistry(5).fork("rep0")
    assert again.stream("x").random() == RngRegistry(5).fork("rep0").stream("x").random()


def test_derive_seed_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")
