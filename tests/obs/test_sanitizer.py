"""The live principle sanitizer vs. the post-hoc auditor.

In the style of the FIG3 live-vs-posthoc span cross-check: for every
FIG4-class fault scenario and every seed, the violations the
:class:`~repro.obs.sanitize.PrincipleSanitizer` collects *while the run
executes* must equal, event for event, the violations the
:class:`~repro.core.principles.PrincipleAuditor` reconstructs from the
artifacts afterwards -- same principles, same subjects, same
descriptions.  Both sides are built from the shared check functions in
``core.principles``, and this suite is what keeps that sharing honest.
"""

import pytest

from repro.campaign.engine import run_cell_record
from repro.campaign.spec import CampaignConfig, enumerate_cells
from repro.obs.sanitize import PrincipleSanitizer, PrincipleViolationError

#: The Figure 4 scenario kinds: the faults whose naive-mode collapse the
#: paper tabulates (bad JVM, corrupt image, missing input, home fs down,
#: expired credential).
FIG4_KINDS = (
    "MisconfiguredJvm",
    "CorruptProgramImage",
    "MissingInputFile",
    "HomeFilesystemOffline",
    "CredentialExpiry",
)


def _config(mode: str, seed: int) -> CampaignConfig:
    return CampaignConfig(
        mode=mode, seed=seed, kinds=FIG4_KINDS, windows=((0.0, None),)
    )


class TestLiveEqualsPosthoc:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("mode", ["naive", "scoped"])
    def test_fig4_cells_cross_check(self, mode, seed):
        config = _config(mode, seed)
        for cell in enumerate_cells(config):
            record = run_cell_record(cell, config)
            live = sorted(
                (v["principle"], v["subject"], v["description"])
                for v in record["live_violations"]
            )
            posthoc = sorted(
                (v["principle"], v["subject"], v["description"])
                for v in record["violations"]
            )
            assert live == posthoc, f"live/post-hoc divergence in {cell.cell_id}"
            assert record["live_matches_posthoc"]

    def test_naive_fig4_cells_do_violate(self):
        """The cross-check must not pass vacuously: naive FIG4 cells
        produce violations for the sanitizer to catch live."""
        config = _config("naive", 0)
        total = sum(
            len(run_cell_record(cell, config)["live_violations"])
            for cell in enumerate_cells(config)
        )
        assert total > 0


class TestFailFast:
    def test_fail_fast_raises_at_first_violation(self):
        config = CampaignConfig(
            mode="classic", kinds=("MisconfiguredJvm",),
            windows=((0.0, None),), fail_fast=True,
        )
        (cell,) = enumerate_cells(config)
        with pytest.raises(PrincipleViolationError) as excinfo:
            run_cell_record(cell, config)
        assert excinfo.value.violation.principle in (1, 2, 3, 4)
        assert excinfo.value.time >= 0.0

    def test_scoped_cells_never_trip_fail_fast(self):
        config = CampaignConfig(
            mode="scoped", kinds=FIG4_KINDS, windows=((0.0, None),),
            fail_fast=True,
        )
        for cell in enumerate_cells(config):
            record = run_cell_record(cell, config)
            assert record["violations"] == []


class TestSanitizerUnits:
    def test_without_injector_still_audits_interfaces(self):
        """P1 needs ground truth, but P2/P4 come straight off the bus."""
        from repro.obs.bus import TelemetryBus

        bus = TelemetryBus()
        sanitizer = PrincipleSanitizer(bus)
        bus.emit(
            1.0, "interface", "crossing",
            interface="JavaIO(naive)", op="JavaIO(naive).read throws ...",
            error="CredentialExpired", scope="LOCAL_RESOURCE", kind="explicit",
            generic=True, declared=True, documented=False, converted=False,
        )
        principles = sorted(v.principle for v in sanitizer.violations)
        assert principles == [2, 4]

    def test_summary_counts_by_principle(self):
        from repro.obs.bus import TelemetryBus

        bus = TelemetryBus()
        sanitizer = PrincipleSanitizer(bus)
        bus.emit(
            2.0, "error", "mishandled",
            error="OutOfMemory", scope="VIRTUAL_MACHINE", kind="escaping",
            detail="", manager="program", error_id=1,
        )
        assert sanitizer.summary() == {1: 0, 2: 0, 3: 1, 4: 0}
        assert [t for t, _ in sanitizer.timeline] == [2.0]
